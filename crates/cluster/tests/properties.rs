//! Property-based tests for the clustering substrate.

use eta2_cluster::{DistanceMatrix, DomainEvent, DynamicClusterer, HierarchicalClusterer};
use proptest::prelude::*;

fn abs_metric(a: &f64, b: &f64) -> f64 {
    (a - b).abs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The final partition always respects the γ·d* floor under average
    /// linkage.
    #[test]
    fn threshold_respected(
        points in proptest::collection::vec(0.0..100.0f64, 2..25),
        gamma in 0.0..1.0f64,
    ) {
        let dm = DistanceMatrix::from_fn(points.len(), |i, j| abs_metric(&points[i], &points[j]));
        let c = HierarchicalClusterer::new(gamma).cluster(&dm);
        let threshold = gamma * dm.max();
        for a in 0..c.cluster_count() {
            for b in (a + 1)..c.cluster_count() {
                prop_assert!(c.average_distance(&dm, a, b) >= threshold - 1e-9);
            }
        }
    }

    /// Clustering is invariant to input permutation (up to relabeling): the
    /// induced co-membership relation is identical.
    #[test]
    fn permutation_invariant_comembership(
        points in proptest::collection::vec(0.0..100.0f64, 2..15),
        gamma in 0.1..0.9f64,
        seed in 0u64..100,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = points.len();
        let dm = DistanceMatrix::from_fn(n, |i, j| abs_metric(&points[i], &points[j]));
        let c1 = HierarchicalClusterer::new(gamma).cluster(&dm);

        let mut perm: Vec<usize> = (0..n).collect();
        perm.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let dm2 = DistanceMatrix::from_fn(n, |i, j| {
            abs_metric(&points[perm[i]], &points[perm[j]])
        });
        let c2 = HierarchicalClusterer::new(gamma).cluster(&dm2);

        // Ties in average linkage are broken by index, so permutations can
        // legitimately change the partition when exact ties exist. Real
        // inputs here are floats from a continuous range: ties are
        // essentially impossible, so require identical co-membership.
        for i in 0..n {
            for j in 0..n {
                let same1 = c1.cluster_of(perm[i]) == c1.cluster_of(perm[j]);
                let same2 = c2.cluster_of(i) == c2.cluster_of(j);
                prop_assert_eq!(same1, same2, "items {} and {}", perm[i], perm[j]);
            }
        }
    }

    /// Dynamic insertion keeps a consistent world: every point assigned to
    /// exactly one live domain, ids never recycled, and every merge event
    /// references a previously live domain.
    #[test]
    fn dynamic_world_consistent(
        warm in proptest::collection::vec(0.0..100.0f64, 1..10),
        batches in proptest::collection::vec(
            proptest::collection::vec(0.0..100.0f64, 0..5), 0..4),
        gamma in 0.1..0.9f64,
    ) {
        let mut dc = DynamicClusterer::new(abs_metric as fn(&f64, &f64) -> f64, gamma);
        let warm_update = dc.warm_up(warm.clone());
        let mut live: std::collections::BTreeSet<u32> = warm_update
            .events
            .iter()
            .map(|e| match e {
                DomainEvent::Created { domain } => *domain,
                DomainEvent::Merged { .. } => unreachable!("warm-up only creates"),
            })
            .collect();
        let mut max_id_seen = live.iter().max().copied().unwrap_or(0);

        for batch in batches {
            let update = dc.add(batch.clone());
            for e in &update.events {
                match e {
                    DomainEvent::Created { domain } => {
                        prop_assert!(*domain > max_id_seen, "id {domain} recycled");
                        max_id_seen = max_id_seen.max(*domain);
                        live.insert(*domain);
                    }
                    DomainEvent::Merged { kept, absorbed } => {
                        prop_assert!(live.contains(kept));
                        prop_assert!(live.remove(absorbed), "{absorbed} not live");
                    }
                }
            }
            for &d in &update.assignments {
                prop_assert!(live.contains(&d), "assigned to dead domain {d}");
            }
            // Clusterer's view matches our event-derived view.
            let clusterer_live: std::collections::BTreeSet<u32> =
                dc.domains().iter().map(|&(id, _)| id).collect();
            prop_assert_eq!(&clusterer_live, &live);
            // Partition covers all points.
            let covered: usize = dc.domains().iter().map(|(_, m)| m.len()).sum();
            prop_assert_eq!(covered, dc.len());
        }
    }
}
