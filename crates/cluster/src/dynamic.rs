//! Dynamic hierarchical clustering (ETA² §3.3.2).
//!
//! After a warm-up batch establishes the initial expertise domains and the
//! reference distance `d*`, newly created tasks are inserted as singleton
//! clusters next to the existing domains and the same average-linkage merge
//! loop runs. Three things can happen to a new task — it joins an existing
//! domain, founds a new domain, or causes two existing domains to merge —
//! and all of them are reported as [`DomainEvent`]s so the expertise
//! bookkeeping in `eta2-core` can follow.

use crate::distance::DistanceMatrix;
use crate::hierarchical::agglomerate;
use serde::{Deserialize, Serialize};

/// Stable identifier of an expertise domain produced by the clusterer.
pub type DomainId = u32;

/// A change to the domain set caused by one batch of task arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainEvent {
    /// A brand-new domain was founded (by tasks matching no existing one).
    Created {
        /// The new domain's id.
        domain: DomainId,
    },
    /// Two pre-existing domains merged; `absorbed` no longer exists and its
    /// tasks/expertise belong to `kept` (paper §4.2, second special case).
    Merged {
        /// The surviving domain.
        kept: DomainId,
        /// The deleted domain.
        absorbed: DomainId,
    },
}

/// Result of one warm-up or arrival batch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicUpdate {
    /// Domain id assigned to each point of the batch, in input order.
    pub assignments: Vec<DomainId>,
    /// Domain-set changes, creations first, then merges.
    pub events: Vec<DomainEvent>,
}

/// Dynamic hierarchical clusterer over points of type `P` with metric `M`.
///
/// # Examples
///
/// ```
/// use eta2_cluster::DynamicClusterer;
///
/// let metric = |a: &f64, b: &f64| (a - b).abs();
/// let mut dc = DynamicClusterer::new(metric, 0.3);
/// let warm = dc.warm_up(vec![0.0, 0.1, 10.0, 10.1]);
/// assert_eq!(warm.assignments[0], warm.assignments[1]);
/// assert_ne!(warm.assignments[0], warm.assignments[2]);
///
/// // A task near the first group joins its domain…
/// let upd = dc.add(vec![0.05]);
/// assert_eq!(upd.assignments[0], warm.assignments[0]);
/// // …and a far-away task founds a new domain.
/// let upd = dc.add(vec![100.0]);
/// assert!(matches!(upd.events[0], eta2_cluster::DomainEvent::Created { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct DynamicClusterer<P, M> {
    metric: M,
    gamma: f64,
    points: Vec<P>,
    /// Live domains: `(id, member point indices)`.
    domains: Vec<(DomainId, Vec<usize>)>,
    d_star: f64,
    next_id: DomainId,
    warmed: bool,
}

impl<P, M: Fn(&P, &P) -> f64> DynamicClusterer<P, M> {
    /// Creates a clusterer with the given metric and threshold fraction
    /// `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ gamma ≤ 1`.
    pub fn new(metric: M, gamma: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        DynamicClusterer {
            metric,
            gamma,
            points: Vec::new(),
            domains: Vec::new(),
            d_star: 0.0,
            next_id: 0,
            warmed: false,
        }
    }

    /// Threshold fraction `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The reference distance `d*` fixed at warm-up (0 before warm-up).
    pub fn d_star(&self) -> f64 {
        self.d_star
    }

    /// Total points seen so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no point has been added yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Live domains as `(id, member point indices)`, sorted by id.
    pub fn domains(&self) -> &[(DomainId, Vec<usize>)] {
        &self.domains
    }

    /// Domain of the point with global index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn domain_of(&self, idx: usize) -> DomainId {
        assert!(idx < self.points.len(), "point index {idx} out of range");
        self.domains
            .iter()
            .find(|(_, members)| members.contains(&idx))
            .map(|&(id, _)| id)
            .expect("every point belongs to a domain")
    }

    /// Clusters the warm-up batch, fixing `d*` to the largest pairwise
    /// distance among these points (paper §3.3.1).
    ///
    /// # Panics
    ///
    /// Panics if called twice or with an empty batch.
    pub fn warm_up(&mut self, batch: Vec<P>) -> DynamicUpdate {
        assert!(!self.warmed, "warm_up may only be called once");
        assert!(!batch.is_empty(), "warm-up batch must not be empty");
        self.points = batch;
        let dm = self.full_distance_matrix();
        self.d_star = dm.max();
        self.warmed = true;

        let singletons = (0..self.points.len()).map(|i| vec![i]).collect();
        let clustering = agglomerate(&dm, singletons, self.gamma * self.d_star);

        let mut assignments = vec![0; self.points.len()];
        let mut events = Vec::with_capacity(clustering.cluster_count());
        for c in 0..clustering.cluster_count() {
            let id = self.next_id;
            self.next_id += 1;
            self.domains.push((id, clustering.members(c).to_vec()));
            events.push(DomainEvent::Created { domain: id });
            for &m in clustering.members(c) {
                assignments[m] = id;
            }
        }
        DynamicUpdate {
            assignments,
            events,
        }
    }

    /// Inserts a batch of new points as singleton clusters and re-runs the
    /// merge loop against the existing domains (paper §3.3.2). Returns the
    /// domain assigned to each new point plus any domain creations/merges.
    ///
    /// # Panics
    ///
    /// Panics if called before [`DynamicClusterer::warm_up`].
    pub fn add(&mut self, batch: Vec<P>) -> DynamicUpdate {
        assert!(self.warmed, "call warm_up before add");
        if batch.is_empty() {
            return DynamicUpdate {
                assignments: Vec::new(),
                events: Vec::new(),
            };
        }
        let first_new = self.points.len();
        self.points.extend(batch);
        let dm = self.full_distance_matrix();

        // Existing domains keep their member groups; each new point starts
        // its own singleton.
        let mut initial: Vec<Vec<usize>> = self.domains.iter().map(|(_, m)| m.clone()).collect();
        initial.extend((first_new..self.points.len()).map(|i| vec![i]));
        let clustering = agglomerate(&dm, initial, self.gamma * self.d_star);

        // Re-derive domain identity: a result cluster containing members of
        // k old domains keeps the smallest old id (absorbing the others); a
        // cluster of only-new points founds a fresh domain.
        let old_domain_of: std::collections::HashMap<usize, DomainId> = self
            .domains
            .iter()
            .flat_map(|(id, m)| m.iter().map(move |&i| (i, *id)))
            .collect();

        let mut new_domains = Vec::with_capacity(clustering.cluster_count());
        let mut assignments = vec![0; self.points.len() - first_new];
        let mut created = Vec::new();
        let mut merged = Vec::new();
        for c in 0..clustering.cluster_count() {
            let members = clustering.members(c).to_vec();
            let mut old_ids: Vec<DomainId> = members
                .iter()
                .filter_map(|i| old_domain_of.get(i).copied())
                .collect();
            old_ids.sort_unstable();
            old_ids.dedup();
            let id = match old_ids.first() {
                Some(&kept) => {
                    for &absorbed in &old_ids[1..] {
                        merged.push(DomainEvent::Merged { kept, absorbed });
                    }
                    kept
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    created.push(DomainEvent::Created { domain: id });
                    id
                }
            };
            for &m in &members {
                if m >= first_new {
                    assignments[m - first_new] = id;
                }
            }
            new_domains.push((id, members));
        }
        new_domains.sort_by_key(|&(id, _)| id);
        self.domains = new_domains;

        let mut events = created;
        events.extend(merged);
        DynamicUpdate {
            assignments,
            events,
        }
    }

    fn full_distance_matrix(&self) -> DistanceMatrix {
        DistanceMatrix::from_fn(self.points.len(), |i, j| {
            (self.metric)(&self.points[i], &self.points[j])
        })
    }

    /// Captures everything but the metric as a serializable snapshot, for
    /// checkpoint/restore of long-running services.
    pub fn state(&self) -> ClustererState<P>
    where
        P: Clone,
    {
        ClustererState {
            gamma: self.gamma,
            points: self.points.clone(),
            domains: self.domains.clone(),
            d_star: self.d_star,
            next_id: self.next_id,
            warmed: self.warmed,
        }
    }

    /// Rebuilds a clusterer from a [`ClustererState`] snapshot and the
    /// (non-serializable) metric it was running with. The restored
    /// clusterer continues exactly where [`DynamicClusterer::state`] left
    /// off.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ state.gamma ≤ 1`.
    pub fn from_state(metric: M, state: ClustererState<P>) -> Self {
        assert!(
            (0.0..=1.0).contains(&state.gamma),
            "gamma must be in [0, 1], got {}",
            state.gamma
        );
        DynamicClusterer {
            metric,
            gamma: state.gamma,
            points: state.points,
            domains: state.domains,
            d_star: state.d_star,
            next_id: state.next_id,
            warmed: state.warmed,
        }
    }
}

/// Serializable snapshot of a [`DynamicClusterer`], minus its metric —
/// produced by [`DynamicClusterer::state`], consumed by
/// [`DynamicClusterer::from_state`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClustererState<P> {
    /// Threshold fraction `γ`.
    pub gamma: f64,
    /// Every point seen so far, in insertion order.
    pub points: Vec<P>,
    /// Live domains: `(id, member point indices)`.
    pub domains: Vec<(DomainId, Vec<usize>)>,
    /// The reference distance `d*` fixed at warm-up.
    pub d_star: f64,
    /// Next fresh domain id.
    pub next_id: DomainId,
    /// Whether warm-up has run.
    pub warmed: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abs_metric(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    fn warmed() -> (DynamicClusterer<f64, fn(&f64, &f64) -> f64>, DynamicUpdate) {
        let mut dc = DynamicClusterer::new(abs_metric as fn(&f64, &f64) -> f64, 0.3);
        let upd = dc.warm_up(vec![0.0, 0.2, 0.4, 10.0, 10.2, 10.4]);
        (dc, upd)
    }

    #[test]
    fn warm_up_founds_domains() {
        let (dc, upd) = warmed();
        assert_eq!(dc.domains().len(), 2);
        assert_eq!(upd.events.len(), 2);
        assert!(upd
            .events
            .iter()
            .all(|e| matches!(e, DomainEvent::Created { .. })));
        assert_eq!(upd.assignments[0], upd.assignments[2]);
        assert_ne!(upd.assignments[0], upd.assignments[3]);
        assert!((dc.d_star() - 10.4).abs() < 1e-12);
    }

    #[test]
    fn new_task_joins_existing_domain() {
        let (mut dc, warm) = warmed();
        let upd = dc.add(vec![0.3]);
        assert_eq!(upd.assignments, vec![warm.assignments[0]]);
        assert!(upd.events.is_empty());
        assert_eq!(dc.domain_of(6), warm.assignments[0]);
    }

    #[test]
    fn far_task_founds_new_domain() {
        let (mut dc, _) = warmed();
        let upd = dc.add(vec![50.0]);
        assert_eq!(upd.events, vec![DomainEvent::Created { domain: 2 }]);
        assert_eq!(upd.assignments, vec![2]);
        assert_eq!(dc.domains().len(), 3);
    }

    #[test]
    fn bridge_tasks_merge_existing_domains() {
        // γ·d* = 0.75·10.4 = 7.8. The two groups alone sit at average
        // distance 10 (> 7.8) so the warm-up keeps them apart; a dense
        // bridge of points between them first joins the left group (average
        // distance 4.9) and pulls the combined cluster close enough to the
        // right group (average distance 7.2 < 7.8) that the domains merge.
        let mut dc = DynamicClusterer::new(abs_metric as fn(&f64, &f64) -> f64, 0.75);
        let warm = dc.warm_up(vec![0.0, 0.2, 0.4, 10.0, 10.2, 10.4]);
        let (a, b) = (warm.assignments[0], warm.assignments[3]);
        let upd = dc.add(vec![4.8, 5.0, 5.2, 5.4]);
        let merged: Vec<_> = upd
            .events
            .iter()
            .filter(|e| matches!(e, DomainEvent::Merged { .. }))
            .collect();
        assert!(
            !merged.is_empty(),
            "expected a merge, got events {:?}",
            upd.events
        );
        if let DomainEvent::Merged { kept, absorbed } = merged[0] {
            assert_eq!(*kept, a.min(b));
            assert_eq!(*absorbed, a.max(b));
        }
        assert_eq!(dc.domains().len(), 1);
    }

    #[test]
    fn merged_domain_ids_never_reused() {
        let (mut dc, _) = warmed();
        let before = dc.domains().len() as u32;
        dc.add(vec![50.0]);
        dc.add(vec![99.0]);
        let ids: Vec<DomainId> = dc.domains().iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![0, 1, before, before + 1]);
    }

    #[test]
    fn add_empty_batch_is_noop() {
        let (mut dc, _) = warmed();
        let before = dc.domains().to_vec();
        let upd = dc.add(vec![]);
        assert!(upd.assignments.is_empty() && upd.events.is_empty());
        assert_eq!(dc.domains(), &before[..]);
    }

    #[test]
    #[should_panic(expected = "warm_up may only be called once")]
    fn double_warm_up_panics() {
        let (mut dc, _) = warmed();
        dc.warm_up(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "call warm_up before add")]
    fn add_before_warm_up_panics() {
        let mut dc = DynamicClusterer::new(abs_metric as fn(&f64, &f64) -> f64, 0.3);
        dc.add(vec![1.0]);
    }

    #[test]
    fn state_roundtrip_continues_identically() {
        let (mut dc, _) = warmed();
        dc.add(vec![0.1, 50.0]);
        let state = dc.state();
        let json = serde_json::to_string(&state).unwrap();
        let back: ClustererState<f64> = serde_json::from_str(&json).unwrap();
        assert_eq!(state, back);
        let mut restored = DynamicClusterer::from_state(abs_metric as fn(&f64, &f64) -> f64, back);
        assert_eq!(restored.domains(), dc.domains());
        assert_eq!(restored.d_star(), dc.d_star());
        // Both continue identically on the same batch.
        let a = dc.add(vec![10.3, 99.0]);
        let b = restored.add(vec![10.3, 99.0]);
        assert_eq!(a, b);
        assert_eq!(restored.domains(), dc.domains());
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1]")]
    fn from_state_validates_gamma() {
        let (dc, _) = warmed();
        let mut state = dc.state();
        state.gamma = 7.0;
        DynamicClusterer::from_state(abs_metric as fn(&f64, &f64) -> f64, state);
    }

    #[test]
    fn every_point_always_assigned() {
        let (mut dc, _) = warmed();
        dc.add(vec![0.1, 50.0, 10.3]);
        for i in 0..dc.len() {
            let _ = dc.domain_of(i); // panics internally if unassigned
        }
        let total: usize = dc.domains().iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, dc.len());
    }
}
