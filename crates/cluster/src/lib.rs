//! Hierarchical and *dynamic* hierarchical clustering for expertise-domain
//! identification (ETA² §3.3).
//!
//! The paper clusters tasks by the pair-word semantic distance so that each
//! cluster becomes one expertise domain. Two properties drive the design:
//!
//! 1. **Average linkage with a distance floor.** Clusters are merged
//!    greedily by smallest average inter-cluster distance until the closest
//!    pair is at least `γ·d*` apart, where `d*` is the largest pairwise task
//!    distance observed in the warm-up period and `γ ∈ [0, 1]` is the single
//!    tuning knob (the paper's Fig. 4 sweeps it).
//! 2. **Dynamic arrivals.** New tasks enter as singleton clusters next to
//!    the `M` existing clusters and the same merge loop runs; this can
//!    assign a task to an existing domain, spawn a brand-new domain, or
//!    merge two existing domains — all three outcomes are reported so the
//!    expertise bookkeeping in `eta2-core` can follow along.
//!
//! # Examples
//!
//! ```
//! use eta2_cluster::{DistanceMatrix, HierarchicalClusterer};
//!
//! // Two tight groups far apart.
//! let points = [0.0_f64, 0.1, 0.2, 10.0, 10.1];
//! let dm = DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs());
//! let clustering = HierarchicalClusterer::new(0.5).cluster(&dm);
//! assert_eq!(clustering.cluster_count(), 2);
//! assert_eq!(clustering.cluster_of(0), clustering.cluster_of(2));
//! assert_ne!(clustering.cluster_of(0), clustering.cluster_of(4));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod dynamic;
pub mod hierarchical;

pub use distance::DistanceMatrix;
pub use dynamic::{ClustererState, DomainEvent, DynamicClusterer, DynamicUpdate};
pub use hierarchical::{Clustering, HierarchicalClusterer};
