//! Symmetric pairwise distance storage.

use serde::{Deserialize, Serialize};

/// A symmetric `n × n` distance matrix stored in condensed form (upper
/// triangle, no diagonal).
///
/// # Examples
///
/// ```
/// use eta2_cluster::DistanceMatrix;
///
/// let dm = DistanceMatrix::from_fn(3, |i, j| (i as f64 - j as f64).abs());
/// assert_eq!(dm.get(0, 2), 2.0);
/// assert_eq!(dm.get(2, 0), 2.0);
/// assert_eq!(dm.get(1, 1), 0.0);
/// assert_eq!(dm.max(), 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    // Condensed upper triangle: entry (i, j), i < j, at
    // i*n - i*(i+1)/2 + (j - i - 1).
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds the matrix by evaluating `dist(i, j)` for every pair `i < j`.
    ///
    /// # Panics
    ///
    /// Panics if `dist` returns a negative or non-finite value.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut dist: F) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                assert!(
                    d.is_finite() && d >= 0.0,
                    "distance({i}, {j}) = {d} must be finite and non-negative"
                );
                data.push(d);
            }
        }
        DistanceMatrix { n, data }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between items `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        if i == j {
            return 0.0;
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.data[i * self.n - i * (i + 1) / 2 + (j - i - 1)]
    }

    /// The largest pairwise distance — the paper's `d*` (0 for fewer than
    /// two items).
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn indexing_roundtrip() {
        let dm = DistanceMatrix::from_fn(5, |i, j| (i * 10 + j) as f64);
        for i in 0..5 {
            for j in 0..5 {
                if i < j {
                    assert_eq!(dm.get(i, j), (i * 10 + j) as f64);
                    assert_eq!(dm.get(j, i), dm.get(i, j));
                } else if i == j {
                    assert_eq!(dm.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let dm = DistanceMatrix::from_fn(0, |_, _| unreachable!());
        assert!(dm.is_empty());
        assert_eq!(dm.max(), 0.0);
        let dm = DistanceMatrix::from_fn(1, |_, _| unreachable!());
        assert_eq!(dm.len(), 1);
        assert_eq!(dm.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite and non-negative")]
    fn rejects_negative_distance() {
        DistanceMatrix::from_fn(2, |_, _| -1.0);
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn get_bounds_checked() {
        let dm = DistanceMatrix::from_fn(2, |_, _| 1.0);
        dm.get(0, 2);
    }

    proptest! {
        #[test]
        fn max_is_an_upper_bound(n in 2usize..12, seed in 0u64..1000) {
            let vals: Vec<f64> = (0..n*n).map(|k| {
                // Cheap deterministic pseudo-random values.
                let h = (k as u64).wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(seed);
                (h % 1000) as f64 / 10.0
            }).collect();
            let dm = DistanceMatrix::from_fn(n, |i, j| vals[i * n + j]);
            let m = dm.max();
            for i in 0..n {
                for j in 0..n {
                    prop_assert!(dm.get(i, j) <= m);
                }
            }
        }
    }
}
