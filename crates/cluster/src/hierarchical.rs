//! Average-linkage agglomerative clustering with a distance floor
//! (ETA² §3.3.1).

use crate::distance::DistanceMatrix;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The result of a clustering run: a partition of `0..n` into clusters.
///
/// Clusters are ordered by their smallest member index and members are
/// sorted, so the representation is canonical — two equal partitions compare
/// equal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    clusters: Vec<Vec<usize>>,
    assignment: Vec<usize>,
}

impl Clustering {
    /// Builds a canonical clustering from raw member groups over `n` items.
    ///
    /// # Panics
    ///
    /// Panics if the groups are not a partition of `0..n`.
    pub fn from_groups(mut groups: Vec<Vec<usize>>, n: usize) -> Self {
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.retain(|g| !g.is_empty());
        groups.sort_by_key(|g| g[0]);
        let mut assignment = vec![usize::MAX; n];
        for (c, g) in groups.iter().enumerate() {
            for &item in g {
                assert!(item < n, "item {item} out of range");
                assert_eq!(
                    assignment[item],
                    usize::MAX,
                    "item {item} appears in two clusters"
                );
                assignment[item] = c;
            }
        }
        assert!(
            assignment.iter().all(|&a| a != usize::MAX),
            "groups do not cover all items"
        );
        Clustering {
            clusters: groups,
            assignment,
        }
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Number of clustered items.
    pub fn item_count(&self) -> usize {
        self.assignment.len()
    }

    /// The cluster index of `item`.
    ///
    /// # Panics
    ///
    /// Panics if `item >= item_count()`.
    pub fn cluster_of(&self, item: usize) -> usize {
        self.assignment[item]
    }

    /// Members of cluster `c`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cluster_count()`.
    pub fn members(&self, c: usize) -> &[usize] {
        &self.clusters[c]
    }

    /// All clusters.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Average inter-cluster distance between clusters `a` and `b` under
    /// `dm` — the linkage quantity the merge loop minimizes.
    ///
    /// # Panics
    ///
    /// Panics if a cluster index is out of range.
    pub fn average_distance(&self, dm: &DistanceMatrix, a: usize, b: usize) -> f64 {
        let (ga, gb) = (&self.clusters[a], &self.clusters[b]);
        let mut sum = 0.0;
        for &i in ga {
            for &j in gb {
                sum += dm.get(i, j);
            }
        }
        sum / (ga.len() * gb.len()) as f64
    }
}

/// Average-linkage hierarchical clusterer with relative threshold `γ`.
///
/// The merge loop stops when the closest pair of clusters is at least
/// `γ · d*` apart, `d*` being the largest pairwise distance in the input
/// (paper §3.3.1).
///
/// # Examples
///
/// ```
/// use eta2_cluster::{DistanceMatrix, HierarchicalClusterer};
///
/// let points = [0.0_f64, 0.2, 5.0, 5.3, 11.0];
/// let dm = DistanceMatrix::from_fn(5, |i, j| (points[i] - points[j]).abs());
/// let c = HierarchicalClusterer::new(0.2).cluster(&dm);
/// assert_eq!(c.cluster_count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierarchicalClusterer {
    gamma: f64,
}

impl HierarchicalClusterer {
    /// Creates a clusterer with threshold fraction `gamma`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ gamma ≤ 1`.
    pub fn new(gamma: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&gamma),
            "gamma must be in [0, 1], got {gamma}"
        );
        HierarchicalClusterer { gamma }
    }

    /// The threshold fraction `γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Clusters all items of `dm`, starting from singletons, with threshold
    /// `γ · d*` where `d* = dm.max()`.
    pub fn cluster(&self, dm: &DistanceMatrix) -> Clustering {
        let singletons = (0..dm.len()).map(|i| vec![i]).collect();
        agglomerate(dm, singletons, self.gamma * dm.max())
    }
}

/// Heap entry for the merge loop; ordered so the *smallest* distance pops
/// first, with deterministic tie-breaking on the cluster slots.
#[derive(Debug, PartialEq)]
struct Candidate {
    dist: f64,
    a: usize,
    b: usize,
    version_a: u64,
    version_b: u64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: reverse distance order, then indices.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.a.cmp(&self.a))
            .then_with(|| other.b.cmp(&self.b))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Core merge loop: agglomerates `initial` groups under average linkage
/// until the closest pair is at or above `threshold`.
///
/// Average linkage is maintained incrementally with the Lance–Williams
/// update `d(k, i∪j) = (nᵢ·d(k,i) + nⱼ·d(k,j)) / (nᵢ+nⱼ)`, and the closest
/// pair is tracked with a lazily invalidated binary heap, giving
/// `O(C² log C)` for `C` initial groups.
///
/// # Panics
///
/// Panics if `initial` is not a partition of `0..dm.len()`.
pub fn agglomerate(dm: &DistanceMatrix, initial: Vec<Vec<usize>>, threshold: f64) -> Clustering {
    let n = dm.len();
    // Validate via the canonical constructor (cheap) before doing real work.
    let seed_clustering = Clustering::from_groups(initial, n);
    let c0 = seed_clustering.cluster_count();
    if c0 <= 1 {
        return seed_clustering;
    }

    // Active cluster slots.
    let mut members: Vec<Option<Vec<usize>>> = seed_clustering
        .clusters()
        .iter()
        .cloned()
        .map(Some)
        .collect();
    let mut sizes: Vec<usize> = members
        .iter()
        .map(|m| m.as_ref().expect("all alive").len())
        .collect();
    let mut version: Vec<u64> = vec![0; c0];

    // Full (symmetric) inter-cluster distance table for the initial groups.
    let mut cdist = vec![0.0f64; c0 * c0];
    for a in 0..c0 {
        for b in (a + 1)..c0 {
            let d = seed_clustering.average_distance(dm, a, b);
            cdist[a * c0 + b] = d;
            cdist[b * c0 + a] = d;
        }
    }

    let mut heap = BinaryHeap::with_capacity(c0 * c0 / 2);
    for a in 0..c0 {
        for b in (a + 1)..c0 {
            heap.push(Candidate {
                dist: cdist[a * c0 + b],
                a,
                b,
                version_a: 0,
                version_b: 0,
            });
        }
    }

    while let Some(cand) = heap.pop() {
        let Candidate {
            dist,
            a,
            b,
            version_a,
            version_b,
        } = cand;
        if members[a].is_none() || members[b].is_none() {
            continue;
        }
        if version[a] != version_a || version[b] != version_b {
            continue; // stale entry
        }
        if dist >= threshold {
            break; // closest remaining pair already too far apart
        }

        // Merge b into a.
        let absorbed = members[b].take().expect("checked alive");
        let keep = members[a].as_mut().expect("checked alive");
        keep.extend(absorbed);
        let (na, nb) = (sizes[a], sizes[b]);
        sizes[a] = na + nb;
        version[a] += 1;

        // Lance–Williams update of d(k, a∪b) for every other live cluster.
        for k in 0..c0 {
            if k == a || k == b || members[k].is_none() {
                continue;
            }
            let d =
                (na as f64 * cdist[k * c0 + a] + nb as f64 * cdist[k * c0 + b]) / (na + nb) as f64;
            cdist[k * c0 + a] = d;
            cdist[a * c0 + k] = d;
            let (lo, hi) = if k < a { (k, a) } else { (a, k) };
            heap.push(Candidate {
                dist: d,
                a: lo,
                b: hi,
                version_a: version[lo],
                version_b: version[hi],
            });
        }
    }

    let groups: Vec<Vec<usize>> = members.into_iter().flatten().collect();
    Clustering::from_groups(groups, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_dm(points: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn two_obvious_groups() {
        let dm = line_dm(&[0.0, 0.1, 0.2, 10.0, 10.1, 10.2]);
        let c = HierarchicalClusterer::new(0.5).cluster(&dm);
        assert_eq!(c.cluster_count(), 2);
        assert_eq!(c.members(0), &[0, 1, 2]);
        assert_eq!(c.members(1), &[3, 4, 5]);
    }

    #[test]
    fn gamma_zero_keeps_singletons() {
        let dm = line_dm(&[0.0, 0.1, 0.2]);
        let c = HierarchicalClusterer::new(0.0).cluster(&dm);
        assert_eq!(c.cluster_count(), 3);
    }

    #[test]
    fn gamma_one_merges_almost_everything() {
        let dm = line_dm(&[0.0, 1.0, 2.0, 3.0]);
        let c = HierarchicalClusterer::new(1.0).cluster(&dm);
        assert_eq!(c.cluster_count(), 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let dm = line_dm(&[]);
        assert_eq!(
            HierarchicalClusterer::new(0.5).cluster(&dm).cluster_count(),
            0
        );
        let dm = line_dm(&[7.0]);
        let c = HierarchicalClusterer::new(0.5).cluster(&dm);
        assert_eq!(c.cluster_count(), 1);
        assert_eq!(c.cluster_of(0), 0);
    }

    #[test]
    #[should_panic(expected = "gamma must be in [0, 1]")]
    fn gamma_out_of_range_panics() {
        HierarchicalClusterer::new(1.5);
    }

    #[test]
    fn from_groups_rejects_non_partition() {
        let r = std::panic::catch_unwind(|| Clustering::from_groups(vec![vec![0], vec![0]], 2));
        assert!(r.is_err(), "duplicate item accepted");
        let r = std::panic::catch_unwind(|| Clustering::from_groups(vec![vec![0]], 2));
        assert!(r.is_err(), "missing item accepted");
    }

    #[test]
    fn termination_respects_threshold() {
        // After clustering, every pair of clusters must be >= threshold
        // apart in average linkage.
        let points = [0.0, 0.5, 1.0, 4.0, 4.4, 9.0, 9.1, 9.2, 15.0];
        let dm = line_dm(&points);
        for gamma in [0.05, 0.1, 0.2, 0.4, 0.8] {
            let c = HierarchicalClusterer::new(gamma).cluster(&dm);
            let threshold = gamma * dm.max();
            for a in 0..c.cluster_count() {
                for b in (a + 1)..c.cluster_count() {
                    let d = c.average_distance(&dm, a, b);
                    assert!(
                        d >= threshold - 1e-9,
                        "gamma={gamma}: clusters {a},{b} at {d} < {threshold}"
                    );
                }
            }
        }
    }

    #[test]
    fn agglomerate_respects_initial_groups() {
        // Pre-grouped far-apart items must never be split; here we force
        // items 0 and 8 together and check they stay together.
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2, 20.0, 20.1, 20.2];
        let dm = line_dm(&points);
        let initial = vec![
            vec![0, 8],
            vec![1],
            vec![2],
            vec![3],
            vec![4],
            vec![5],
            vec![6],
            vec![7],
        ];
        let c = agglomerate(&dm, initial, 0.01 * dm.max());
        assert_eq!(c.cluster_of(0), c.cluster_of(8));
    }

    #[test]
    fn clustering_is_deterministic_under_tie_breaks() {
        // All pairwise distances equal: merges are tie-broken by index, so
        // repeated runs must agree.
        let dm = DistanceMatrix::from_fn(6, |_, _| 1.0);
        let a = HierarchicalClusterer::new(0.9).cluster(&dm);
        let b = HierarchicalClusterer::new(0.9).cluster(&dm);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn always_a_partition(
            points in proptest::collection::vec(0.0..100.0f64, 0..40),
            gamma in 0.0..1.0f64,
        ) {
            let dm = line_dm(&points);
            let c = HierarchicalClusterer::new(gamma).cluster(&dm);
            // Every item in exactly one cluster.
            let mut seen = vec![false; points.len()];
            for k in 0..c.cluster_count() {
                for &m in c.members(k) {
                    prop_assert!(!seen[m]);
                    seen[m] = true;
                }
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        #[test]
        fn larger_gamma_never_increases_cluster_count(
            points in proptest::collection::vec(0.0..100.0f64, 2..30),
        ) {
            let dm = line_dm(&points);
            let mut prev = usize::MAX;
            for gamma in [0.0, 0.25, 0.5, 0.75, 1.0] {
                let c = HierarchicalClusterer::new(gamma).cluster(&dm);
                prop_assert!(c.cluster_count() <= prev);
                prev = c.cluster_count();
            }
        }
    }
}
