//! Scoped-thread stress test: concurrent producers, a racing reader and a
//! mid-run domain merge never let a snapshot observe a torn epoch.

use eta2_core::model::{DomainId, ObservationSet, UserId};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// splitmix64 finalizer — deterministic per-report values without an RNG.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn producers_and_reader_never_observe_torn_epoch() {
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 120;

    let mut cfg = ServeConfig::default();
    cfg.n_users = 12;
    cfg.n_shards = 4;
    cfg.batch_capacity = 24; // small, so flushes race the reader constantly
    cfg.threads = 1;
    let engine = ServeEngine::new(cfg);
    let ids = engine
        .register_tasks(
            &(0..40u32)
                .map(|j| TaskSpec::new(DomainId(j % 10), 1.0, 1.0))
                .collect::<Vec<_>>(),
        )
        .unwrap();

    let done = AtomicBool::new(false);
    let accepted = AtomicU64::new(0);

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let (engine, ids, accepted) = (&engine, &ids, &accepted);
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let mut obs = ObservationSet::new();
                        for k in 0..6u64 {
                            let h = mix(p ^ mix(r) ^ mix(k));
                            let task = ids[(h % ids.len() as u64) as usize];
                            let user = UserId((mix(h) % 12) as u32);
                            obs.insert(user, task, 5.0 + (h % 100) as f64 * 0.1);
                        }
                        let receipt = engine.submit(&obs);
                        accepted.fetch_add(receipt.accepted as u64, Ordering::Relaxed);
                        // Half-way through, producer 0 merges two domains
                        // while everyone else keeps submitting into them.
                        if p == 0 && r == ROUNDS / 2 {
                            engine.merge_domains(DomainId(0), DomainId(1));
                        }
                    }
                })
            })
            .collect();

        let reader = s.spawn(|| {
            let mut last_epoch = 0u64;
            let mut last_flushes = vec![0u64; 4];
            let mut n = 0u64;
            while !done.load(Ordering::Acquire) {
                let snap = engine.snapshot();
                // The two invariants a torn epoch would break: monotone
                // epochs, and every truth/expertise column in its home
                // shard with its task registered.
                assert!(
                    snap.epoch() >= last_epoch,
                    "epoch regressed {last_epoch} -> {}",
                    snap.epoch()
                );
                last_epoch = snap.epoch();
                snap.validate()
                    .unwrap_or_else(|e| panic!("torn epoch: {e}"));
                let flushes = snap.shard_flushes();
                for (shard, (now, before)) in flushes.iter().zip(&last_flushes).enumerate() {
                    assert!(
                        now >= before,
                        "shard {shard} flush counter regressed {before} -> {now}"
                    );
                }
                last_flushes = flushes;
                n += 1;
                std::thread::yield_now();
            }
            n
        });

        for h in producers {
            h.join().expect("producer panicked");
        }
        done.store(true, Ordering::Release);
        let reads = reader.join().expect("reader panicked");
        assert!(reads > 0, "reader never ran");
    });

    // Fold the sub-batch remainders and check every accepted report landed:
    // after the final tick the queue is empty and the snapshot is whole.
    engine.tick();
    assert_eq!(engine.queue_depth(), 0);
    let snap = engine.snapshot();
    snap.validate().unwrap();
    assert_eq!(
        accepted.load(Ordering::Relaxed),
        PRODUCERS * ROUNDS * 6,
        "finite reports to registered tasks are never rejected"
    );
    assert!(snap.truth_count() > 0);
    // Domain 1 was merged away: no task is labeled with it any more.
    assert!(snap.tasks().values().all(|t| t.domain != DomainId(1)));
}
