//! End-to-end causal tracing: ingest a batch with tracing on, reconstruct
//! the ingest -> flush -> publish span DAG from the JSONL stream (fan-in
//! stages are multi-parent spans), and verify a forced invariant breach
//! dumps a flight recording containing that same trace.
//!
//! These tests share the process-global observability state (sink,
//! metrics flag, flight recorder, check mode), so they serialize on one
//! lock and restore the disabled state before returning.

use eta2_core::model::{DomainId, Observation, ObservationSet, Task, TaskId, UserId};
use eta2_core::truth::dynamic::DynamicExpertise;
use eta2_serve::{EngineCheckpoint, ServeConfig, ServeEngine, TaskSpec};
use serde_json::Value;
use std::collections::{BTreeMap, HashSet};
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn cfg(n_shards: usize) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.n_users = 4;
    cfg.n_shards = n_shards;
    cfg.batch_capacity = 0; // flush via tick(), so the test controls timing
    cfg.threads = 1;
    cfg
}

fn events(lines: &[String]) -> Vec<Value> {
    lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("trace line is JSON"))
        .collect()
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing u64 field {key} in {v}"))
}

fn of_type<'a>(evs: &'a [Value], t: &str) -> Vec<&'a Value> {
    evs.iter()
        .filter(|v| v.get("type").and_then(Value::as_str) == Some(t))
        .collect()
}

/// The `parents` span-id array of a fan-in trace event.
fn parents(v: &Value) -> Vec<u64> {
    v.get("parents")
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("missing parents array in {v}"))
        .iter()
        .map(|p| p.as_u64().expect("span id"))
        .collect()
}

#[test]
fn ingest_flush_publish_span_tree_reconstructs_and_flight_dump_carries_it() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("eta2-trace-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    eta2_obs::trace::seed_ids(0x5eed);
    eta2_obs::flight::configure(Some(&dir), 4096);
    let handle = eta2_obs::install_memory();

    let engine = ServeEngine::new(cfg(2));
    let ids = engine
        .register_tasks(&[
            TaskSpec::new(DomainId(0), 1.0, 1.0),
            TaskSpec::new(DomainId(1), 1.0, 1.0),
        ])
        .unwrap();
    let mut obs = ObservationSet::new();
    obs.insert(UserId(0), ids[0], 10.0);
    obs.insert(UserId(1), ids[0], 10.5);
    obs.insert(UserId(2), ids[1], 4.0);
    obs.insert(UserId(3), ids[1], f64::NAN); // quarantined
    let receipt = engine.submit(&obs);
    assert_eq!(receipt.accepted, 3);
    assert_eq!(receipt.quarantined, 1);
    engine.tick();

    let evs = events(&handle.lines());

    // One root ingest span for the submit, carrying the boundary counts.
    let ingests = of_type(&evs, "trace_ingest");
    assert_eq!(ingests.len(), 1, "{evs:?}");
    let ingest = ingests[0];
    assert_eq!(u(ingest, "parent"), 0, "ingest span must be a trace root");
    assert_eq!(u(ingest, "accepted"), 3);
    assert_eq!(u(ingest, "quarantined"), 1);
    let trace = u(ingest, "trace");
    assert_ne!(trace, 0);

    // The dropped report closes as a quarantine child of the ingest.
    let quarantines = of_type(&evs, "trace_quarantine");
    assert_eq!(quarantines.len(), 1);
    assert_eq!(u(quarantines[0], "trace"), trace);
    assert_eq!(u(quarantines[0], "parent"), u(ingest, "span"));

    // The two task domains hash to different shards, so the one ingest
    // fans in to (up to two) flush spans — each a multi-parent span whose
    // `parents` array names the ingest root — and the tick's single epoch
    // publication closes every flush span under one terminal fan-in span.
    let flushes = of_type(&evs, "trace_flush");
    assert!(!flushes.is_empty(), "{evs:?}");
    let flush_spans: HashSet<u64> = flushes
        .iter()
        .map(|f| {
            assert!(
                parents(f).contains(&u(ingest, "span")),
                "flush must name the ingest root as a parent: {f}"
            );
            u(f, "span")
        })
        .collect();
    let publishes = of_type(&evs, "trace_publish");
    assert_eq!(publishes.len(), 1, "one tick publishes one epoch: {evs:?}");
    let published_epoch = engine.snapshot().epoch();
    let publish = publishes[0];
    assert_eq!(
        parents(publish).into_iter().collect::<HashSet<u64>>(),
        flush_spans,
        "the publish span must close exactly the epoch's flush spans"
    );
    assert!(u(publish, "epoch") <= published_epoch);

    // Graph check, order-independent: every parent reference (singular
    // `parent` on ingest/quarantine, `parents` array on fan-in spans)
    // resolves to a span defined somewhere in the stream.
    let trace_events: Vec<&Value> = evs
        .iter()
        .filter(|v| {
            v.get("type")
                .and_then(Value::as_str)
                .is_some_and(|t| t.starts_with("trace_"))
        })
        .collect();
    let spans: HashSet<u64> = trace_events.iter().map(|ev| u(ev, "span")).collect();
    for ev in &trace_events {
        let refs = match ev.get("parents") {
            Some(_) => parents(ev),
            None => vec![u(ev, "parent")],
        };
        for parent in refs {
            if parent != 0 {
                assert!(spans.contains(&parent), "dangling parent {parent} in {ev}");
            }
        }
    }

    // A forced invariant breach must dump the flight ring, and the dump
    // must carry the causal trace that led up to it.
    eta2_check::set_mode(eta2_check::Mode::Count);
    eta2_check::invariant!("e2e.forced_breach", false, "forced for flight dump");
    let dump = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_name().to_string_lossy().starts_with("flight-"))
        .expect("breach must produce a flight dump");
    let text = std::fs::read_to_string(dump.path()).unwrap();
    assert!(
        text.lines()
            .next()
            .is_some_and(|h| h.contains("\"type\":\"flight_dump\"")),
        "dump must start with its header: {text}"
    );
    assert!(
        text.contains(&format!("\"trace\":{trace}")),
        "flight dump must contain the ingest trace {trace}"
    );
    assert!(text.contains("e2e.forced_breach"), "{text}");

    eta2_check::set_mode(eta2_check::Mode::Off);
    eta2_check::reset_breaches();
    eta2_obs::disable();
    eta2_obs::set_metrics(false);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restore_republishes_queue_depth_gauge() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    eta2_obs::set_metrics(true);

    let c = cfg(2);
    let engine = ServeEngine::new(c);
    let ids = engine
        .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
        .unwrap();
    let mut obs = ObservationSet::new();
    obs.insert(UserId(0), ids[0], 1.0);
    obs.insert(UserId(1), ids[0], 2.0);
    engine.submit(&obs);
    let mut checkpoint = engine.checkpoint(); // ticks: queue drains to 0
                                              // Re-create pre-flush residue so the restored engine has a non-zero
                                              // queue — the case where a stale gauge is observably wrong.
    checkpoint.pending = (0..3)
        .map(|u| Observation {
            user: UserId(u),
            task: ids[0],
            value: 3.0 + f64::from(u),
        })
        .collect();

    // Simulate the dead previous engine's last scrape value.
    eta2_obs::gauge("serve.queue_depth", 999.0);
    let restored = ServeEngine::restore(c, checkpoint);
    assert_eq!(restored.queue_depth(), 3);
    let snap = eta2_obs::registry::global().snapshot();
    assert_eq!(
        snap.gauges.get("serve.queue_depth"),
        Some(&3.0),
        "restore must re-publish engine gauges from restored state"
    );

    eta2_obs::set_metrics(false);
}

#[test]
fn restore_accepts_hand_built_checkpoint_with_pending() {
    // Belt-and-braces for the gauge test above: a from-scratch checkpoint
    // (no donor engine) exercises the same restore path the serialized
    // format does.
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let c = cfg(2);
    let mut tasks = BTreeMap::new();
    let t0 = TaskId(0);
    tasks.insert(t0, Task::new(t0, DomainId(0), 1.0, 1.0));
    let restored = ServeEngine::restore(
        c,
        EngineCheckpoint {
            version: eta2_serve::ENGINE_CHECKPOINT_VERSION,
            expertise: DynamicExpertise::new(c.n_users, c.alpha, c.mle),
            tasks,
            truths: BTreeMap::new(),
            next_task: 1,
            pending: vec![Observation {
                user: UserId(0),
                task: t0,
                value: 7.0,
            }],
        },
    );
    assert_eq!(restored.queue_depth(), 1);
    restored.tick();
    assert_eq!(restored.queue_depth(), 0);
    assert!(restored.truth(t0).is_some());
}
