//! Durable-ingest integration: WAL-backed engines recover to bit-identical
//! state after clean restarts and torn tails, gauges reflect the recovered
//! engine, and versioned checkpoints refuse formats this build cannot read.
//!
//! The exhaustive every-record-boundary kill-replay sweep lives in
//! `eta2::check::crash` (driven by `eta2-cli check --crash`); these tests
//! pin the engine-level recovery contract directly.

use eta2_core::model::{DomainId, ObservationSet, UserId};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use eta2_wal::{FsyncPolicy, WalConfig};
use std::path::PathBuf;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Self-cleaning scratch directory pair (checkpoints + wal).
struct Scratch {
    root: PathBuf,
}

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let root =
            std::env::temp_dir().join(format!("eta2-durability-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        Scratch { root }
    }
    fn checkpoints(&self) -> PathBuf {
        self.root.join("checkpoints")
    }
    fn wal(&self) -> WalConfig {
        let mut cfg = WalConfig::new(self.root.join("wal"));
        // Tiny segments force rotation even in small tests; fsync off keeps
        // them fast (durability-under-power-loss is the harness's job).
        cfg.segment_bytes = 256;
        cfg.fsync = FsyncPolicy::Off;
        cfg
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn cfg(n_users: usize, n_shards: usize, batch_capacity: usize) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.n_users = n_users;
    cfg.n_shards = n_shards;
    cfg.batch_capacity = batch_capacity;
    cfg.threads = 1;
    cfg
}

fn submit(engine: &ServeEngine, reports: &[(u32, u32, f64)]) {
    let mut set = ObservationSet::new();
    for &(u, t, v) in reports {
        set.insert(UserId(u), eta2_core::model::TaskId(t), v);
    }
    engine.submit(&set);
}

/// Bit-compares two engines through their public surface: task table,
/// published truths, expertise matrices (by f64 bits), and queue depth.
fn assert_state_eq(a: &ServeEngine, b: &ServeEngine, context: &str) {
    assert_eq!(a.queue_depth(), b.queue_depth(), "{context}: queue depth");
    let (sa, sb) = (a.snapshot(), b.snapshot());
    assert_eq!(sa.tasks().len(), sb.tasks().len(), "{context}: task count");
    for (id, task) in sa.tasks().iter() {
        assert_eq!(Some(task), sb.tasks().get(id), "{context}: task {id:?}");
        assert_eq!(sa.truth(*id), sb.truth(*id), "{context}: truth {id:?}");
    }
    let (ea, eb) = (sa.expertise_matrix(), sb.expertise_matrix());
    let domains_a: Vec<DomainId> = ea.domains().collect();
    let domains_b: Vec<DomainId> = eb.domains().collect();
    assert_eq!(domains_a, domains_b, "{context}: domain sets");
    for d in domains_a {
        for u in 0..ea.n_users() {
            let (va, vb) = (ea.get(UserId(u as u32), d), eb.get(UserId(u as u32), d));
            assert_eq!(
                va.to_bits(),
                vb.to_bits(),
                "{context}: expertise[{u}][{}] {va} vs {vb}",
                d.0
            );
        }
    }
}

#[test]
fn recover_replays_wal_tail_to_bit_identical_state() {
    let scratch = Scratch::new("roundtrip");
    let c = cfg(3, 2, 2);

    // Durable engine: recover() on empty dirs is the first-boot path.
    let (durable, report) = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    assert!(report.checkpoint_path.is_none());
    assert_eq!(report.records_replayed, 0);
    assert!(durable.is_durable());

    // Volatile twin runs the identical workload.
    let twin = ServeEngine::new(c);

    for engine in [&durable, &twin] {
        engine
            .register_tasks(&[
                TaskSpec::new(DomainId(0), 1.0, 1.0),
                TaskSpec::new(DomainId(1), 2.0, 1.0),
                TaskSpec::new(DomainId(2), 1.5, 2.0),
            ])
            .unwrap();
        submit(engine, &[(0, 0, 10.0), (1, 0, 10.5), (2, 1, 4.0)]);
        submit(engine, &[(0, 1, 4.2), (1, 2, 7.0), (2, 2, 7.5)]);
        engine.tick();
        submit(engine, &[(0, 2, 7.2), (1, 1, 4.1)]);
    }

    // Mid-run durable checkpoint: later records replay *on top* of it.
    durable.checkpoint_durable(&scratch.checkpoints()).unwrap();
    twin.tick(); // checkpoint_durable ticks; the twin must too

    for engine in [&durable, &twin] {
        submit(engine, &[(2, 0, 9.9), (0, 0, 10.1)]);
        engine.merge_domains(DomainId(0), DomainId(2));
        submit(engine, &[(1, 2, 7.1)]);
    }

    let position = durable.wal_position().unwrap();
    drop(durable); // "crash" after everything was acked

    let (recovered, report) =
        ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    assert!(report.checkpoint_path.is_some());
    assert!(report.records_replayed > 0, "{report:?}");
    assert_eq!(report.torn_bytes, 0);
    assert_eq!(recovered.wal_position(), Some(position));
    assert_state_eq(&recovered, &twin, "clean recovery");

    // The recovered engine keeps logging: another cycle still matches.
    submit(&recovered, &[(0, 1, 4.3)]);
    submit(&twin, &[(0, 1, 4.3)]);
    recovered.tick();
    twin.tick();
    drop(recovered);
    let (again, _) = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    assert_state_eq(&again, &twin, "second recovery");
}

#[test]
fn recover_from_torn_tail_matches_twin_without_the_torn_op() {
    let scratch = Scratch::new("torn");
    let c = cfg(2, 1, 0);
    let (durable, _) = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    let twin = ServeEngine::new(c);
    for engine in [&durable, &twin] {
        engine
            .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
            .unwrap();
        submit(engine, &[(0, 0, 5.0), (1, 0, 5.5)]);
        engine.tick();
    }
    // One more submit on the durable engine only, then tear its record off
    // mid-frame — the unsynced suffix a power cut could leave behind.
    submit(&durable, &[(0, 0, 6.0)]);
    drop(durable);
    let layout = eta2_wal::tail_segment_layout(&scratch.wal().dir)
        .unwrap()
        .expect("log has segments");
    let last = layout.records.last().expect("log has records");
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&layout.segment)
        .unwrap();
    f.set_len(last.offset + last.frame_len / 2).unwrap();
    drop(f);

    let (recovered, report) =
        ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    assert!(report.torn_bytes > 0, "{report:?}");
    assert!(report.torn_reason.is_some());
    assert_state_eq(&recovered, &twin, "torn-tail recovery");
    // The torn record's index is dead: the reopened log resumes past it.
    assert_eq!(recovered.wal_position(), Some(last.index + 1));
}

#[test]
fn recover_republishes_engine_gauges() {
    let _g = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    eta2_obs::set_metrics(true);

    let scratch = Scratch::new("gauges");
    let c = cfg(2, 1, 0);
    let (durable, _) = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    durable
        .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
        .unwrap();
    submit(&durable, &[(0, 0, 5.0), (1, 0, 5.5)]);
    durable.tick();
    // Pending residue: these two reports sit in the queue at crash time.
    submit(&durable, &[(0, 0, 6.0), (1, 0, 6.5)]);
    drop(durable);

    // Simulate the dead engine's last scrape values lingering in the
    // process-global registry.
    eta2_obs::gauge("serve.queue_depth", 999.0);
    eta2_obs::gauge("serve.epoch", 999.0);
    let (recovered, _) = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    assert_eq!(recovered.queue_depth(), 2);
    let snap = eta2_obs::registry::global().snapshot();
    assert_eq!(
        snap.gauges.get("serve.queue_depth"),
        Some(&2.0),
        "recover must republish queue depth from recovered state"
    );
    assert_eq!(
        snap.gauges.get("serve.epoch"),
        Some(&(recovered.snapshot().epoch() as f64)),
        "recover must republish the epoch gauge"
    );

    eta2_obs::set_metrics(false);
}

#[test]
fn future_checkpoint_versions_are_rejected_with_a_sourced_error() {
    let scratch = Scratch::new("version");
    let c = cfg(2, 1, 0);
    let (durable, _) = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal()).unwrap();
    durable
        .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
        .unwrap();
    submit(&durable, &[(0, 0, 5.0)]);
    let path = durable.checkpoint_durable(&scratch.checkpoints()).unwrap();
    drop(durable);

    // Forge a checkpoint from a future build.
    let mut doc: serde_json::Value =
        serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
    doc["version"] = serde_json::json!(99);
    std::fs::write(&path, serde_json::to_vec(&doc).unwrap()).unwrap();

    let err = ServeEngine::recover(c, &scratch.checkpoints(), scratch.wal())
        .err()
        .expect("future version must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("recovery decode failed") && msg.contains(&path.display().to_string()),
        "error must name the offending file: {msg}"
    );
    assert!(
        std::error::Error::source(&err)
            .expect("decode errors carry a source")
            .to_string()
            .contains("unsupported wal checkpoint version 99"),
        "source must say why: {err}"
    );
}

#[test]
fn engine_checkpoint_version_field_roundtrips_and_rejects_future() {
    let c = cfg(2, 1, 0);
    let engine = ServeEngine::new(c);
    engine
        .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
        .unwrap();
    let checkpoint = engine.checkpoint();
    assert_eq!(checkpoint.version, eta2_serve::ENGINE_CHECKPOINT_VERSION);
    let json = serde_json::to_string(&checkpoint).unwrap();

    // Current version round-trips.
    let parsed: eta2_serve::EngineCheckpoint = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed, checkpoint);

    // A pre-versioning checkpoint (no version field) reads as version 1.
    let mut doc: serde_json::Value = serde_json::from_str(&json).unwrap();
    doc.as_object_mut().unwrap().remove("version");
    let legacy: eta2_serve::EngineCheckpoint = serde_json::from_str(&doc.to_string()).unwrap();
    assert_eq!(legacy.version, 1);

    // A future version is rejected, loudly and by name.
    doc["version"] = serde_json::json!(2);
    let err = serde_json::from_str::<eta2_serve::EngineCheckpoint>(&doc.to_string())
        .expect_err("future checkpoint version must not decode");
    assert!(
        err.to_string()
            .contains("unsupported engine checkpoint version 2"),
        "{err}"
    );
}
