//! Dependency-free extraction of the eta2-serve concurrency design, used to
//! exercise the engine's locking/publishing protocol on hosts where the
//! full workspace cannot be built. Mirrors the structure of:
//!   * crates/serve/src/engine.rs   (shards, COW task table, flush re-route,
//!     epoch publish inside the write lock, ascending-order merge locking)
//!   * crates/serve/src/snapshot.rs (immutable epoch views + validate())
//! with a miniature domain-local MLE standing in for eta2-core's solver.
//! Checks: (1) sharded chunked ingest is bit-identical to a sequential
//! 1-shard run, (2) concurrent producers + merges never let a reader
//! observe a torn epoch, (3) snapshot reads never block on an in-flight
//! flush.
//! Run: rustc -O --edition 2021 serve_extract.rs && ./serve_extract

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

// ---------- tiny RNG (splitmix64) ----------
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
    fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
    fn usize(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn mix(mut z: u64) -> u64 {
    z = z ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `shard_of` — identical to crates/serve/src/lib.rs.
fn shard_of(domain: u32, n_shards: usize) -> usize {
    (mix(domain as u64) % n_shards as u64) as usize
}

// ---------- miniature domain model ----------

#[derive(Clone, Copy, PartialEq, Debug)]
struct Task {
    id: u32,
    domain: u32,
}

type Obs = (u32, u32, f64); // (user, task, value)

/// Per-(user, domain) accumulator column + a domain-local iterative solver:
/// the stand-in for DynamicExpertise. The essential property mirrored from
/// the real MLE is *domain locality* — solving a batch touches only the
/// accumulators of the batch's own domains, each converging independently.
#[derive(Clone, PartialEq)]
struct Expertise {
    n_users: usize,
    alpha: f64,
    acc: BTreeMap<u32, Vec<(f64, f64)>>, // domain -> per-user (n, d)
}

impl Expertise {
    fn new(n_users: usize, alpha: f64) -> Self {
        Expertise {
            n_users,
            alpha,
            acc: BTreeMap::new(),
        }
    }

    fn get(&self, user: usize, domain: u32) -> f64 {
        match self.acc.get(&domain) {
            Some(col) if col[user].1 > 0.0 => (col[user].0 / col[user].1).clamp(0.05, 400.0),
            _ => 1.0,
        }
    }

    /// Solves one batch domain-by-domain (5 %-style convergence per
    /// domain), then decays the batch into the accumulators. `spin` adds
    /// artificial work per iteration so flush duration can be made large
    /// relative to a read.
    fn ingest_batch(
        &mut self,
        tasks: &[Task],
        obs: &BTreeMap<(u32, u32), f64>,
        spin: usize,
    ) -> BTreeMap<u32, f64> {
        let mut by_domain: BTreeMap<u32, Vec<Task>> = BTreeMap::new();
        for t in tasks {
            by_domain.entry(t.domain).or_default().push(*t);
        }
        let mut truths = BTreeMap::new();
        for (&domain, dtasks) in &by_domain {
            let mut u: Vec<f64> = (0..self.n_users).map(|i| self.get(i, domain)).collect();
            let mut mu: BTreeMap<u32, f64> = BTreeMap::new();
            for _iter in 0..30 {
                let mut moved = 0.0f64;
                for t in dtasks {
                    let (mut num, mut den) = (0.0, 0.0);
                    for i in 0..self.n_users {
                        if let Some(&v) = obs.get(&(i as u32, t.id)) {
                            num += u[i] * v;
                            den += u[i];
                        }
                    }
                    if den > 0.0 {
                        let m = num / den;
                        let old = mu.insert(t.id, m).unwrap_or(m + 1.0);
                        moved = moved.max((m - old).abs() / old.abs().max(1e-9));
                    }
                }
                for i in 0..self.n_users {
                    let (mut n, mut d) = (0.0, 0.0);
                    for t in dtasks {
                        if let (Some(&v), Some(&m)) = (obs.get(&(i as u32, t.id)), mu.get(&t.id)) {
                            n += 1.0;
                            d += (v - m) * (v - m);
                        }
                    }
                    let (an, ad) = self.acc.get(&domain).map(|c| c[i]).unwrap_or((0.0, 0.0));
                    let (tn, td) = (an * self.alpha + n, ad * self.alpha + d + 1e-6);
                    u[i] = (tn / td).clamp(0.05, 400.0);
                }
                // Artificial load, kept out of the converged state.
                let mut burn = 0.0f64;
                for s in 0..spin {
                    burn += (s as f64).sqrt();
                }
                assert!(burn >= 0.0);
                if moved < 0.05 {
                    break;
                }
            }
            let n_users = self.n_users;
            let col = self
                .acc
                .entry(domain)
                .or_insert_with(|| vec![(0.0, 0.0); n_users]);
            for i in 0..self.n_users {
                let (mut n, mut d) = (0.0, 0.0);
                for t in dtasks {
                    if let (Some(&v), Some(&m)) = (obs.get(&(i as u32, t.id)), mu.get(&t.id)) {
                        n += 1.0;
                        d += (v - m) * (v - m);
                    }
                }
                col[i] = (col[i].0 * self.alpha + n, col[i].1 * self.alpha + d);
            }
            truths.extend(mu);
        }
        truths
    }

    fn take_domain(&mut self, domain: u32) -> Option<Vec<(f64, f64)>> {
        self.acc.remove(&domain)
    }

    fn merge_in(&mut self, kept: u32, column: Vec<(f64, f64)>) {
        let n_users = self.n_users;
        let col = self
            .acc
            .entry(kept)
            .or_insert_with(|| vec![(0.0, 0.0); n_users]);
        for (c, add) in col.iter_mut().zip(column) {
            c.0 += add.0;
            c.1 += add.1;
        }
    }

    fn merge_domains(&mut self, kept: u32, absorbed: u32) {
        if let Some(column) = self.take_domain(absorbed) {
            self.merge_in(kept, column);
        }
    }
}

// ---------- the engine skeleton (mirrors crates/serve/src/engine.rs) ----------

struct Shard {
    expertise: Expertise,
    truths: BTreeMap<u32, f64>,
    pending: BTreeMap<(u32, u32), f64>, // (user, task) -> value
    flushes: u64,
}

struct TaskTable {
    map: Arc<BTreeMap<u32, Task>>,
    next: u32,
}

struct View {
    truths: BTreeMap<u32, f64>,
    expertise: Expertise,
    flushes: u64,
}

struct Snapshot {
    epoch: u64,
    n_shards: usize,
    tasks: Arc<BTreeMap<u32, Task>>,
    views: Vec<Arc<View>>,
}

impl Snapshot {
    fn truth(&self, task: u32) -> Option<f64> {
        let t = self.tasks.get(&task)?;
        self.views[shard_of(t.domain, self.n_shards)]
            .truths
            .get(&task)
            .copied()
    }

    fn expertise(&self, user: usize, domain: u32) -> f64 {
        self.views[shard_of(domain, self.n_shards)]
            .expertise
            .get(user, domain)
    }

    /// The torn-epoch invariants of EpochSnapshot::validate.
    fn validate(&self) -> Result<(), String> {
        for (k, view) in self.views.iter().enumerate() {
            for task in view.truths.keys() {
                let t = self.tasks.get(task).ok_or_else(|| {
                    format!("epoch {}: truth for unregistered {task}", self.epoch)
                })?;
                if shard_of(t.domain, self.n_shards) != k {
                    return Err(format!(
                        "epoch {}: truth {task} in wrong shard {k}",
                        self.epoch
                    ));
                }
            }
            for domain in view.expertise.acc.keys() {
                if shard_of(*domain, self.n_shards) != k {
                    return Err(format!(
                        "epoch {}: column {domain} in wrong shard {k}",
                        self.epoch
                    ));
                }
            }
        }
        Ok(())
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Engine {
    n_shards: usize,
    batch_capacity: usize,
    spin: usize,
    shards: Vec<Mutex<Shard>>,
    views: Vec<Mutex<Arc<View>>>,
    tasks: Mutex<TaskTable>,
    published: RwLock<Arc<Snapshot>>,
    epoch: AtomicU64,
    queue_depth: AtomicUsize,
}

impl Engine {
    fn new(n_users: usize, n_shards: usize, batch_capacity: usize, spin: usize) -> Self {
        let shards = (0..n_shards)
            .map(|_| {
                Mutex::new(Shard {
                    expertise: Expertise::new(n_users, 0.5),
                    truths: BTreeMap::new(),
                    pending: BTreeMap::new(),
                    flushes: 0,
                })
            })
            .collect();
        let views: Vec<Mutex<Arc<View>>> = (0..n_shards)
            .map(|_| {
                Mutex::new(Arc::new(View {
                    truths: BTreeMap::new(),
                    expertise: Expertise::new(n_users, 0.5),
                    flushes: 0,
                }))
            })
            .collect();
        let tasks = Arc::new(BTreeMap::new());
        let initial = Arc::new(Snapshot {
            epoch: 0,
            n_shards,
            tasks: Arc::clone(&tasks),
            views: views.iter().map(|v| Arc::clone(&lock(v))).collect(),
        });
        Engine {
            n_shards,
            batch_capacity,
            spin,
            shards,
            views,
            tasks: Mutex::new(TaskTable {
                map: tasks,
                next: 0,
            }),
            published: RwLock::new(initial),
            epoch: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
        }
    }

    fn tasks_arc(&self) -> Arc<BTreeMap<u32, Task>> {
        Arc::clone(&lock(&self.tasks).map)
    }

    fn register_tasks(&self, domains: &[u32]) -> Vec<u32> {
        let ids = {
            let mut table = lock(&self.tasks);
            let mut map = (*table.map).clone();
            let ids: Vec<u32> = domains
                .iter()
                .map(|&domain| {
                    let id = table.next;
                    table.next += 1;
                    map.insert(id, Task { id, domain });
                    id
                })
                .collect();
            table.map = Arc::new(map);
            ids
        };
        self.publish();
        ids
    }

    fn submit(&self, reports: &[Obs]) -> usize {
        let tasks = self.tasks_arc();
        let mut routed: Vec<Vec<Obs>> = vec![Vec::new(); self.n_shards];
        let mut accepted = 0;
        for &(u, t, v) in reports {
            if !v.is_finite() {
                continue; // quarantine
            }
            if let Some(task) = tasks.get(&t) {
                routed[shard_of(task.domain, self.n_shards)].push((u, t, v));
                accepted += 1;
            }
        }
        let mut rerouted = Vec::new();
        let mut flushed = false;
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = lock(&self.shards[k]);
            for (u, t, v) in batch {
                if shard.pending.insert((u, t), v).is_none() {
                    self.queue_depth.fetch_add(1, Ordering::Relaxed);
                }
            }
            if self.batch_capacity > 0 && shard.pending.len() >= self.batch_capacity {
                let re = self.flush_shard(k, &mut shard);
                drop(shard);
                rerouted.extend(re);
                flushed = true;
            }
        }
        if !rerouted.is_empty() {
            self.enqueue(&rerouted);
        }
        if flushed {
            self.publish();
        }
        accepted
    }

    fn tick(&self) -> usize {
        let mut flushed = 0;
        // Re-sweep until merge-displaced reports have drained, mirroring
        // ServeEngine::tick: a flush can re-route reports whose domain
        // moved since they were queued.
        loop {
            let mut rerouted = Vec::new();
            for k in 0..self.n_shards {
                let mut shard = lock(&self.shards[k]);
                if shard.pending.is_empty() {
                    continue;
                }
                let re = self.flush_shard(k, &mut shard);
                drop(shard);
                rerouted.extend(re);
                flushed += 1;
            }
            if rerouted.is_empty() {
                break;
            }
            self.enqueue(&rerouted);
        }
        if flushed > 0 {
            self.publish();
        }
        flushed
    }

    // Stores the rebuilt view while the caller still holds the shard lock,
    // so racing flushes of one shard can never store views out of order.
    fn flush_shard(&self, k: usize, shard: &mut Shard) -> Vec<Obs> {
        let pending = std::mem::take(&mut shard.pending);
        self.queue_depth.fetch_sub(pending.len(), Ordering::Relaxed);
        let tasks = self.tasks_arc();
        let mut batch: Vec<Task> = Vec::new();
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut keep: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        let mut rerouted = Vec::new();
        for ((u, t), v) in pending {
            match tasks.get(&t) {
                None => {}
                Some(task) if shard_of(task.domain, self.n_shards) == k => {
                    keep.insert((u, t), v);
                    if seen.insert(t) {
                        batch.push(*task);
                    }
                }
                Some(_) => rerouted.push((u, t, v)),
            }
        }
        let truths = shard.expertise.ingest_batch(&batch, &keep, self.spin);
        shard.truths.extend(truths);
        shard.flushes += 1;
        *lock(&self.views[k]) = Arc::new(View {
            truths: shard.truths.clone(),
            expertise: shard.expertise.clone(),
            flushes: shard.flushes,
        });
        rerouted
    }

    fn enqueue(&self, reports: &[Obs]) {
        let tasks = self.tasks_arc();
        for &(u, t, v) in reports {
            let Some(task) = tasks.get(&t) else { continue };
            let mut shard = lock(&self.shards[shard_of(task.domain, self.n_shards)]);
            if shard.pending.insert((u, t), v).is_none() {
                self.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn publish(&self) {
        let mut slot = self.published.write().unwrap_or_else(|e| e.into_inner());
        let tasks = self.tasks_arc();
        let views: Vec<Arc<View>> = self.views.iter().map(|v| Arc::clone(&lock(v))).collect();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        *slot = Arc::new(Snapshot {
            epoch,
            n_shards: self.n_shards,
            tasks,
            views,
        });
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn merge_domains(&self, kept: u32, absorbed: u32) {
        assert_ne!(kept, absorbed);
        let tasks = {
            let mut table = lock(&self.tasks);
            let mut map = (*table.map).clone();
            for t in map.values_mut() {
                if t.domain == absorbed {
                    t.domain = kept;
                }
            }
            table.map = Arc::new(map);
            Arc::clone(&table.map)
        };
        let (ka, kb) = (
            shard_of(kept, self.n_shards),
            shard_of(absorbed, self.n_shards),
        );
        if ka == kb {
            // View stores happen under the shard guard(s): a merge does not
            // bump the flush counter, so only the lock orders its store
            // against concurrent flush stores.
            let mut shard = lock(&self.shards[ka]);
            shard.expertise.merge_domains(kept, absorbed);
            *lock(&self.views[ka]) = Arc::new(View {
                truths: shard.truths.clone(),
                expertise: shard.expertise.clone(),
                flushes: shard.flushes,
            });
        } else {
            let (lo, hi) = (ka.min(kb), ka.max(kb));
            let mut guard_lo = lock(&self.shards[lo]);
            let mut guard_hi = lock(&self.shards[hi]);
            let (keep_shard, from_shard) = if lo == ka {
                (&mut *guard_lo, &mut *guard_hi)
            } else {
                (&mut *guard_hi, &mut *guard_lo)
            };
            if let Some(column) = from_shard.expertise.take_domain(absorbed) {
                keep_shard.expertise.merge_in(kept, column);
            }
            let moved: Vec<u32> = from_shard
                .truths
                .keys()
                .copied()
                .filter(|id| {
                    tasks
                        .get(id)
                        .is_some_and(|t| shard_of(t.domain, self.n_shards) != kb)
                })
                .collect();
            for id in moved {
                if let Some(est) = from_shard.truths.remove(&id) {
                    keep_shard.truths.insert(id, est);
                }
            }
            let view_keep = Arc::new(View {
                truths: keep_shard.truths.clone(),
                expertise: keep_shard.expertise.clone(),
                flushes: keep_shard.flushes,
            });
            let view_from = Arc::new(View {
                truths: from_shard.truths.clone(),
                expertise: from_shard.expertise.clone(),
                flushes: from_shard.flushes,
            });
            *lock(&self.views[ka]) = view_keep;
            *lock(&self.views[kb]) = view_from;
            drop(guard_hi);
            drop(guard_lo);
        }
        self.publish();
    }
}

// ---------- check 1: sharded == sequential, bit-identical ----------

fn check_parity() {
    let mut worst_cases = 0;
    for seed in 0..40u64 {
        let mut rng = Rng::new(seed);
        let n_users = 2 + rng.usize(4);
        let n_domains = 1 + rng.usize(4) as u32;
        let rounds = 1 + rng.usize(3);
        let n_shards = 1 + rng.usize(4);
        let chunks = 1 + rng.usize(3);

        let reference = Engine::new(n_users, 1, 0, 0);
        let sharded = Engine::new(n_users, n_shards, 0, 0);
        let mut all_ids = Vec::new();

        for _round in 0..rounds {
            let domains: Vec<u32> = (0..1 + rng.usize(5))
                .map(|_| rng.usize(n_domains as usize) as u32)
                .collect();
            let ids_a = reference.register_tasks(&domains);
            let ids_b = sharded.register_tasks(&domains);
            assert_eq!(ids_a, ids_b, "id allocation diverged");

            let mut obs: Vec<Obs> = Vec::new();
            for &id in &ids_a {
                for u in 0..n_users {
                    if rng.bool(0.8) {
                        obs.push((u as u32, id, rng.range(-50.0, 50.0)));
                    }
                }
            }
            reference.submit(&obs);
            reference.tick();
            let size = obs.len().div_ceil(chunks).max(1);
            for chunk in obs.chunks(size) {
                sharded.submit(chunk);
            }
            sharded.tick();
            all_ids.extend(ids_a);
        }

        let (a, b) = (reference.snapshot(), sharded.snapshot());
        b.validate().unwrap();
        for &id in &all_ids {
            let (ta, tb) = (a.truth(id), b.truth(id));
            assert_eq!(
                ta.map(f64::to_bits),
                tb.map(f64::to_bits),
                "truth diverged for task {id} (seed {seed})"
            );
        }
        for d in 0..n_domains {
            for u in 0..n_users {
                assert_eq!(
                    a.expertise(u, d).to_bits(),
                    b.expertise(u, d).to_bits(),
                    "expertise diverged at ({u}, {d}) (seed {seed})"
                );
            }
        }
        worst_cases += 1;
    }
    println!("parity: sharded == sequential bit-identical over {worst_cases} randomized cases");
}

// ---------- check 2: no torn epochs under producers + merges ----------

fn check_torn_epochs() {
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 300;
    let engine = Engine::new(12, 4, 16, 3_000);
    let domains: Vec<u32> = (0..40).map(|j| j % 10).collect();
    let ids = engine.register_tasks(&domains);
    let done = AtomicBool::new(false);
    let validated = AtomicU64::new(0);

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let (engine, ids) = (&engine, &ids);
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let mut obs = Vec::new();
                        for k in 0..6u64 {
                            let h = mix(p ^ mix(r) ^ mix(k));
                            let t = ids[(h % ids.len() as u64) as usize];
                            let u = (mix(h) % 12) as u32;
                            obs.push((u, t, 5.0 + (h % 100) as f64 * 0.1));
                        }
                        engine.submit(&obs);
                        if p == 0 && r == ROUNDS / 2 {
                            engine.merge_domains(0, 1);
                        }
                        if p == 1 && r == ROUNDS / 3 {
                            engine.merge_domains(2, 7);
                        }
                    }
                })
            })
            .collect();

        let reader = s.spawn(|| {
            let mut last_epoch = 0u64;
            let mut last_flushes = vec![0u64; 4];
            while !done.load(Ordering::Acquire) {
                let snap = engine.snapshot();
                assert!(snap.epoch >= last_epoch, "epoch regressed");
                last_epoch = snap.epoch;
                snap.validate()
                    .unwrap_or_else(|e| panic!("torn epoch: {e}"));
                for (k, view) in snap.views.iter().enumerate() {
                    assert!(view.flushes >= last_flushes[k], "flush counter regressed");
                    last_flushes[k] = view.flushes;
                }
                validated.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });

        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();
    });

    engine.tick();
    assert_eq!(engine.queue_depth.load(Ordering::Relaxed), 0);
    let snap = engine.snapshot();
    snap.validate().unwrap();
    assert!(snap.tasks.values().all(|t| t.domain != 1 && t.domain != 7));
    println!(
        "torn-epoch: {} snapshot validations under {} producers + 2 live merges, all consistent",
        validated.load(Ordering::Relaxed),
        PRODUCERS
    );
}

// ---------- check 3: reads never block on an in-flight flush ----------

fn check_reads_never_block() {
    // Heavy spin makes each flush take milliseconds; reads must stay ~µs.
    let engine = Engine::new(16, 4, 48, 200_000);
    let domains: Vec<u32> = (0..32).map(|j| j % 8).collect();
    let ids = engine.register_tasks(&domains);
    let done = AtomicBool::new(false);
    let max_read_ns = AtomicU64::new(0);
    let max_flush_ns = AtomicU64::new(0);

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let (engine, ids, max_flush_ns) = (&engine, &ids, &max_flush_ns);
                s.spawn(move || {
                    for r in 0..400u64 {
                        let mut obs = Vec::new();
                        for k in 0..8u64 {
                            let h = mix(p ^ mix(r) ^ mix(k));
                            let t = ids[(h % ids.len() as u64) as usize];
                            obs.push(((mix(h) % 16) as u32, t, (h % 50) as f64 * 0.2));
                        }
                        let t0 = Instant::now();
                        engine.submit(&obs);
                        let dt = t0.elapsed().as_nanos() as u64;
                        // Submits that crossed the batch threshold ran the
                        // solver inline while holding a shard lock.
                        if dt > 1_000_000 {
                            max_flush_ns.fetch_max(dt, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        let reader = s.spawn(|| {
            let mut n = 0u64;
            while !done.load(Ordering::Acquire) {
                let t0 = Instant::now();
                let snap = engine.snapshot();
                let _ = snap.truth(ids[(n % ids.len() as u64) as usize]);
                let dt = t0.elapsed().as_nanos() as u64;
                max_read_ns.fetch_max(dt, Ordering::Relaxed);
                n += 1;
                std::thread::yield_now();
            }
            n
        });

        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();
    });

    let read_us = max_read_ns.load(Ordering::Relaxed) as f64 / 1_000.0;
    let flush_ms = max_flush_ns.load(Ordering::Relaxed) as f64 / 1_000_000.0;
    println!(
        "reads-never-block: max snapshot read {read_us:.1}us vs max in-line flush {flush_ms:.3}ms"
    );
    assert!(
        flush_ms > 1.0,
        "flushes too fast to prove anything ({flush_ms:.3}ms) — raise spin"
    );
    assert!(
        read_us * 1_000.0 < flush_ms * 1_000_000.0 / 4.0,
        "a read ({read_us:.1}us) waited on a flush ({flush_ms:.3}ms)"
    );
}

fn main() {
    check_parity();
    check_torn_epochs();
    check_reads_never_block();
    println!("serve_extract: all checks passed");
}
