//! Dependency-free extraction of the eta2-serve concurrency design, used to
//! exercise the engine's locking/publishing protocol on hosts where the
//! full workspace cannot be built. Mirrors the structure of:
//!   * crates/serve/src/engine.rs   (shards, COW task table, flush re-route,
//!     dirty-set incremental flushes, warm-started solves, epoch publish
//!     inside the write lock, ascending-order merge locking)
//!   * crates/serve/src/snapshot.rs (immutable epoch views, copy-on-write
//!     truth layers + Arc'd expertise columns, validate())
//!   * crates/check/src/scenario.rs (the seeded scenario generator, mirrored
//!     draw-for-draw so corpus seeds replay the same op sequences here)
//! with a miniature domain-local MLE standing in for eta2-core's solver
//! (including its dense/sparse working-set toggle and warm seeding).
//!
//! Default run (no args) checks:
//!   (1) sharded chunked ingest is bit-identical to a sequential 1-shard run,
//!   (2) incremental (dirty-set) flushes are bit-identical to full
//!       reconvergence over generated scenarios, and the warm-started twin
//!       stays structurally sound with its skip-one-sweep divergence
//!       confined to the documented adversarial tail,
//!   (3) copy-on-write layering: small incremental flushes share the truth
//!       base Arc across epochs; full mode recompacts every flush,
//!   (4) concurrent producers + merges never let a reader observe a torn
//!       epoch, (5) snapshot reads never block on an in-flight flush.
//!
//! Extra modes:
//!   warm-sweep [N]             max warm-vs-cold relative divergence over N
//!                              scenario seeds (calibrates
//!                              WARM_DIVERGENCE_BOUND in eta2::check)
//!   mutate <which> [N]         replay seeds 0..N with an injected bug in the
//!                              incremental path and print the seeds whose
//!                              inc-vs-full replay catches it; `which` is
//!                              stale-columns (skip dirty column refresh) or
//!                              stale-truths (skip the delta insert)
//!   bench [repeat]             incremental vs full flush cost at 1/10/100 %
//!                              dirty fractions (mirrors perf_suite's
//!                              `incremental` section sizes)
//!
//! Run: rustc -O --edition 2021 serve_extract.rs && ./serve_extract

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

// ---------- tiny RNG (splitmix64) ----------
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
    fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }
    fn usize(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

fn mix(mut z: u64) -> u64 {
    z = z ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `shard_of` — identical to crates/serve/src/lib.rs.
fn shard_of(domain: u32, n_shards: usize) -> usize {
    (mix(domain as u64) % n_shards as u64) as usize
}

// ---------- SplitMix64 + scenario generator (mirror of eta2-check) ----------

/// Mirror of `eta2_check::rng::SplitMix64`: same finalizer, same helper
/// semantics, so `gen_scenario(seed)` below consumes the identical draw
/// stream as `Scenario::generate(seed)` in the workspace.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }
    fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

/// One scenario op. `Allocate`/`MinCost` are read-side in the real harness;
/// they are kept as variants so the rng stream stays aligned, and replay
/// treats them as no-ops.
enum SOp {
    Register(Vec<(u64, f64, f64)>),
    Submit(Vec<(u64, usize, f64)>),
    Tick,
    Merge { kept: u64, absorbed: u64 },
    CheckpointRestore,
    Allocate,
    MinCost,
}

struct Scen {
    n_users: u64,
    n_shards: usize,
    restore_shards: usize,
    flush_threshold: usize,
    ops: Vec<SOp>,
}

const P_CORRUPT: f64 = 0.06;

fn gen_value(rng: &mut SplitMix64) -> f64 {
    if rng.chance(P_CORRUPT) {
        match rng.below(4) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            _ => 1e300,
        }
    } else {
        rng.uniform(0.0, 10.0)
    }
}

fn gen_specs(rng: &mut SplitMix64, domains: &[u64], count: usize) -> Vec<(u64, f64, f64)> {
    (0..count)
        .map(|_| {
            (
                domains[rng.below(domains.len())],
                rng.uniform(0.2, 3.0),
                rng.uniform(0.5, 4.0),
            )
        })
        .collect()
}

/// Draw-for-draw mirror of `Scenario::generate` in crates/check.
fn gen_scenario(seed: u64) -> Scen {
    let mut rng = SplitMix64::new(seed);
    let n_users = rng.range(2, 6) as u64;
    let n_shards = rng.range(1, 4);
    let restore_shards = rng.range(1, 4);
    let flush_threshold = rng.range(2, 8);

    let n_domains = rng.range(1, 4);
    let mut live_domains: Vec<u64> = Vec::with_capacity(n_domains);
    while live_domains.len() < n_domains {
        let label = rng.next_u64() % 10_000;
        if !live_domains.contains(&label) {
            live_domains.push(label);
        }
    }

    let mut ops = Vec::new();
    let mut tasks_registered = 0usize;
    let mut populated: Vec<u64> = Vec::new();

    let first_count = rng.range(2, 5);
    let first = gen_specs(&mut rng, &live_domains, first_count);
    for &(d, _, _) in &first {
        if !populated.contains(&d) {
            populated.push(d);
        }
    }
    tasks_registered += first.len();
    ops.push(SOp::Register(first));

    let op_count = rng.range(6, 22);
    for _ in 0..op_count {
        let roll = rng.next_f64();
        if roll < 0.35 {
            let n = rng.range(1, 7);
            let reports = (0..n)
                .map(|_| {
                    (
                        rng.below(n_users as usize) as u64,
                        rng.below(tasks_registered),
                        gen_value(&mut rng),
                    )
                })
                .collect();
            ops.push(SOp::Submit(reports));
        } else if roll < 0.50 {
            let count = rng.range(1, 3);
            let specs = gen_specs(&mut rng, &live_domains, count);
            for &(d, _, _) in &specs {
                if !populated.contains(&d) {
                    populated.push(d);
                }
            }
            tasks_registered += specs.len();
            ops.push(SOp::Register(specs));
        } else if roll < 0.65 {
            ops.push(SOp::Tick);
        } else if roll < 0.75 {
            if populated.len() >= 2 {
                let ai = rng.below(populated.len());
                let absorbed = populated.remove(ai);
                let kept = populated[rng.below(populated.len())];
                live_domains.retain(|&d| d != absorbed);
                ops.push(SOp::Merge { kept, absorbed });
            } else {
                ops.push(SOp::Tick);
            }
        } else if roll < 0.85 {
            ops.push(SOp::CheckpointRestore);
        } else if roll < 0.95 {
            for _ in 0..n_users {
                rng.uniform(0.0, 6.0);
            }
            rng.chance(0.5);
            ops.push(SOp::Allocate);
        } else {
            rng.uniform(1.0, 8.0);
            rng.uniform(0.4, 2.0);
            ops.push(SOp::MinCost);
        }
    }
    Scen {
        n_users,
        n_shards,
        restore_shards,
        flush_threshold,
        ops,
    }
}

// ---------- copy-on-write truth layers (mirror of snapshot.rs) ----------

const COMPACT_MIN: usize = 64;
const COMPACT_RATIO: usize = 8;
const COMPACT_MAX_DELTA: usize = 4096;

/// Mirror of `TruthLayers`: a large shared `base` plus a small `delta`
/// overlay; a flush clones only the delta (copy-on-write), the owning shard
/// compacts past the thresholds, and non-incremental mode compacts every
/// flush to reproduce the historical full-clone cost.
#[derive(Clone)]
struct Layers {
    base: Arc<BTreeMap<u32, f64>>,
    delta: Arc<BTreeMap<u32, f64>>,
    overlap: usize,
}

impl Layers {
    fn empty() -> Self {
        Layers {
            base: Arc::new(BTreeMap::new()),
            delta: Arc::new(BTreeMap::new()),
            overlap: 0,
        }
    }

    fn from_map(map: BTreeMap<u32, f64>) -> Self {
        Layers {
            base: Arc::new(map),
            delta: Arc::new(BTreeMap::new()),
            overlap: 0,
        }
    }

    fn get(&self, id: &u32) -> Option<&f64> {
        self.delta.get(id).or_else(|| self.base.get(id))
    }

    fn iter(&self) -> impl Iterator<Item = (&u32, &f64)> {
        self.base
            .iter()
            .filter(|(id, _)| !self.delta.contains_key(id))
            .chain(self.delta.iter())
    }

    fn insert_all(&mut self, entries: impl IntoIterator<Item = (u32, f64)>) {
        let mut entries = entries.into_iter().peekable();
        if entries.peek().is_none() {
            return;
        }
        let delta = Arc::make_mut(&mut self.delta);
        for (id, est) in entries {
            if delta.insert(id, est).is_none() && self.base.contains_key(&id) {
                self.overlap += 1;
            }
        }
        if self.delta.len() >= COMPACT_MIN
            && (self.delta.len() * COMPACT_RATIO >= self.base.len()
                || self.delta.len() >= COMPACT_MAX_DELTA)
        {
            self.compact();
        }
    }

    fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let mut base = (*self.base).clone();
        for (&id, &est) in self.delta.iter() {
            base.insert(id, est);
        }
        self.base = Arc::new(base);
        self.delta = Arc::new(BTreeMap::new());
        self.overlap = 0;
    }

    fn take_matching<F: FnMut(&u32) -> bool>(&mut self, mut pred: F) -> Vec<(u32, f64)> {
        let mut kept = BTreeMap::new();
        let mut taken = Vec::new();
        for (&id, &est) in self.iter() {
            if pred(&id) {
                taken.push((id, est));
            } else {
                kept.insert(id, est);
            }
        }
        self.base = Arc::new(kept);
        self.delta = Arc::new(BTreeMap::new());
        self.overlap = 0;
        taken
    }
}

// ---------- miniature domain model ----------

#[derive(Clone, Copy, PartialEq, Debug)]
struct Task {
    id: u32,
    domain: u32,
}

type Obs = (u32, u32, f64); // (user, task, value)

/// Per-(user, domain) accumulator column + a domain-local iterative solver:
/// the stand-in for DynamicExpertise. Mirrors the properties the engine
/// relies on: *domain locality* (solving a batch touches only the batch's
/// own domains), the dense/sparse working-set toggle (`dense` iterates every
/// user, the historical cost profile; sparse iterates only the batch's
/// distinct reporters — bit-identical results either way because untouched
/// users contribute nothing and untouched accumulator pairs are skipped at
/// commit), and warm seeding (the convergence criterion starts from the
/// previous epoch's estimates, legitimately stopping a step early).
#[derive(Clone, PartialEq)]
struct Expertise {
    n_users: usize,
    alpha: f64,
    acc: BTreeMap<u32, Vec<(f64, f64)>>, // domain -> per-user (n, d)
}

impl Expertise {
    fn new(n_users: usize, alpha: f64) -> Self {
        Expertise {
            n_users,
            alpha,
            acc: BTreeMap::new(),
        }
    }

    fn get(&self, user: usize, domain: u32) -> f64 {
        match self.acc.get(&domain) {
            Some(col) if col[user].1 > 0.0 => (col[user].0 / col[user].1).clamp(0.05, 400.0),
            _ => 1.0,
        }
    }

    /// Solves one batch domain-by-domain (5 %-style convergence per domain),
    /// then decays the batch into the accumulators of the touched
    /// (user, domain) pairs. `keep` is task-major: task -> ascending
    /// (user, value). `spin` adds artificial work per iteration so flush
    /// duration can be made large relative to a read.
    fn ingest_batch(
        &mut self,
        tasks: &[Task],
        keep: &BTreeMap<u32, Vec<(u32, f64)>>,
        spin: usize,
        dense: bool,
        warm: Option<&BTreeMap<u32, f64>>,
    ) -> BTreeMap<u32, f64> {
        let mut by_domain: BTreeMap<u32, Vec<Task>> = BTreeMap::new();
        for t in tasks {
            by_domain.entry(t.domain).or_default().push(*t);
        }
        let mut truths = BTreeMap::new();
        for (&domain, dtasks) in &by_domain {
            // Working set: every user in dense mode, only the batch's
            // distinct reporters otherwise (ascending either way, so the
            // partial-sum order — and thus every bit — is identical).
            let users: Vec<u32> = if dense {
                (0..self.n_users as u32).collect()
            } else {
                let mut set = BTreeSet::new();
                for t in dtasks {
                    for &(u, _) in &keep[&t.id] {
                        set.insert(u);
                    }
                }
                set.into_iter().collect()
            };
            let slot_of: BTreeMap<u32, usize> =
                users.iter().enumerate().map(|(s, &u)| (u, s)).collect();
            let obs_slots: Vec<Vec<(usize, f64)>> = dtasks
                .iter()
                .map(|t| keep[&t.id].iter().map(|&(u, x)| (slot_of[&u], x)).collect())
                .collect();
            let mut work: Vec<f64> = users
                .iter()
                .map(|&u| self.get(u as usize, domain))
                .collect();

            // Previous-iteration truths driving the 5 % criterion; a warm
            // start pre-seeds it from the caller's previous-epoch estimates
            // (finite ones only), making the criterion live from the first
            // iteration — exactly `IngestOptions::warm`.
            let mut mu: BTreeMap<u32, f64> = BTreeMap::new();
            if let Some(w) = warm {
                for t in dtasks {
                    if let Some(&m) = w.get(&t.id) {
                        if m.is_finite() {
                            mu.insert(t.id, m);
                        }
                    }
                }
            }

            for _iter in 0..30 {
                let mut moved = 0.0f64;
                for (t, slots) in dtasks.iter().zip(&obs_slots) {
                    let (mut num, mut den) = (0.0, 0.0);
                    for &(s, x) in slots {
                        num += work[s] * x;
                        den += work[s];
                    }
                    if den > 0.0 {
                        let m = num / den;
                        let old = mu.insert(t.id, m).unwrap_or(m + 1.0);
                        moved = moved.max((m - old).abs() / old.abs().max(1e-9));
                    }
                }
                let mut delta = vec![(0.0f64, 0.0f64); users.len()];
                for (t, slots) in dtasks.iter().zip(&obs_slots) {
                    if let Some(&m) = mu.get(&t.id) {
                        for &(s, x) in slots {
                            delta[s].0 += 1.0;
                            delta[s].1 += (x - m) * (x - m);
                        }
                    }
                }
                for (s, &u) in users.iter().enumerate() {
                    let (an, ad) = self
                        .acc
                        .get(&domain)
                        .map(|c| c[u as usize])
                        .unwrap_or((0.0, 0.0));
                    let (tn, td) = (
                        an * self.alpha + delta[s].0,
                        ad * self.alpha + delta[s].1 + 1e-6,
                    );
                    work[s] = (tn / td).clamp(0.05, 400.0);
                }
                // Artificial load, kept out of the converged state.
                let mut burn = 0.0f64;
                for s in 0..spin {
                    burn += (s as f64).sqrt();
                }
                assert!(burn >= 0.0);
                if moved < 0.05 {
                    break;
                }
            }

            // Commit: decay + add for touched (user, domain) pairs only —
            // untouched pairs keep an unchanged N/D ratio, so skipping
            // their decay is equivalent (and what the real solver does).
            let mut fin = vec![(0.0f64, 0.0f64); users.len()];
            for (t, slots) in dtasks.iter().zip(&obs_slots) {
                if let Some(&m) = mu.get(&t.id) {
                    for &(s, x) in slots {
                        fin[s].0 += 1.0;
                        fin[s].1 += (x - m) * (x - m);
                    }
                }
            }
            let n_users = self.n_users;
            let col = self
                .acc
                .entry(domain)
                .or_insert_with(|| vec![(0.0, 0.0); n_users]);
            for (s, &u) in users.iter().enumerate() {
                if fin[s].0 == 0.0 {
                    continue;
                }
                let c = &mut col[u as usize];
                *c = (c.0 * self.alpha + fin[s].0, c.1 * self.alpha + fin[s].1);
            }
            truths.extend(mu);
        }
        truths
    }

    fn take_domain(&mut self, domain: u32) -> Option<Vec<(f64, f64)>> {
        self.acc.remove(&domain)
    }

    fn merge_in(&mut self, kept: u32, column: Vec<(f64, f64)>) {
        let n_users = self.n_users;
        let col = self
            .acc
            .entry(kept)
            .or_insert_with(|| vec![(0.0, 0.0); n_users]);
        for (c, add) in col.iter_mut().zip(column) {
            c.0 += add.0;
            c.1 += add.1;
        }
    }

    fn merge_domains(&mut self, kept: u32, absorbed: u32) {
        if let Some(column) = self.take_domain(absorbed) {
            self.merge_in(kept, column);
        }
    }
}

// ---------- the engine skeleton (mirrors crates/serve/src/engine.rs) ----------

/// Injected bugs for corpus-seed mutation validation (`mutate` mode).
const MUTATE_NONE: u8 = 0;
/// Incremental flushes skip the dirty-domain column refresh: published
/// expertise goes stale while full mode keeps rebuilding every column.
const MUTATE_STALE_COLUMNS: u8 = 1;
/// Incremental flushes skip the copy-on-write delta insert: published
/// truths go stale.
const MUTATE_STALE_TRUTHS: u8 = 2;

struct Shard {
    expertise: Expertise,
    truths: Layers,
    /// Derived expertise columns (length n_users), `Arc`-shared into views;
    /// incremental flushes refresh only dirty domains' columns.
    columns: BTreeMap<u32, Arc<Vec<f64>>>,
    pending: BTreeMap<(u32, u32), f64>, // (user, task) -> value
    flushes: u64,
}

impl Shard {
    fn refresh_column(&mut self, domain: u32) {
        let n = self.expertise.n_users;
        let col: Vec<f64> = (0..n).map(|i| self.expertise.get(i, domain)).collect();
        self.columns.insert(domain, Arc::new(col));
    }

    fn refresh_all_columns(&mut self) {
        let domains: Vec<u32> = self.expertise.acc.keys().copied().collect();
        for d in domains {
            self.refresh_column(d);
        }
    }

    fn view(&self) -> Arc<View> {
        Arc::new(View {
            truths: self.truths.clone(),
            columns: self.columns.clone(),
            flushes: self.flushes,
        })
    }
}

struct TaskTable {
    map: Arc<BTreeMap<u32, Task>>,
    next: u32,
}

struct View {
    truths: Layers,
    columns: BTreeMap<u32, Arc<Vec<f64>>>,
    flushes: u64,
}

struct Snapshot {
    epoch: u64,
    n_shards: usize,
    tasks: Arc<BTreeMap<u32, Task>>,
    views: Vec<Arc<View>>,
}

impl Snapshot {
    fn truth(&self, task: u32) -> Option<f64> {
        let t = self.tasks.get(&task)?;
        self.views[shard_of(t.domain, self.n_shards)]
            .truths
            .get(&task)
            .copied()
    }

    fn expertise(&self, user: usize, domain: u32) -> f64 {
        self.views[shard_of(domain, self.n_shards)]
            .columns
            .get(&domain)
            .map_or(1.0, |col| col[user])
    }

    /// The torn-epoch invariants of EpochSnapshot::validate.
    fn validate(&self) -> Result<(), String> {
        for (k, view) in self.views.iter().enumerate() {
            for (task, _) in view.truths.iter() {
                let t = self.tasks.get(task).ok_or_else(|| {
                    format!("epoch {}: truth for unregistered {task}", self.epoch)
                })?;
                if shard_of(t.domain, self.n_shards) != k {
                    return Err(format!(
                        "epoch {}: truth {task} in wrong shard {k}",
                        self.epoch
                    ));
                }
            }
            for domain in view.columns.keys() {
                if shard_of(*domain, self.n_shards) != k {
                    return Err(format!(
                        "epoch {}: column {domain} in wrong shard {k}",
                        self.epoch
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Mirror of `EngineCheckpoint`: taken quiescent (pending flushed first) and
/// carrying the truths, so a warm-started restore keeps warm-seeding.
struct Checkpoint {
    tasks: BTreeMap<u32, Task>,
    next: u32,
    acc: BTreeMap<u32, Vec<(f64, f64)>>,
    truths: BTreeMap<u32, f64>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct Engine {
    n_users: usize,
    n_shards: usize,
    batch_capacity: usize,
    spin: usize,
    /// Dirty-set flushes (the default); `false` restores the historical
    /// compact-and-rebuild-everything cost profile (bit-identical results).
    incremental: bool,
    /// Seed each solve's convergence criterion from the previous epoch's
    /// estimates (bounded divergence, see warm-sweep mode).
    warm: bool,
    mutate: u8,
    shards: Vec<Mutex<Shard>>,
    views: Vec<Mutex<Arc<View>>>,
    tasks: Mutex<TaskTable>,
    published: RwLock<Arc<Snapshot>>,
    epoch: AtomicU64,
    queue_depth: AtomicUsize,
}

impl Engine {
    fn new(n_users: usize, n_shards: usize, batch_capacity: usize, spin: usize) -> Self {
        let shards = (0..n_shards)
            .map(|_| {
                Mutex::new(Shard {
                    expertise: Expertise::new(n_users, 0.5),
                    truths: Layers::empty(),
                    columns: BTreeMap::new(),
                    pending: BTreeMap::new(),
                    flushes: 0,
                })
            })
            .collect();
        let views: Vec<Mutex<Arc<View>>> = (0..n_shards)
            .map(|_| {
                Mutex::new(Arc::new(View {
                    truths: Layers::empty(),
                    columns: BTreeMap::new(),
                    flushes: 0,
                }))
            })
            .collect();
        let tasks = Arc::new(BTreeMap::new());
        let initial = Arc::new(Snapshot {
            epoch: 0,
            n_shards,
            tasks: Arc::clone(&tasks),
            views: views.iter().map(|v| Arc::clone(&lock(v))).collect(),
        });
        Engine {
            n_users,
            n_shards,
            batch_capacity,
            spin,
            incremental: true,
            warm: false,
            mutate: MUTATE_NONE,
            shards,
            views,
            tasks: Mutex::new(TaskTable {
                map: tasks,
                next: 0,
            }),
            published: RwLock::new(initial),
            epoch: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
        }
    }

    /// Rebuilds an engine from a checkpoint, re-sharding state onto
    /// `n_shards` (mirror of `ServeEngine::restore`).
    fn restore(
        n_users: usize,
        n_shards: usize,
        batch_capacity: usize,
        spin: usize,
        flags: (bool, bool, u8),
        ck: Checkpoint,
    ) -> Engine {
        let mut engine = Engine::new(n_users, n_shards, batch_capacity, spin);
        engine.incremental = flags.0;
        engine.warm = flags.1;
        engine.mutate = flags.2;
        {
            let mut table = lock(&engine.tasks);
            table.map = Arc::new(ck.tasks);
            table.next = ck.next;
        }
        let tasks = engine.tasks_arc();
        for (d, col) in ck.acc {
            lock(&engine.shards[shard_of(d, n_shards)])
                .expertise
                .acc
                .insert(d, col);
        }
        let mut routed: Vec<BTreeMap<u32, f64>> = (0..n_shards).map(|_| BTreeMap::new()).collect();
        for (t, v) in ck.truths {
            if let Some(task) = tasks.get(&t) {
                routed[shard_of(task.domain, n_shards)].insert(t, v);
            }
        }
        for (k, map) in routed.into_iter().enumerate() {
            let mut shard = lock(&engine.shards[k]);
            shard.truths = Layers::from_map(map);
            shard.refresh_all_columns();
            *lock(&engine.views[k]) = shard.view();
        }
        engine.publish();
        engine
    }

    fn checkpoint(&self) -> Checkpoint {
        // Quiescent: fold pending reports first, like ServeEngine.
        self.tick();
        let table = lock(&self.tasks);
        let mut acc = BTreeMap::new();
        let mut truths = BTreeMap::new();
        for m in &self.shards {
            let shard = lock(m);
            for (&d, col) in &shard.expertise.acc {
                acc.insert(d, col.clone());
            }
            for (&t, &v) in shard.truths.iter() {
                truths.insert(t, v);
            }
        }
        Checkpoint {
            tasks: (*table.map).clone(),
            next: table.next,
            acc,
            truths,
        }
    }

    fn tasks_arc(&self) -> Arc<BTreeMap<u32, Task>> {
        Arc::clone(&lock(&self.tasks).map)
    }

    fn register_tasks(&self, domains: &[u32]) -> Vec<u32> {
        let ids = {
            let mut table = lock(&self.tasks);
            let mut map = (*table.map).clone();
            let ids: Vec<u32> = domains
                .iter()
                .map(|&domain| {
                    let id = table.next;
                    table.next += 1;
                    map.insert(id, Task { id, domain });
                    id
                })
                .collect();
            table.map = Arc::new(map);
            ids
        };
        self.publish();
        ids
    }

    fn submit(&self, reports: &[Obs]) -> usize {
        let tasks = self.tasks_arc();
        let mut routed: Vec<Vec<Obs>> = vec![Vec::new(); self.n_shards];
        let mut accepted = 0;
        for &(u, t, v) in reports {
            if !v.is_finite() {
                continue; // quarantine
            }
            if let Some(task) = tasks.get(&t) {
                routed[shard_of(task.domain, self.n_shards)].push((u, t, v));
                accepted += 1;
            }
        }
        let mut rerouted = Vec::new();
        let mut flushed = false;
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = lock(&self.shards[k]);
            for (u, t, v) in batch {
                if shard.pending.insert((u, t), v).is_none() {
                    self.queue_depth.fetch_add(1, Ordering::Relaxed);
                }
            }
            if self.batch_capacity > 0 && shard.pending.len() >= self.batch_capacity {
                let re = self.flush_shard(k, &mut shard);
                drop(shard);
                rerouted.extend(re);
                flushed = true;
            }
        }
        if !rerouted.is_empty() {
            self.enqueue(&rerouted);
        }
        if flushed {
            self.publish();
        }
        accepted
    }

    fn tick(&self) -> usize {
        let mut flushed = 0;
        // Re-sweep until merge-displaced reports have drained, mirroring
        // ServeEngine::tick: a flush can re-route reports whose domain
        // moved since they were queued.
        loop {
            let mut rerouted = Vec::new();
            for k in 0..self.n_shards {
                let mut shard = lock(&self.shards[k]);
                if shard.pending.is_empty() {
                    continue;
                }
                let re = self.flush_shard(k, &mut shard);
                drop(shard);
                rerouted.extend(re);
                flushed += 1;
            }
            if rerouted.is_empty() {
                break;
            }
            self.enqueue(&rerouted);
        }
        if flushed > 0 {
            self.publish();
        }
        flushed
    }

    // Stores the rebuilt view while the caller still holds the shard lock,
    // so racing flushes of one shard can never store views out of order.
    fn flush_shard(&self, k: usize, shard: &mut Shard) -> Vec<Obs> {
        let pending = std::mem::take(&mut shard.pending);
        self.queue_depth.fetch_sub(pending.len(), Ordering::Relaxed);
        let tasks = self.tasks_arc();
        let mut batch: Vec<Task> = Vec::new();
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut keep: BTreeMap<u32, Vec<(u32, f64)>> = BTreeMap::new();
        let mut rerouted = Vec::new();
        for ((u, t), v) in pending {
            match tasks.get(&t) {
                None => {}
                Some(task) if shard_of(task.domain, self.n_shards) == k => {
                    keep.entry(t).or_default().push((u, v));
                    if seen.insert(t) {
                        batch.push(*task);
                    }
                }
                Some(_) => rerouted.push((u, t, v)),
            }
        }
        // Warm start (opt-in): seed the solver's convergence criterion with
        // the previously published estimate of every re-flushed task.
        let warm: Option<BTreeMap<u32, f64>> = self.warm.then(|| {
            batch
                .iter()
                .filter_map(|t| shard.truths.get(&t.id).map(|&v| (t.id, v)))
                .collect()
        });
        let truths = shard.expertise.ingest_batch(
            &batch,
            &keep,
            self.spin,
            !self.incremental,
            warm.as_ref(),
        );
        if !(self.mutate == MUTATE_STALE_TRUTHS && self.incremental) {
            shard.truths.insert_all(truths);
        }
        let dirty: BTreeSet<u32> = batch.iter().map(|t| t.domain).collect();
        if self.incremental {
            // Only the columns this batch dirtied are rebuilt; every other
            // domain's column is republished as an `Arc` bump.
            if self.mutate != MUTATE_STALE_COLUMNS {
                for &d in &dirty {
                    shard.refresh_column(d);
                }
            }
        } else {
            // Historical cost profile: full truth-map compaction and a full
            // column rebuild on every flush.
            shard.truths.compact();
            shard.refresh_all_columns();
        }
        shard.flushes += 1;
        *lock(&self.views[k]) = shard.view();
        rerouted
    }

    fn enqueue(&self, reports: &[Obs]) {
        let tasks = self.tasks_arc();
        for &(u, t, v) in reports {
            let Some(task) = tasks.get(&t) else { continue };
            let mut shard = lock(&self.shards[shard_of(task.domain, self.n_shards)]);
            if shard.pending.insert((u, t), v).is_none() {
                self.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn publish(&self) {
        let mut slot = self.published.write().unwrap_or_else(|e| e.into_inner());
        let tasks = self.tasks_arc();
        let views: Vec<Arc<View>> = self.views.iter().map(|v| Arc::clone(&lock(v))).collect();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        *slot = Arc::new(Snapshot {
            epoch,
            n_shards: self.n_shards,
            tasks,
            views,
        });
    }

    fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.published.read().unwrap_or_else(|e| e.into_inner()))
    }

    fn merge_domains(&self, kept: u32, absorbed: u32) {
        assert_ne!(kept, absorbed);
        let tasks = {
            let mut table = lock(&self.tasks);
            let mut map = (*table.map).clone();
            for t in map.values_mut() {
                if t.domain == absorbed {
                    t.domain = kept;
                }
            }
            table.map = Arc::new(map);
            Arc::clone(&table.map)
        };
        let (ka, kb) = (
            shard_of(kept, self.n_shards),
            shard_of(absorbed, self.n_shards),
        );
        if ka == kb {
            // View stores happen under the shard guard(s): a merge does not
            // bump the flush counter, so only the lock orders its store
            // against concurrent flush stores.
            let mut shard = lock(&self.shards[ka]);
            shard.expertise.merge_domains(kept, absorbed);
            shard.columns.remove(&absorbed);
            shard.refresh_column(kept);
            *lock(&self.views[ka]) = shard.view();
        } else {
            let (lo, hi) = (ka.min(kb), ka.max(kb));
            let mut guard_lo = lock(&self.shards[lo]);
            let mut guard_hi = lock(&self.shards[hi]);
            let (keep_shard, from_shard) = if lo == ka {
                (&mut *guard_lo, &mut *guard_hi)
            } else {
                (&mut *guard_hi, &mut *guard_lo)
            };
            if let Some(column) = from_shard.expertise.take_domain(absorbed) {
                keep_shard.expertise.merge_in(kept, column);
            }
            from_shard.columns.remove(&absorbed);
            keep_shard.refresh_column(kept);
            let n = self.n_shards;
            let moved = from_shard
                .truths
                .take_matching(|id| tasks.get(id).is_some_and(|t| shard_of(t.domain, n) != kb));
            keep_shard.truths.insert_all(moved);
            let view_keep = keep_shard.view();
            let view_from = from_shard.view();
            *lock(&self.views[ka]) = view_keep;
            *lock(&self.views[kb]) = view_from;
            drop(guard_hi);
            drop(guard_lo);
        }
        self.publish();
    }
}

// ---------- scenario replay over twin engines ----------

/// Steps `a` and `b` through the scenario in lockstep, calling `check`
/// after every op (and after the final implicit tick). Returns the first
/// (op_index, detail) divergence, mirroring `eta2::check::run_scenario`'s
/// incremental-pair wiring: both twins share the scenario's shard count and
/// keep its `flush_threshold` enabled, so count-triggered flush points
/// coincide.
fn run_scenario_pair(
    s: &Scen,
    flags_a: (bool, bool, u8),
    flags_b: (bool, bool, u8),
    mut check: impl FnMut(usize, &Engine, &Engine) -> Option<String>,
) -> Option<(usize, String)> {
    let mk = |flags: (bool, bool, u8)| {
        let mut e = Engine::new(s.n_users as usize, s.n_shards, s.flush_threshold, 0);
        e.incremental = flags.0;
        e.warm = flags.1;
        e.mutate = flags.2;
        e
    };
    let mut ea = mk(flags_a);
    let mut eb = mk(flags_b);
    let mut ids: Vec<u32> = Vec::new();
    for (i, op) in s.ops.iter().enumerate() {
        match op {
            SOp::Register(specs) => {
                let domains: Vec<u32> = specs.iter().map(|&(d, _, _)| d as u32).collect();
                let ia = ea.register_tasks(&domains);
                let ib = eb.register_tasks(&domains);
                if ia != ib {
                    return Some((i, format!("register ids {ia:?} vs {ib:?}")));
                }
                ids.extend(ia);
            }
            SOp::Submit(reports) => {
                let obs: Vec<Obs> = reports
                    .iter()
                    .map(|&(u, ti, v)| (u as u32, ids[ti], v))
                    .collect();
                let aa = ea.submit(&obs);
                let ab = eb.submit(&obs);
                if aa != ab {
                    return Some((i, format!("accepted {aa} vs {ab}")));
                }
            }
            SOp::Tick => {
                ea.tick();
                eb.tick();
            }
            SOp::Merge { kept, absorbed } => {
                ea.merge_domains(*kept as u32, *absorbed as u32);
                eb.merge_domains(*kept as u32, *absorbed as u32);
            }
            SOp::CheckpointRestore => {
                let cap = s.flush_threshold;
                let (users, shards) = (s.n_users as usize, s.restore_shards);
                ea = Engine::restore(users, shards, cap, 0, flags_a, ea.checkpoint());
                eb = Engine::restore(users, shards, cap, 0, flags_b, eb.checkpoint());
            }
            SOp::Allocate | SOp::MinCost => {}
        }
        if let Some(detail) = check(i, &ea, &eb) {
            return Some((i, detail));
        }
    }
    ea.tick();
    eb.tick();
    check(s.ops.len(), &ea, &eb).map(|detail| (s.ops.len(), detail))
}

/// Bit-compares the externally observable state of two twins: truths of
/// every registered task, expertise over the union of published columns,
/// queue depth (mirror of `state_divergence`).
fn twin_divergence(a: &Engine, b: &Engine) -> Option<String> {
    let (sa, sb) = (a.snapshot(), b.snapshot());
    for &id in sa.tasks.keys() {
        let (ta, tb) = (sa.truth(id), sb.truth(id));
        if ta.map(f64::to_bits) != tb.map(f64::to_bits) {
            return Some(format!("truth of {id}: {ta:?} vs {tb:?}"));
        }
    }
    let domains: BTreeSet<u32> = sa
        .views
        .iter()
        .chain(sb.views.iter())
        .flat_map(|v| v.columns.keys().copied())
        .collect();
    for &d in &domains {
        for u in 0..a.n_users {
            let (ea, eb) = (sa.expertise(u, d), sb.expertise(u, d));
            if ea.to_bits() != eb.to_bits() {
                return Some(format!("expertise of user {u} in domain {d}: {ea} vs {eb}"));
            }
        }
    }
    let (qa, qb) = (
        a.queue_depth.load(Ordering::Relaxed),
        b.queue_depth.load(Ordering::Relaxed),
    );
    if qa != qb {
        return Some(format!("queue depth {qa} vs {qb}"));
    }
    None
}

/// Max relative warm-vs-cold gap over every registered task, or an error on
/// a presence mismatch (mirror of `warm_divergence`, without the bound).
/// Values this large only arise from the scenario generator's corrupt
/// 1e300 injections; neither solve converges within the iteration cap on
/// them, so the warm envelope is characterized separately above and below.
const SANE_MAGNITUDE: f64 = 1e100;

struct WarmGap {
    /// Max relative gap over every task.
    all: f64,
    /// Max relative gap over tasks whose truths stay below SANE_MAGNITUDE.
    sane: f64,
    /// Smallest truth magnitude seen among tasks with gap > 0.05.
    min_divergent_mag: f64,
}

fn warm_gap(cold: &Engine, warm: &Engine) -> Result<WarmGap, String> {
    let (sc, sw) = (cold.snapshot(), warm.snapshot());
    let mut out = WarmGap {
        all: 0.0,
        sane: 0.0,
        min_divergent_mag: f64::INFINITY,
    };
    for &id in sc.tasks.keys() {
        match (sc.truth(id), sw.truth(id)) {
            (None, None) => {}
            (Some(c), Some(w)) => {
                if c.to_bits() != w.to_bits() {
                    let mag = c.abs().max(w.abs());
                    let rel = (c - w).abs() / mag.max(1.0);
                    if rel.is_nan() {
                        return Err(format!("task {id}: cold {c} vs warm {w} (NaN gap)"));
                    }
                    out.all = out.all.max(rel);
                    if mag <= SANE_MAGNITUDE {
                        out.sane = out.sane.max(rel);
                    }
                    if rel > 0.05 {
                        out.min_divergent_mag = out.min_divergent_mag.min(mag);
                    }
                }
            }
            (c, w) => {
                return Err(format!(
                    "task {id} presence: cold {} vs warm {}",
                    c.is_some(),
                    w.is_some()
                ));
            }
        }
    }
    if cold.queue_depth.load(Ordering::Relaxed) != warm.queue_depth.load(Ordering::Relaxed) {
        return Err("queue depths differ".into());
    }
    Ok(out)
}

// ---------- check 1: sharded == sequential, bit-identical ----------

fn check_parity() {
    let mut worst_cases = 0;
    for seed in 0..40u64 {
        let mut rng = Rng::new(seed);
        let n_users = 2 + rng.usize(4);
        let n_domains = 1 + rng.usize(4) as u32;
        let rounds = 1 + rng.usize(3);
        let n_shards = 1 + rng.usize(4);
        let chunks = 1 + rng.usize(3);

        let reference = Engine::new(n_users, 1, 0, 0);
        let sharded = Engine::new(n_users, n_shards, 0, 0);
        let mut all_ids = Vec::new();

        for _round in 0..rounds {
            let domains: Vec<u32> = (0..1 + rng.usize(5))
                .map(|_| rng.usize(n_domains as usize) as u32)
                .collect();
            let ids_a = reference.register_tasks(&domains);
            let ids_b = sharded.register_tasks(&domains);
            assert_eq!(ids_a, ids_b, "id allocation diverged");

            let mut obs: Vec<Obs> = Vec::new();
            for &id in &ids_a {
                for u in 0..n_users {
                    if rng.bool(0.8) {
                        obs.push((u as u32, id, rng.range(-50.0, 50.0)));
                    }
                }
            }
            reference.submit(&obs);
            reference.tick();
            let size = obs.len().div_ceil(chunks).max(1);
            for chunk in obs.chunks(size) {
                sharded.submit(chunk);
            }
            sharded.tick();
            all_ids.extend(ids_a);
        }

        let (a, b) = (reference.snapshot(), sharded.snapshot());
        b.validate().unwrap();
        for &id in &all_ids {
            let (ta, tb) = (a.truth(id), b.truth(id));
            assert_eq!(
                ta.map(f64::to_bits),
                tb.map(f64::to_bits),
                "truth diverged for task {id} (seed {seed})"
            );
        }
        for d in 0..n_domains {
            for u in 0..n_users {
                assert_eq!(
                    a.expertise(u, d).to_bits(),
                    b.expertise(u, d).to_bits(),
                    "expertise diverged at ({u}, {d}) (seed {seed})"
                );
            }
        }
        worst_cases += 1;
    }
    println!("parity: sharded == sequential bit-identical over {worst_cases} randomized cases");
}

// ---------- check 2: incremental == full over scenarios, warm in bound ----------

fn check_scenario_pairs(seeds: u64) {
    let mut max_warm = 0.0f64;
    let mut warm_outliers = 0u64;
    for seed in 0..seeds {
        let s = gen_scenario(seed);
        if let Some((op, detail)) = run_scenario_pair(
            &s,
            (true, false, MUTATE_NONE),
            (false, false, MUTATE_NONE),
            |_, a, b| twin_divergence(a, b),
        ) {
            panic!("seed {seed} op {op}: incremental vs full diverged: {detail}");
        }
        let mut seed_max = 0.0f64;
        if let Some((op, detail)) = run_scenario_pair(
            &s,
            (true, false, MUTATE_NONE),
            (true, true, MUTATE_NONE),
            |_, cold, warm| match warm_gap(cold, warm) {
                Ok(gap) => {
                    // The metric's mathematical ceiling is 2.0; beyond it
                    // means a NaN leaked through (see warm-sweep mode and
                    // DESIGN.md §13.2 for the measured distribution).
                    if !(gap.all <= 2.0) {
                        return Some(format!("gap {} beyond metric ceiling", gap.all));
                    }
                    seed_max = seed_max.max(gap.sane);
                    None
                }
                Err(e) => Some(e),
            },
        ) {
            panic!("seed {seed} op {op}: warm vs cold divergence: {detail}");
        }
        max_warm = max_warm.max(seed_max);
        if seed_max > 0.05 {
            warm_outliers += 1;
        }
    }
    // Deterministic over the fixed seed range: the warm shortcut is a
    // skip-one-sweep heuristic, so a handful of adversarial seeds stall the
    // criterion and diverge, but the bulk must track cold closely.
    assert!(
        warm_outliers <= seeds / 20,
        "warm shortcut diverged > 0.05 on {warm_outliers} of {seeds} seeds — \
         the heuristic is firing far more often than the documented tail"
    );
    println!(
        "incremental: dirty-set == full-reconvergence bit-identical over {seeds} scenarios; \
         warm twin structurally sound, gap > 0.05 on {warm_outliers} seeds (max {max_warm:.4})"
    );
}

// ---------- check 3: copy-on-write layering ----------

fn check_cow_sharing() {
    let run = |incremental: bool| {
        let mut engine = Engine::new(8, 4, 0, 0);
        engine.incremental = incremental;
        // 80 tasks in one domain: the seed flush overshoots COMPACT_MIN so
        // everything lands in the base layer.
        let ids = engine.register_tasks(&vec![3u32; 80]);
        let quiet = engine.register_tasks(&[5u32]);
        let obs: Vec<Obs> = ids
            .iter()
            .flat_map(|&t| (0..3u32).map(move |u| (u, t, 5.0 + t as f64 * 0.01)))
            .collect();
        engine.submit(&obs);
        engine.submit(&[(0, quiet[0], 2.0)]);
        engine.tick();
        let k = shard_of(3, 4);
        let kq = shard_of(5, 4);
        assert_ne!(k, kq, "test needs the quiet domain on another shard");
        let s1 = engine.snapshot();
        // A 2-report flush: incremental mode should reuse the base Arc.
        engine.submit(&[(0, ids[0], 6.0), (1, ids[1], 7.0)]);
        engine.tick();
        let s2 = engine.snapshot();
        assert_eq!(s2.truth(ids[0]).is_some(), true);
        let base_shared = Arc::ptr_eq(&s1.views[k].truths.base, &s2.views[k].truths.base);
        let view_shared = Arc::ptr_eq(&s1.views[kq], &s2.views[kq]);
        (base_shared, view_shared)
    };
    let (inc_base, inc_view) = run(true);
    let (full_base, _) = run(false);
    assert!(
        inc_base,
        "incremental flush should share the truth base layer across epochs"
    );
    assert!(
        inc_view,
        "untouched shard's view should be pointer-shared across epochs"
    );
    assert!(
        !full_base,
        "full mode compacts every flush, so the base Arc must be fresh"
    );
    println!(
        "cow: small incremental flushes share the truth base Arc across epochs; \
         full mode recompacts; untouched shard views are pointer-shared"
    );
}

// ---------- check 4: no torn epochs under producers + merges ----------

fn check_torn_epochs() {
    const PRODUCERS: u64 = 4;
    const ROUNDS: u64 = 300;
    let engine = Engine::new(12, 4, 16, 3_000);
    let domains: Vec<u32> = (0..40).map(|j| j % 10).collect();
    let ids = engine.register_tasks(&domains);
    let done = AtomicBool::new(false);
    let validated = AtomicU64::new(0);

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let (engine, ids) = (&engine, &ids);
                s.spawn(move || {
                    for r in 0..ROUNDS {
                        let mut obs = Vec::new();
                        for k in 0..6u64 {
                            let h = mix(p ^ mix(r) ^ mix(k));
                            let t = ids[(h % ids.len() as u64) as usize];
                            let u = (mix(h) % 12) as u32;
                            obs.push((u, t, 5.0 + (h % 100) as f64 * 0.1));
                        }
                        engine.submit(&obs);
                        if p == 0 && r == ROUNDS / 2 {
                            engine.merge_domains(0, 1);
                        }
                        if p == 1 && r == ROUNDS / 3 {
                            engine.merge_domains(2, 7);
                        }
                    }
                })
            })
            .collect();

        let reader = s.spawn(|| {
            let mut last_epoch = 0u64;
            let mut last_flushes = vec![0u64; 4];
            while !done.load(Ordering::Acquire) {
                let snap = engine.snapshot();
                assert!(snap.epoch >= last_epoch, "epoch regressed");
                last_epoch = snap.epoch;
                snap.validate()
                    .unwrap_or_else(|e| panic!("torn epoch: {e}"));
                for (k, view) in snap.views.iter().enumerate() {
                    assert!(view.flushes >= last_flushes[k], "flush counter regressed");
                    last_flushes[k] = view.flushes;
                }
                validated.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });

        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();
    });

    engine.tick();
    assert_eq!(engine.queue_depth.load(Ordering::Relaxed), 0);
    let snap = engine.snapshot();
    snap.validate().unwrap();
    assert!(snap.tasks.values().all(|t| t.domain != 1 && t.domain != 7));
    println!(
        "torn-epoch: {} snapshot validations under {} producers + 2 live merges, all consistent",
        validated.load(Ordering::Relaxed),
        PRODUCERS
    );
}

// ---------- check 5: reads never block on an in-flight flush ----------

fn check_reads_never_block() {
    // Heavy spin makes each flush take milliseconds; reads must stay ~µs.
    let engine = Engine::new(16, 4, 48, 200_000);
    let domains: Vec<u32> = (0..32).map(|j| j % 8).collect();
    let ids = engine.register_tasks(&domains);
    let done = AtomicBool::new(false);
    let max_read_ns = AtomicU64::new(0);
    let max_flush_ns = AtomicU64::new(0);

    std::thread::scope(|s| {
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let (engine, ids, max_flush_ns) = (&engine, &ids, &max_flush_ns);
                s.spawn(move || {
                    for r in 0..400u64 {
                        let mut obs = Vec::new();
                        for k in 0..8u64 {
                            let h = mix(p ^ mix(r) ^ mix(k));
                            let t = ids[(h % ids.len() as u64) as usize];
                            obs.push(((mix(h) % 16) as u32, t, (h % 50) as f64 * 0.2));
                        }
                        let t0 = Instant::now();
                        engine.submit(&obs);
                        let dt = t0.elapsed().as_nanos() as u64;
                        // Submits that crossed the batch threshold ran the
                        // solver inline while holding a shard lock.
                        if dt > 1_000_000 {
                            max_flush_ns.fetch_max(dt, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();

        let reader = s.spawn(|| {
            let mut n = 0u64;
            while !done.load(Ordering::Acquire) {
                let t0 = Instant::now();
                let snap = engine.snapshot();
                let _ = snap.truth(ids[(n % ids.len() as u64) as usize]);
                let dt = t0.elapsed().as_nanos() as u64;
                max_read_ns.fetch_max(dt, Ordering::Relaxed);
                n += 1;
                std::thread::yield_now();
            }
            n
        });

        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        reader.join().unwrap();
    });

    let read_us = max_read_ns.load(Ordering::Relaxed) as f64 / 1_000.0;
    let flush_ms = max_flush_ns.load(Ordering::Relaxed) as f64 / 1_000_000.0;
    println!(
        "reads-never-block: max snapshot read {read_us:.1}us vs max in-line flush {flush_ms:.3}ms"
    );
    assert!(
        flush_ms > 1.0,
        "flushes too fast to prove anything ({flush_ms:.3}ms) — raise spin"
    );
    assert!(
        read_us * 1_000.0 < flush_ms * 1_000_000.0 / 4.0,
        "a read ({read_us:.1}us) waited on a flush ({flush_ms:.3}ms)"
    );
}

// ---------- extra modes ----------

/// Warm-vs-cold divergence envelope over `seeds` scenario replays; prints
/// the max gap and the worst offenders (calibration data for
/// WARM_DIVERGENCE_BOUND in eta2::check and DESIGN.md §13.2).
fn warm_sweep(seeds: u64) {
    let mut all_gaps: Vec<(f64, u64)> = Vec::new();
    let mut sane_gaps: Vec<(f64, u64)> = Vec::new();
    let mut min_divergent_mag = f64::INFINITY;
    for seed in 0..seeds {
        let s = gen_scenario(seed);
        let mut seed_all = 0.0f64;
        let mut seed_sane = 0.0f64;
        if let Some((op, detail)) = run_scenario_pair(
            &s,
            (true, false, MUTATE_NONE),
            (true, true, MUTATE_NONE),
            |_, cold, warm| match warm_gap(cold, warm) {
                Ok(gap) => {
                    seed_all = seed_all.max(gap.all);
                    seed_sane = seed_sane.max(gap.sane);
                    min_divergent_mag = min_divergent_mag.min(gap.min_divergent_mag);
                    None
                }
                Err(e) => Some(e),
            },
        ) {
            panic!("seed {seed} op {op}: warm vs cold structural divergence: {detail}");
        }
        all_gaps.push((seed_all, seed));
        sane_gaps.push((seed_sane, seed));
    }
    all_gaps.sort_by(|a, b| b.0.total_cmp(&a.0));
    sane_gaps.sort_by(|a, b| b.0.total_cmp(&a.0));
    let over = |gaps: &[(f64, u64)], t: f64| gaps.iter().filter(|(g, _)| *g > t).count();
    println!(
        "warm-sweep: {seeds} scenario seeds, max relative gap {:.4} (seed {}) over all tasks; \
         {:.6} (seed {}) on truths below {SANE_MAGNITUDE:.0e}",
        all_gaps[0].0, all_gaps[0].1, sane_gaps[0].0, sane_gaps[0].1
    );
    println!(
        "  all-task gaps   > 0.05: {}, > 0.10: {}, > 0.25: {}, > 0.50: {}",
        over(&all_gaps, 0.05),
        over(&all_gaps, 0.10),
        over(&all_gaps, 0.25),
        over(&all_gaps, 0.50)
    );
    println!(
        "  sane-task gaps  > 0.001: {}, > 0.01: {}, > 0.05: {}, > 0.25: {}",
        over(&sane_gaps, 0.001),
        over(&sane_gaps, 0.01),
        over(&sane_gaps, 0.05),
        over(&sane_gaps, 0.25)
    );
    println!("  smallest truth magnitude among gaps > 0.05: {min_divergent_mag:.3e}");
    for (g, seed) in all_gaps.iter().take(5) {
        println!("  worst (all): seed {seed} gap {g:.4}");
    }
    for (g, seed) in sane_gaps.iter().take(5) {
        println!("  worst (sane): seed {seed} gap {g:.6}");
    }
}

/// Replays seeds 0..`seeds` with an injected incremental-path bug and
/// prints the seeds whose inc-vs-full replay catches it — the validation
/// step behind the corpus/seeds.txt "incremental" section.
fn mutation_scan(which: &str, seeds: u64) {
    let mutate = match which {
        "stale-columns" => MUTATE_STALE_COLUMNS,
        "stale-truths" => MUTATE_STALE_TRUTHS,
        other => {
            eprintln!("unknown mutation {other:?} (stale-columns|stale-truths)");
            std::process::exit(2);
        }
    };
    let mut caught = Vec::new();
    for seed in 0..seeds {
        let s = gen_scenario(seed);
        let hit = run_scenario_pair(
            &s,
            (true, false, mutate),
            (false, false, MUTATE_NONE),
            |_, a, b| twin_divergence(a, b),
        );
        if let Some((op, detail)) = hit {
            caught.push(seed);
            println!("seed {seed} catches {which} at op {op}: {detail}");
        }
    }
    println!(
        "mutation {which}: {} of {seeds} seeds catch it: {caught:?}",
        caught.len()
    );
}

/// Incremental vs full flush cost at 1/10/100 % dirty-domain fractions —
/// the same workload shape and sizes as perf_suite's `incremental` section
/// (full profile: 10k tasks, 512 users, 200 domains, 4 shards, 16 rounds).
fn bench_incremental(repeat: usize) {
    let (n_tasks, n_users, rounds, n_domains) = (10_000u32, 512usize, 16u32, 200u32);

    // splitmix64 finalizer as used by perf_suite (wrapping-add variant).
    fn smix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    let make = |incremental: bool| {
        let mut engine = Engine::new(n_users, 4, 0, 0);
        engine.incremental = incremental;
        let ids = engine.register_tasks(&(0..n_tasks).map(|j| j % n_domains).collect::<Vec<u32>>());
        let mut obs: Vec<Obs> = Vec::new();
        for (j, &id) in ids.iter().enumerate() {
            for u in 0..4u64 {
                let h = smix(j as u64 ^ smix(u));
                obs.push((
                    (h % n_users as u64) as u32,
                    id,
                    10.0 + (h % 100) as f64 * 0.01,
                ));
            }
        }
        engine.submit(&obs);
        engine.tick();
        (engine, ids)
    };
    let (inc, ids) = make(true);
    let (full, ids_full) = make(false);
    assert_eq!(ids, ids_full, "twin id allocation diverged");

    // Rotating 8-worker cohort per round, as in perf_suite: a collection
    // round hears from few workers, so the sparse working set stays small
    // while the dense baseline walks every user slot per iteration.
    const COHORT: u64 = 8;

    for &pct in &[1u32, 10, 100] {
        let dirty_domains = (n_domains * pct / 100).max(1);
        let batches: Vec<Vec<Obs>> = (0..rounds)
            .map(|r| {
                let mut obs = Vec::new();
                for (j, &id) in ids.iter().enumerate() {
                    if (j as u32) % n_domains < dirty_domains {
                        for u in 0..3u64 {
                            let h = smix(u64::from(pct) ^ smix(u64::from(r)) ^ smix(j as u64 ^ u));
                            let user = (h % COHORT + u64::from(r) * COHORT) % n_users as u64;
                            obs.push((user as u32, id, 10.0 + (h % 100) as f64 * 0.01));
                        }
                    }
                }
                obs
            })
            .collect();
        let run = |engine: &Engine| {
            let t0 = Instant::now();
            let mut accepted = 0usize;
            for batch in &batches {
                accepted += engine.submit(batch);
                engine.tick();
            }
            (t0.elapsed().as_secs_f64(), accepted)
        };
        let mut best = [f64::INFINITY; 2];
        let mut sum = [0.0f64; 2];
        let mut accepted = 0usize;
        for _ in 0..repeat.max(3) {
            let (s_inc, a_inc) = run(&inc);
            let (s_full, a_full) = run(&full);
            assert_eq!(a_inc, a_full, "twin receipts diverged");
            accepted = a_inc;
            best[0] = best[0].min(s_inc);
            sum[0] += s_inc;
            best[1] = best[1].min(s_full);
            sum[1] += s_full;
        }
        let mean = |i: usize| sum[i] / repeat.max(3) as f64;
        println!(
            "incremental {pct}% dirty ({dirty_domains}/{n_domains} domains, {accepted} reports/run): \
             incremental best {:.4}s mean {:.4}s, full best {:.4}s mean {:.4}s, speedup {:.2}x, \
             obs/s inc {:.0} full {:.0}",
            best[0],
            mean(0),
            best[1],
            mean(1),
            best[1] / best[0],
            accepted as f64 / best[0],
            accepted as f64 / best[1],
        );
    }

    // The twins must still agree bit-for-bit after all fractions.
    let (si, sf) = (inc.snapshot(), full.snapshot());
    for &id in &ids {
        assert_eq!(
            si.truth(id).map(f64::to_bits),
            sf.truth(id).map(f64::to_bits),
            "truth diverged for task {id}"
        );
    }
    for d in 0..n_domains {
        for u in 0..n_users {
            assert_eq!(
                si.expertise(u, d).to_bits(),
                sf.expertise(u, d).to_bits(),
                "expertise diverged at ({u}, {d})"
            );
        }
    }
    println!("bench: incremental and full twins bit-identical after all fractions");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parse_n = |i: usize, default: u64| -> u64 {
        args.get(i).and_then(|s| s.parse().ok()).unwrap_or(default)
    };
    match args.first().map(String::as_str) {
        None => {
            check_parity();
            check_scenario_pairs(150);
            check_cow_sharing();
            check_torn_epochs();
            check_reads_never_block();
            println!("serve_extract: all checks passed");
        }
        Some("warm-sweep") => warm_sweep(parse_n(1, 2000)),
        Some("mutate") => {
            let which = args.get(1).map(String::as_str).unwrap_or("stale-columns");
            mutation_scan(which, parse_n(2, 300));
        }
        Some("bench") => bench_incremental(parse_n(1, 5) as usize),
        Some("describe") => {
            for seed in args[1..].iter().filter_map(|s| s.parse::<u64>().ok()) {
                let s = gen_scenario(seed);
                let count = |f: fn(&SOp) -> bool| s.ops.iter().filter(|o| f(o)).count();
                println!(
                    "seed {seed}: shards {}, restore_shards {}, flush_threshold {}, \
                     registers {}, submits {}, ticks {}, merges {}, restores {}",
                    s.n_shards,
                    s.restore_shards,
                    s.flush_threshold,
                    count(|o| matches!(o, SOp::Register(_))),
                    count(|o| matches!(o, SOp::Submit(_))),
                    count(|o| matches!(o, SOp::Tick)),
                    count(|o| matches!(o, SOp::Merge { .. })),
                    count(|o| matches!(o, SOp::CheckpointRestore)),
                );
            }
        }
        Some(other) => {
            eprintln!("unknown mode {other:?} (warm-sweep | mutate | bench)");
            std::process::exit(2);
        }
    }
}
