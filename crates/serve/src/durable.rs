//! Durable-ingest support types: the WAL record encoding, the on-disk
//! checkpoint wrapper that anchors a log position, and recovery errors.
//!
//! The redo-log protocol itself (append-before-apply, group commit,
//! recovery replay) lives on [`ServeEngine`](crate::ServeEngine); see
//! DESIGN.md §12.

use crate::engine::EngineCheckpoint;
use eta2_core::model::Observation;
use eta2_wal::WalError;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One logged engine mutation. Serialized as JSON into a WAL record;
/// replayed in log order by [`ServeEngine::recover`](crate::ServeEngine::recover).
///
/// `Tick` is logged even though it carries no data: flush batching changes
/// the MLE's decayed-accumulator trajectory, so replay must reproduce the
/// exact tick points to stay bit-identical with the uninterrupted run.
/// `Submit` carries only the finite observations — non-finite values are
/// deterministically quarantined at the boundary (and JSON cannot round-trip
/// them), so dropping them from the log does not change the replayed state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum WalOp {
    /// `register_tasks` with these specs (ids are assigned deterministically
    /// from the engine's `next_task` counter, so they are not logged).
    Register(Vec<crate::TaskSpec>),
    /// `submit` with these (already finite, already deduplicated) reports.
    Submit(Vec<Observation>),
    /// `merge_domains(kept, absorbed)`.
    Merge {
        /// The surviving domain label.
        kept: u32,
        /// The label folded into `kept`.
        absorbed: u32,
    },
    /// `tick()` — a flush boundary.
    Tick,
}

/// Why a [`recover`](crate::ServeEngine::recover) could not rebuild the
/// engine. Every variant names the offending path (the `eta2_datasets::io`
/// error idiom); lower-level causes are on the
/// [`std::error::Error::source`] chain.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoverError {
    /// The log itself failed to open or scan (I/O or sealed-segment
    /// corruption).
    Wal(WalError),
    /// A filesystem operation on the checkpoint directory failed.
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// The wrapped I/O error.
        source: std::io::Error,
    },
    /// A checkpoint file or a logged record failed to decode — corrupt
    /// JSON, or a version this build does not read.
    Json {
        /// The file (or log directory, for record decode failures) involved.
        path: PathBuf,
        /// The wrapped decoder error.
        source: serde_json::Error,
    },
    /// The log and checkpoint disagree in a way replay cannot reconcile
    /// (e.g. a logged `register_tasks` that fails against the recovered
    /// state).
    Corrupt {
        /// The log directory.
        path: PathBuf,
        /// What exactly could not be reconciled.
        detail: String,
    },
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Wal(e) => write!(f, "recovery failed: {e}"),
            RecoverError::Io { path, source } => {
                write!(f, "recovery i/o failed for {}: {source}", path.display())
            }
            RecoverError::Json { path, source } => {
                write!(f, "recovery decode failed for {}: {source}", path.display())
            }
            RecoverError::Corrupt { path, detail } => {
                write!(f, "recovery state mismatch in {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Wal(e) => Some(e),
            RecoverError::Io { source, .. } => Some(source),
            RecoverError::Json { source, .. } => Some(source),
            RecoverError::Corrupt { .. } => None,
        }
    }
}

impl From<WalError> for RecoverError {
    fn from(e: WalError) -> Self {
        RecoverError::Wal(e)
    }
}

/// What [`ServeEngine::recover`](crate::ServeEngine::recover) found and
/// replayed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RecoverReport {
    /// The loaded checkpoint file, if any existed.
    pub checkpoint_path: Option<PathBuf>,
    /// WAL position the checkpoint covered (0 with no checkpoint): records
    /// below this index were already folded into the checkpoint.
    pub checkpoint_position: u64,
    /// Log records replayed on top of the checkpoint.
    pub records_replayed: u64,
    /// Bytes of torn tail the log open dropped (0 for a clean log).
    pub torn_bytes: u64,
    /// Human-readable torn-tail cause, when `torn_bytes > 0`.
    pub torn_reason: Option<String>,
}

/// Format version of the durable checkpoint *file* (the wrapper around
/// [`EngineCheckpoint`] that anchors a WAL position).
pub const WAL_CHECKPOINT_VERSION: u32 = 1;

fn default_wal_checkpoint_version() -> u32 {
    1
}

fn checked_wal_checkpoint_version<'de, D>(de: D) -> Result<u32, D::Error>
where
    D: serde::Deserializer<'de>,
{
    let v = u32::deserialize(de)?;
    if !(1..=WAL_CHECKPOINT_VERSION).contains(&v) {
        return Err(serde::de::Error::custom(format!(
            "unsupported wal checkpoint version {v}; this build reads versions 1..={WAL_CHECKPOINT_VERSION}"
        )));
    }
    Ok(v)
}

/// On-disk durable checkpoint: an [`EngineCheckpoint`] plus the WAL
/// position it covers. File name `checkpoint-<position>.json`, written
/// atomically (tmp + fsync + rename).
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct WalCheckpoint {
    #[serde(
        default = "default_wal_checkpoint_version",
        deserialize_with = "checked_wal_checkpoint_version"
    )]
    pub(crate) version: u32,
    /// Records with index < `wal_position` are folded into `engine`.
    pub(crate) wal_position: u64,
    pub(crate) engine: EngineCheckpoint,
}

fn checkpoint_file_name(position: u64) -> String {
    format!("checkpoint-{position:020}.json")
}

fn io_err(path: &Path, source: std::io::Error) -> RecoverError {
    RecoverError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// Atomically writes `checkpoint-<position>.json` into `dir` and returns
/// its path. The rename is the commit point: a crash mid-write leaves only
/// a `.tmp` file that recovery ignores.
pub(crate) fn write_checkpoint(
    dir: &Path,
    position: u64,
    engine: &EngineCheckpoint,
) -> Result<PathBuf, RecoverError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let wrapped = WalCheckpoint {
        version: WAL_CHECKPOINT_VERSION,
        wal_position: position,
        engine: engine.clone(),
    };
    let body = serde_json::to_vec(&wrapped).map_err(|e| RecoverError::Json {
        path: dir.join(checkpoint_file_name(position)),
        source: e,
    })?;
    let tmp = dir.join(format!(".tmp-{}", checkpoint_file_name(position)));
    let path = dir.join(checkpoint_file_name(position));
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        use std::io::Write;
        f.write_all(&body).map_err(|e| io_err(&tmp, e))?;
        f.sync_data().map_err(|e| io_err(&tmp, e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
    sync_dir(dir)?;
    Ok(path)
}

/// Loads the newest (highest-position) checkpoint in `dir`, if any.
/// Stale `.tmp` files from a crashed write are ignored; a checkpoint that
/// fails to decode is an error, not a silent fallback — its rename was the
/// durable commit, so damage to it is real corruption.
pub(crate) fn load_latest_checkpoint(
    dir: &Path,
) -> Result<Option<(PathBuf, WalCheckpoint)>, RecoverError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(dir, e)),
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(digits) = name
            .strip_prefix("checkpoint-")
            .and_then(|s| s.strip_suffix(".json"))
        {
            if let Ok(pos) = digits.parse::<u64>() {
                if best.as_ref().is_none_or(|(b, _)| pos > *b) {
                    best = Some((pos, entry.path()));
                }
            }
        }
    }
    let Some((_, path)) = best else {
        return Ok(None);
    };
    let body = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
    let wrapped: WalCheckpoint = serde_json::from_slice(&body).map_err(|e| RecoverError::Json {
        path: path.clone(),
        source: e,
    })?;
    Ok(Some((path, wrapped)))
}

#[cfg(unix)]
fn sync_dir(dir: &Path) -> Result<(), RecoverError> {
    std::fs::File::open(dir)
        .and_then(|f| f.sync_all())
        .map_err(|e| io_err(dir, e))
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) -> Result<(), RecoverError> {
    Ok(())
}
