//! # eta2-serve — concurrent serving engine for the ETA² reproduction
//!
//! [`Eta2Server`](https://docs.rs/eta2-server) runs the paper's Figure-1
//! loop as a single-owner `&mut self` value: every ingest re-runs the MLE
//! synchronously and reads wait behind writes. This crate turns that loop
//! into an always-on service:
//!
//! * **Domain-sharded state.** Expertise accumulators, truths and pending
//!   reports live in `N` shards, each behind its own lock. A domain is
//!   pinned to one shard by hashing its [`DomainId`], so two shards never
//!   share a domain column — the per-domain decomposition invariant of
//!   `DynamicExpertise::ingest_batch` makes the sharded result bit-identical
//!   to a sequential one.
//! * **Batched ingest.** [`ServeEngine::submit`] routes reports to their
//!   domain's shard and only appends to that shard's pending batch. A shard
//!   flushes through the MLE when its batch reaches
//!   [`ServeConfig::batch_capacity`], or when [`ServeEngine::tick`] forces
//!   an epoch flush across all shards in parallel (via `eta2-par`).
//! * **Epoch snapshot reads.** Each flush publishes an immutable
//!   [`EpochSnapshot`] behind an `Arc` swap. `truth()` / `expertise()` /
//!   allocation reads clone the `Arc` and never take a shard lock, so they
//!   cannot block on an in-flight MLE flush — at worst they see the
//!   previous epoch.
//!
//! Non-finite report values are quarantined at the submit boundary (counted
//! in `serve.quarantined_reports`, never enqueued), matching the
//! degradation semantics established by the fault-injection harness.
//!
//! ```
//! use eta2_core::model::{DomainId, UserId};
//! use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
//!
//! let mut cfg = ServeConfig::default();
//! cfg.n_users = 3;
//! cfg.batch_capacity = 0; // flush manually via tick()
//! let engine = ServeEngine::new(cfg);
//! let ids = engine
//!     .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
//!     .unwrap();
//! for (u, v) in [(0, 10.0), (1, 11.0), (2, 9.5)] {
//!     let mut obs = eta2_core::model::ObservationSet::new();
//!     obs.insert(UserId(u), ids[0], v);
//!     engine.submit(&obs);
//! }
//! engine.tick();
//! let snap = engine.snapshot();
//! assert!(snap.truth(ids[0]).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
mod engine;
mod snapshot;

pub use durable::{RecoverError, RecoverReport, WAL_CHECKPOINT_VERSION};
pub use engine::{
    EngineCheckpoint, FlushOutcome, ServeEngine, SubmitReceipt, ENGINE_CHECKPOINT_VERSION,
};
pub use snapshot::EpochSnapshot;

use eta2_core::model::DomainId;
use eta2_core::truth::MleConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of a [`ServeEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
#[serde(default)]
pub struct ServeConfig {
    /// Number of registered users (fixed for the engine's lifetime).
    pub n_users: usize,
    /// Number of domain shards. Each domain is pinned to exactly one shard
    /// by [`shard_of`]; more shards means more ingest concurrency.
    pub n_shards: usize,
    /// Pending reports per shard that trigger an automatic flush from
    /// within [`ServeEngine::submit`]. `0` disables count-based flushing —
    /// only [`ServeEngine::tick`] flushes.
    pub batch_capacity: usize,
    /// Worker threads for [`ServeEngine::tick`]'s parallel flush
    /// (`eta2-par` convention: 0 = one per core, 1 = sequential).
    pub threads: usize,
    /// Expertise decay factor `α` of Eq. 9.
    pub alpha: f64,
    /// Allocation accuracy threshold `ε` of Eq. 11, used by
    /// [`EpochSnapshot::allocate_max_quality`].
    pub epsilon: f64,
    /// MLE solver configuration.
    pub mle: MleConfig,
    /// Incremental flush path (default `true`): the MLE iterates only over
    /// each batch's dirty users, only the dirty domains' expertise columns
    /// are rebuilt, and truth maps publish through copy-on-write layers, so
    /// per-flush cost is proportional to the change set. `false` restores
    /// the historical full-reconvergence cost profile (dense iteration over
    /// every user, full column rebuild, full truth-map compaction each
    /// flush) with **bit-identical results** — kept as the measurable twin
    /// for the differential harness and `perf_suite`'s incremental section.
    pub incremental: bool,
    /// Warm-start flushes from the previous epoch's truth estimates
    /// (default `false`): a re-flushed task's convergence criterion is
    /// seeded with its previously published truth, so an unchanged batch
    /// can settle after a single iteration. Warm starting can stop one
    /// iteration earlier than a cold solve, so published truths may differ
    /// from the cold trajectory within one convergence step (bounded
    /// divergence, see DESIGN.md §13.2) — which is why it is opt-in.
    pub warm_start: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            n_users: 0,
            n_shards: 8,
            batch_capacity: 256,
            threads: 0,
            alpha: 0.5,
            epsilon: 0.1,
            mle: MleConfig::default(),
            incremental: true,
            warm_start: false,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration, panicking on nonsense values.
    ///
    /// # Panics
    ///
    /// Panics when `n_shards == 0`, or `alpha` ∉ [0, 1], or `epsilon` is
    /// not finite and positive.
    pub fn validate(&self) {
        assert!(self.n_shards > 0, "n_shards must be at least 1");
        assert!(
            (0.0..=1.0).contains(&self.alpha),
            "alpha must be in [0, 1], got {}",
            self.alpha
        );
        assert!(
            self.epsilon.is_finite() && self.epsilon > 0.0,
            "epsilon must be finite and positive, got {}",
            self.epsilon
        );
    }
}

/// A task registration request: everything a [`Task`](eta2_core::model::Task)
/// carries except the id, which the engine assigns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// The expertise domain the task belongs to.
    pub domain: DomainId,
    /// Processing time `t_j` (hours).
    pub processing_time: f64,
    /// Recruiting cost `c_j` per assigned user.
    pub cost: f64,
}

impl TaskSpec {
    /// Creates a task spec.
    pub fn new(domain: DomainId, processing_time: f64, cost: f64) -> Self {
        TaskSpec {
            domain,
            processing_time,
            cost,
        }
    }
}

/// Errors returned by [`ServeEngine`] entry points.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// A task spec carried a non-finite or non-positive numeric field.
    InvalidTask {
        /// Index of the offending spec in the registration batch.
        index: usize,
        /// Which field was invalid (`"processing_time"` or `"cost"`).
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A registration batch would overflow the `u32` task id space (ids
    /// are never reused; a wrap would alias live tasks). The batch is
    /// rejected whole.
    TaskIdsExhausted {
        /// The next id the engine would have assigned.
        next: u32,
        /// Number of ids the rejected batch requested.
        requested: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidTask {
                index,
                field,
                value,
            } => write!(
                f,
                "task spec #{index}: {field} must be finite and positive, got {value}"
            ),
            ServeError::TaskIdsExhausted { next, requested } => write!(
                f,
                "task id space exhausted: {requested} ids requested with next id already at {next}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

/// The shard a domain is pinned to, for an engine with `n_shards` shards.
///
/// A splitmix64-style finalizer spreads consecutive domain ids across
/// shards; the mapping is a pure function, so every component (engine,
/// snapshots, tests) agrees on it without coordination.
pub fn shard_of(domain: DomainId, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    let mut z = domain.0 as u64 ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % n_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for d in 0..1000u32 {
            let s = shard_of(DomainId(d), 8);
            assert!(s < 8);
            assert_eq!(s, shard_of(DomainId(d), 8), "pure function");
        }
        // One shard degenerates to everything-in-shard-0.
        assert_eq!(shard_of(DomainId(123), 1), 0);
    }

    #[test]
    fn shard_of_spreads_consecutive_domains() {
        let mut seen = [false; 4];
        for d in 0..64u32 {
            seen[shard_of(DomainId(d), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards reachable: {seen:?}");
    }

    #[test]
    fn config_validate_rejects_nonsense() {
        let ok = ServeConfig::default();
        ok.validate();
        let mut bad = ok;
        bad.n_shards = 0;
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
        let mut bad = ok;
        bad.alpha = 1.5;
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
        let mut bad = ok;
        bad.epsilon = f64::NAN;
        assert!(std::panic::catch_unwind(move || bad.validate()).is_err());
    }
}
