//! The concurrent serving engine: sharded writes, epoch-published reads.

use crate::durable::{self, RecoverError, RecoverReport, WalOp};
use crate::snapshot::{ShardView, TruthLayers};
use crate::{shard_of, EpochSnapshot, ServeConfig, ServeError, TaskSpec};
use eta2_core::model::{DomainId, Observation, ObservationSet, Task, TaskId, UserId};
use eta2_core::truth::{DynamicExpertise, IngestOptions, TruthEstimate};
use eta2_obs::TraceContext;
use eta2_par::Parallelism;
use eta2_wal::{Wal, WalConfig};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// One domain shard's mutable state. Guarded by its own mutex; holds the
/// expertise accumulators for exactly the domains that hash to it.
struct Shard {
    expertise: DynamicExpertise,
    /// Flushed truths behind copy-on-write layers: publishing a view
    /// clones `Arc`s, and a flush's insert clones only the small delta
    /// layer (see [`TruthLayers`]).
    truths: TruthLayers,
    /// Cached dense expertise columns for this shard's domains, shared
    /// into views by `Arc`. A flush refreshes only the columns its batch
    /// dirtied; the rest ride along untouched across epochs.
    columns: BTreeMap<DomainId, Arc<Vec<f64>>>,
    pending: ObservationSet,
    /// Distinct (user, task) pairs in `pending`.
    pending_len: usize,
    flushes: u64,
    /// Ingest spans whose reports sit in `pending`, drained by the next
    /// flush (which emits one fan-in `trace_flush` span naming them all
    /// as parents). Empty unless tracing was active at submit time.
    pending_traces: Vec<TraceContext>,
}

impl Shard {
    /// Rebuilds the cached read column for `domain` from the accumulators,
    /// removing the cache entry when the domain has no live data — exactly
    /// the domains `DynamicExpertise::matrix` would materialize, which is
    /// what keeps [`EpochSnapshot::expertise_matrix`] identical to the
    /// pre-cache behaviour.
    fn refresh_column(&mut self, domain: DomainId) {
        match self.expertise.column(domain) {
            Some(col) => {
                self.columns.insert(domain, Arc::new(col));
            }
            None => {
                self.columns.remove(&domain);
            }
        }
    }

    /// Rebuilds every cached column (the non-incremental cost profile,
    /// and the only correct move after bulk accumulator surgery like
    /// restore).
    fn refresh_all_columns(&mut self) {
        let domains: Vec<DomainId> = self.expertise.domains().collect();
        self.columns.clear();
        for d in domains {
            self.refresh_column(d);
        }
    }

    /// Assembles this shard's published read view: `Arc` bumps for the
    /// truth layers and every column — O(domains), never a deep copy.
    fn view(&self) -> Arc<ShardView> {
        Arc::new(ShardView {
            truths: self.truths.clone(),
            expertise: self.columns.clone(),
            flushes: self.flushes,
        })
    }
}

/// Task table plus the id allocator, swapped copy-on-write so readers and
/// flushers can hold a consistent `Arc` without a lock.
struct TaskTable {
    map: Arc<BTreeMap<TaskId, Task>>,
    next: u32,
}

/// Everything a flush produces: the public outcome and reports that
/// belong to another shard after a domain merge.
struct FlushResult {
    outcome: FlushOutcome,
    rerouted: Vec<Observation>,
}

/// Summary of one shard flush.
#[derive(Debug, Clone, PartialEq)]
pub struct FlushOutcome {
    /// Which shard flushed.
    pub shard: usize,
    /// Reports folded into the MLE by this flush.
    pub reports: usize,
    /// Distinct tasks in the flushed batch.
    pub tasks: usize,
    /// Joint iterations the slowest domain in the batch needed.
    pub iterations: usize,
    /// Whether every domain in the batch converged.
    pub converged: bool,
    /// Distinct users whose reports this flush folded in — the MLE's
    /// iteration width on the incremental path.
    pub dirty_users: usize,
    /// Distinct domains the batch touched — the number of expertise
    /// columns this flush rebuilt on the incremental path.
    pub dirty_domains: usize,
    /// Truth estimates produced by this flush (its batch only).
    pub truths: BTreeMap<TaskId, TruthEstimate>,
}

/// What [`ServeEngine::submit`] did with a report batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitReceipt {
    /// Reports routed into a shard's pending batch (replacements included).
    pub accepted: usize,
    /// Reports for task ids the engine has never registered (dropped).
    pub unknown_task: usize,
    /// Non-finite report values quarantined at the boundary (dropped, per
    /// the established degradation semantics — the batch is not rejected).
    pub quarantined: usize,
    /// Flushes this submit triggered by filling a shard's batch.
    pub flushes: Vec<FlushOutcome>,
}

/// The concurrent serving engine. See the crate docs for the architecture.
///
/// All entry points take `&self`: the engine is meant to be shared across
/// producer and reader threads (e.g. behind an `Arc`).
pub struct ServeEngine {
    cfg: ServeConfig,
    shards: Vec<Mutex<Shard>>,
    /// Each shard's last published view, behind its own mutex so
    /// [`publish`](Self::publish) never waits on an in-flight flush.
    /// Stores always happen while the owning shard's lock is held
    /// (shard → view lock order, as in [`restore`](Self::restore)): two
    /// racing flushes could otherwise store out of order, replacing a
    /// newer view with an older one and regressing the non-decreasing
    /// [`EpochSnapshot::shard_flushes`] counters.
    views: Vec<Mutex<Arc<ShardView>>>,
    tasks: Mutex<TaskTable>,
    published: RwLock<Arc<EpochSnapshot>>,
    epoch: AtomicU64,
    queue_depth: AtomicUsize,
    /// Flush span ids awaiting their terminal `trace_publish` fan-in
    /// span, drained by the next [`publish`](Self::publish). A leaf lock
    /// (taken with a shard lock or the published write lock held, never
    /// the reverse), so it cannot participate in a lock cycle. With two
    /// publishes racing, a flush may be attributed to either epoch — the
    /// causal chain is exact, the epoch attribution is advisory.
    flushed_traces: Mutex<Vec<u64>>,
    /// Redo log for durable ingest, attached by [`recover`](Self::recover).
    /// `None` for volatile engines (the default — nothing is logged).
    ///
    /// Lock order: this mutex is the *outermost* lock in the engine. Every
    /// durable mutation takes it first and holds it across
    /// append-then-apply, so the log's record order always equals the
    /// apply order (what makes replay deterministic); no path ever takes
    /// it while holding a shard, table, or view lock.
    wal: Option<Mutex<Wal>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ServeEngine {
    /// Creates an engine with no tasks and all-default expertise.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`ServeConfig::validate`].
    pub fn new(cfg: ServeConfig) -> Self {
        cfg.validate();
        let shards = (0..cfg.n_shards)
            .map(|_| {
                Mutex::new(Shard {
                    expertise: DynamicExpertise::new(cfg.n_users, cfg.alpha, cfg.mle),
                    truths: TruthLayers::empty(),
                    columns: BTreeMap::new(),
                    pending: ObservationSet::new(),
                    pending_len: 0,
                    flushes: 0,
                    pending_traces: Vec::new(),
                })
            })
            .collect();
        let views: Vec<Mutex<Arc<ShardView>>> = (0..cfg.n_shards)
            .map(|_| Mutex::new(Arc::new(ShardView::empty())))
            .collect();
        let tasks = Arc::new(BTreeMap::new());
        let initial = Arc::new(EpochSnapshot::assemble(
            0,
            &cfg,
            Arc::clone(&tasks),
            views.iter().map(|v| Arc::clone(&lock(v))).collect(),
        ));
        ServeEngine {
            cfg,
            shards,
            views,
            tasks: Mutex::new(TaskTable {
                map: tasks,
                next: 0,
            }),
            published: RwLock::new(initial),
            epoch: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            flushed_traces: Mutex::new(Vec::new()),
            wal: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn tasks_arc(&self) -> Arc<BTreeMap<TaskId, Task>> {
        Arc::clone(&lock(&self.tasks).map)
    }

    /// Registers a batch of tasks, assigning consecutive ids, and publishes
    /// a new epoch so the tasks are visible to readers before any report
    /// for them can be accepted. Validation is atomic: on error — an
    /// invalid spec, or a batch that would exhaust the `u32` id space —
    /// nothing is registered.
    pub fn register_tasks(&self, specs: &[TaskSpec]) -> Result<Vec<TaskId>, ServeError> {
        for (index, s) in specs.iter().enumerate() {
            if !(s.processing_time.is_finite() && s.processing_time > 0.0) {
                return Err(ServeError::InvalidTask {
                    index,
                    field: "processing_time",
                    value: s.processing_time,
                });
            }
            if !(s.cost.is_finite() && s.cost >= 0.0) {
                return Err(ServeError::InvalidTask {
                    index,
                    field: "cost",
                    value: s.cost,
                });
            }
        }
        // Logged after validation (an invalid batch never reaches the log)
        // but before the id check: a batch that exhausts the id space fails
        // identically on replay, so the record is harmless — and logging
        // before applying is what durability means.
        let _wal = self.wal_guard(|| WalOp::Register(specs.to_vec()));
        let ids = {
            let mut table = lock(&self.tasks);
            // Ids are u32 and never reused; a silent wrap in release builds
            // would alias live tasks, so exhaustion is a hard error.
            if u32::try_from(specs.len())
                .ok()
                .and_then(|n| table.next.checked_add(n))
                .is_none()
            {
                return Err(ServeError::TaskIdsExhausted {
                    next: table.next,
                    requested: specs.len(),
                });
            }
            // Copy-on-write through `make_mut` instead of an unconditional
            // clone. Honest caveat: the published snapshot pins the
            // previous `Arc` (every `publish` stores a clone of it), so in
            // steady state `make_mut` still copies the table once per
            // registration batch; it only elides the copy when the engine
            // holds the sole reference. The structural win is that the
            // copy now happens exactly when sharing demands it rather
            // than by construction.
            let TaskTable { map, next } = &mut *table;
            let map = Arc::make_mut(map);
            let ids: Vec<TaskId> = specs
                .iter()
                .map(|s| {
                    let id = TaskId(*next);
                    *next += 1;
                    map.insert(id, Task::new(id, s.domain, s.processing_time, s.cost));
                    id
                })
                .collect();
            ids
        };
        self.publish();
        Ok(ids)
    }

    /// Routes a report batch to the owning shards' pending batches.
    ///
    /// Non-finite values are quarantined (dropped and counted), reports for
    /// unknown tasks are dropped, and a shard whose pending batch reaches
    /// [`ServeConfig::batch_capacity`] is flushed through the MLE and a new
    /// epoch is published before this returns.
    ///
    /// With tracing active, the batch opens a causal trace: a root
    /// `trace_ingest` span is emitted here, rides each receiving shard's
    /// pending queue, and is closed by fan-in `trace_flush` /
    /// `trace_publish` spans (each naming its covered spans in a
    /// `parents` array) as the reports progress; dropped reports get a
    /// terminal `trace_quarantine` child instead.
    pub fn submit(&self, reports: &ObservationSet) -> SubmitReceipt {
        self.submit_traced(reports, None)
    }

    /// [`submit`](Self::submit) with an explicit trace parent: when
    /// `parent` is `Some` (and tracing is active) the batch's
    /// `trace_ingest` span opens as its child rather than as a root, so
    /// a front door that opened a span at socket read (see
    /// `trace_net_request` in `eta2-obs`) extends one causal chain from
    /// the wire through ingest, flush, and publish.
    pub fn submit_traced(
        &self,
        reports: &ObservationSet,
        parent: Option<TraceContext>,
    ) -> SubmitReceipt {
        // Durable mode: append the redo record before any state changes
        // and hold the wal guard across the apply, so log order == apply
        // order. Only finite values are logged — non-finite reports are
        // deterministically quarantined below, so replay reaches the same
        // state without them (and JSON could not round-trip them anyway).
        let wal = self
            .wal_guard(|| WalOp::Submit(reports.iter().filter(|o| o.value.is_finite()).collect()));
        let tasks = self.tasks_arc();
        let n = self.cfg.n_shards;
        let mut routed: Vec<Vec<Observation>> = vec![Vec::new(); n];
        let mut receipt = SubmitReceipt::default();
        for o in reports.iter() {
            if !o.value.is_finite() {
                receipt.quarantined += 1;
                eta2_obs::counter("serve.quarantined_reports", 1);
                continue;
            }
            match tasks.get(&o.task) {
                None => receipt.unknown_task += 1,
                Some(t) => routed[shard_of(t.domain, n)].push(o),
            }
        }
        receipt.accepted = routed.iter().map(Vec::len).sum();
        eta2_obs::counter("serve.accepted_reports", receipt.accepted as u64);
        // Root span allocated after the boundary counts are known and
        // before any shard can see (and flush) the reports, so every
        // child span's parent is already in the stream.
        let dropped = receipt.quarantined + receipt.unknown_task;
        let ctx = (eta2_obs::tracing_active() && receipt.accepted + dropped > 0)
            .then(|| parent.map_or_else(TraceContext::root, |p| p.child()));
        if let Some(ctx) = ctx {
            eta2_obs::emit(&eta2_obs::Event::TraceIngest {
                trace: ctx.trace,
                span: ctx.span,
                parent: ctx.parent,
                accepted: receipt.accepted as u64,
                quarantined: receipt.quarantined as u64,
                unknown: receipt.unknown_task as u64,
            });
            if dropped > 0 {
                let q = ctx.child();
                eta2_obs::emit(&eta2_obs::Event::TraceQuarantine {
                    trace: q.trace,
                    span: q.span,
                    parent: q.parent,
                    quarantined: receipt.quarantined as u64,
                    unknown: receipt.unknown_task as u64,
                });
            }
        }
        let mut rerouted = Vec::new();
        for (k, batch) in routed.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut shard = lock(&self.shards[k]);
            if let Some(ctx) = ctx {
                shard.pending_traces.push(ctx);
            }
            for o in &batch {
                if shard.pending.insert(o.user, o.task, o.value).is_none() {
                    shard.pending_len += 1;
                    self.queue_depth.fetch_add(1, Ordering::Relaxed);
                }
            }
            if self.cfg.batch_capacity > 0 && shard.pending_len >= self.cfg.batch_capacity {
                let fr = self.flush_shard(k, &mut shard);
                drop(shard);
                rerouted.extend(fr.rerouted);
                receipt.flushes.push(fr.outcome);
            }
        }
        if !rerouted.is_empty() {
            self.enqueue(&rerouted);
        }
        if !receipt.flushes.is_empty() {
            self.publish();
        }
        if let Some(mut g) = wal {
            // Group commit: a flush is a batch boundary, so under the
            // per-batch fsync posture everything up to and including this
            // submit becomes durable here.
            if !receipt.flushes.is_empty() {
                Self::wal_sync_batched(&mut g);
            }
        }
        self.publish_gauges();
        receipt
    }

    /// Upper bound on re-sweep passes inside one [`tick`](Self::tick).
    ///
    /// A quiescent engine needs at most two passes (one flush surfacing
    /// merge-displaced stragglers, one folding them at their new home),
    /// but concurrent submitters interleaved with merges can keep
    /// displacing reports indefinitely — an unbounded loop here is a
    /// livelock. Residue past the cap simply stays queued for the next
    /// tick and is visible through the `serve.queue_depth` gauge.
    const MAX_TICK_SWEEPS: usize = 8;

    /// Flushes every shard with pending reports (in parallel, per
    /// [`ServeConfig::threads`]), re-sweeping until merge-displaced
    /// reports have drained (bounded by [`Self::MAX_TICK_SWEEPS`] passes
    /// so concurrent submitters cannot livelock the caller), and
    /// publishes one new epoch covering all of it. Returns the per-shard
    /// outcomes (one entry per flush, so a shard can appear twice when a
    /// re-sweep was needed); empty when nothing was pending. After
    /// `tick()` returns, [`queue_depth`] is zero unless a concurrent
    /// `submit` raced in behind it or the sweep cap was hit.
    ///
    /// [`queue_depth`]: ServeEngine::queue_depth
    pub fn tick(&self) -> Vec<FlushOutcome> {
        // Tick is logged even though it carries no payload: flush batching
        // shapes the MLE's decayed accumulators, so replay must tick at
        // the same points to reproduce the state bit-for-bit. A tick is
        // also a batch boundary for group commit.
        let wal = self.wal_guard(|| WalOp::Tick);
        let outcomes = self.tick_inner();
        if let Some(mut g) = wal {
            Self::wal_sync_batched(&mut g);
        }
        outcomes
    }

    fn tick_inner(&self) -> Vec<FlushOutcome> {
        let _span = eta2_obs::span!("serve.tick");
        let threads = Parallelism::from_threads(self.cfg.threads).resolve();
        let mut outcomes = Vec::new();
        // A flush can surface reports whose domain was merged away since
        // they were queued; they re-enqueue at their new home shard and a
        // further sweep folds them in.
        for _sweep in 0..Self::MAX_TICK_SWEEPS {
            let results = eta2_par::map_indexed(self.cfg.n_shards, threads, |k| {
                let mut shard = lock(&self.shards[k]);
                if shard.pending_len == 0 {
                    return None;
                }
                Some(self.flush_shard(k, &mut shard))
            });
            let mut rerouted = Vec::new();
            for fr in results.into_iter().flatten() {
                outcomes.push(fr.outcome);
                rerouted.extend(fr.rerouted);
            }
            if rerouted.is_empty() {
                break;
            }
            self.enqueue(&rerouted);
        }
        self.publish_gauges();
        if !outcomes.is_empty() {
            self.publish();
        }
        outcomes
    }

    /// Drains one shard's pending batch through the MLE and stores the
    /// rebuilt read view into `self.views[k]`. Must be called with the
    /// shard's lock held — the store happens under it, which is what keeps
    /// view publication ordered — and never takes another shard's lock.
    fn flush_shard(&self, k: usize, shard: &mut Shard) -> FlushResult {
        let _span = eta2_obs::span!("serve.flush");
        let _shard_span = eta2_obs::Span::start_with(|| format!("serve.flush_seconds|shard={k}"));
        let pending = std::mem::take(&mut shard.pending);
        let traces = std::mem::take(&mut shard.pending_traces);
        let drained = shard.pending_len;
        shard.pending_len = 0;
        self.queue_depth.fetch_sub(drained, Ordering::Relaxed);

        // Resolve against the *current* task table: tasks registered after
        // a report was enqueued are still found, and tasks relabeled into
        // another shard by a domain merge are re-routed, not mis-folded.
        let tasks = self.tasks_arc();
        let n = self.cfg.n_shards;
        let mut batch: Vec<Task> = Vec::new();
        let mut seen: BTreeSet<TaskId> = BTreeSet::new();
        let mut keep = ObservationSet::new();
        let mut kept = 0usize;
        let mut rerouted = Vec::new();
        for o in pending.iter() {
            match tasks.get(&o.task) {
                None => {}
                Some(t) if shard_of(t.domain, n) == k => {
                    keep.insert(o.user, o.task, o.value);
                    kept += 1;
                    if seen.insert(o.task) {
                        batch.push(*t);
                    }
                }
                Some(_) => rerouted.push(o),
            }
        }

        // Warm start (opt-in): seed the solver's convergence criterion with
        // the previously published estimate of every re-flushed task, so an
        // unchanged batch can settle after one iteration instead of
        // re-walking the cold trajectory. Bounded divergence — see
        // DESIGN.md §13.2 and the `warm_vs_full` oracle pair.
        let warm: Option<BTreeMap<TaskId, TruthEstimate>> = self.cfg.warm_start.then(|| {
            batch
                .iter()
                .filter_map(|t| shard.truths.get(&t.id).map(|&est| (t.id, est)))
                .collect()
        });
        let mut opts = IngestOptions::default();
        opts.warm = warm.as_ref();
        // The incremental path iterates only the batch's dirty users;
        // `dense` restores the historical full-width sweep (bit-identical
        // results, different cost profile).
        opts.dense = !self.cfg.incremental;
        let solved = shard.expertise.ingest_batch_with(&batch, &keep, opts);
        let dirty_users = keep
            .iter()
            .map(|o| o.user)
            .collect::<BTreeSet<UserId>>()
            .len();
        shard
            .truths
            .insert_all(solved.truths.iter().map(|(&id, &est)| (id, est)));
        let dirty: BTreeSet<DomainId> = batch.iter().map(|t| t.domain).collect();
        if self.cfg.incremental {
            // Only the columns this batch dirtied are rebuilt; every other
            // domain's column is republished as an `Arc` bump.
            for &d in &dirty {
                shard.refresh_column(d);
            }
        } else {
            // Historical cost profile: full truth-map compaction and a
            // full column rebuild on every flush, exactly what
            // `expertise.matrix()` plus `truths.clone()` used to cost.
            shard.truths.compact();
            shard.refresh_all_columns();
        }
        shard.flushes += 1;
        // Stored while the caller still holds the shard lock: racing
        // flushes of this shard then store their views in flush order, so
        // an older view can never overwrite a newer one.
        *lock(&self.views[k]) = shard.view();
        eta2_obs::counter("serve.batch_flush", 1);
        eta2_obs::emit_with(|| eta2_obs::Event::ServeBatchFlush {
            shard: k as u64,
            reports: kept as u64,
            tasks: batch.len() as u64,
            iterations: solved.iterations as u64,
            converged: solved.converged,
        });
        if !traces.is_empty() {
            // One fan-in span per flush: `parents` names every ingest root
            // folded into this batch, so the whole fan-in costs a single
            // event regardless of how many submits fed it. The span id
            // rides `flushed_traces` (a leaf lock, safe under this shard's
            // guard) until the covering publish closes it.
            let span = eta2_obs::trace::next_id();
            eta2_obs::emit(&eta2_obs::Event::TraceFlush {
                span,
                parents: traces.iter().map(|c| c.span).collect(),
                shard: k as u64,
                reports: kept as u64,
                iterations: solved.iterations as u64,
                converged: solved.converged,
            });
            lock(&self.flushed_traces).push(span);
        }
        let outcome = FlushOutcome {
            shard: k,
            reports: kept,
            tasks: batch.len(),
            iterations: solved.iterations,
            converged: solved.converged,
            dirty_users,
            dirty_domains: dirty.len(),
            truths: solved.truths,
        };
        FlushResult { outcome, rerouted }
    }

    /// Re-inserts re-routed reports into their (new) owning shards without
    /// triggering further flushes; the next submit or tick folds them in.
    ///
    /// Never overwrites: a re-routed report was submitted *before* the
    /// domain merge that displaced it, while anything already pending at
    /// its new home shard for the same (user, task) was routed there
    /// *after* the relabel and is therefore newer. Overwriting here would
    /// resurrect a stale value over a fresh one — a divergence from the
    /// sequential last-submitted-wins semantics (reproduced by the
    /// merge-reroute seeds in the eta2-check corpus).
    fn enqueue(&self, reports: &[Observation]) {
        let tasks = self.tasks_arc();
        let n = self.cfg.n_shards;
        for o in reports {
            let Some(t) = tasks.get(&o.task) else {
                continue;
            };
            let mut shard = lock(&self.shards[shard_of(t.domain, n)]);
            if shard.pending.contains(o.user, o.task) {
                continue;
            }
            shard.pending.insert(o.user, o.task, o.value);
            shard.pending_len += 1;
            self.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publishes a new epoch snapshot assembled from the current task table
    /// and every shard's last flushed view.
    ///
    /// The write critical section only clones `Arc`s — the MLE never runs
    /// under the published-snapshot lock, so readers block for O(shards)
    /// pointer copies at worst, never for a flush.
    fn publish(&self) -> u64 {
        let mut slot = self.published.write().unwrap_or_else(|e| e.into_inner());
        let tasks = self.tasks_arc();
        let views: Vec<Arc<ShardView>> = self.views.iter().map(|v| Arc::clone(&lock(v))).collect();
        let epoch = self.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let snap = Arc::new(EpochSnapshot::assemble(epoch, &self.cfg, tasks, views));
        let (truths, n_tasks) = (snap.truth_count(), snap.tasks().len());
        if eta2_check::enabled() {
            // Under the write lock the outgoing snapshot is still in
            // `slot`, so per-shard flush counters can be compared
            // epoch-to-epoch: the view-store-under-shard-lock protocol
            // guarantees they never regress.
            for (k, (old, new)) in slot
                .shard_flushes()
                .iter()
                .zip(snap.shard_flushes())
                .enumerate()
            {
                eta2_check::invariant!(
                    "serve.flushes_monotone",
                    new >= *old,
                    "shard {k} flush counter regressed {old} -> {new} at epoch {epoch}"
                );
            }
            eta2_check::invariant!(
                "serve.epoch_monotone",
                epoch > slot.epoch(),
                "epoch regressed {} -> {epoch}",
                slot.epoch()
            );
            if let Err(e) = snap.validate() {
                eta2_check::breach("serve.snapshot_consistent", &e);
            }
        }
        *slot = snap;
        drop(slot);
        eta2_obs::counter("serve.epoch_published", 1);
        eta2_obs::gauge("serve.epoch", epoch as f64);
        eta2_obs::gauge("serve.truths", truths as f64);
        eta2_obs::gauge("serve.tasks", n_tasks as f64);
        eta2_obs::emit_with(|| eta2_obs::Event::ServeEpochPublished {
            epoch,
            truths: truths as u64,
            tasks: n_tasks as u64,
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u64,
        });
        // Close every flush span this epoch covers with one fan-in span.
        // Drained *after* the snapshot swap so a `trace_publish` record
        // always refers to an epoch readers can already see; flushes
        // racing in behind the drain are covered by the next publish. The
        // epoch association is advisory (a racing publish may claim
        // another flush's spans) — the causal chain ingest -> flush ->
        // publish is what's exact.
        let closed = std::mem::take(&mut *lock(&self.flushed_traces));
        if !closed.is_empty() {
            eta2_obs::emit(&eta2_obs::Event::TracePublish {
                span: eta2_obs::trace::next_id(),
                parents: closed,
                epoch,
            });
        }
        epoch
    }

    /// Re-publishes the engine-level gauges from live state. Called after
    /// every externally visible state change (`submit`, `tick`,
    /// [`restore`](Self::restore)) so a metrics scrape between operations
    /// never reads a gauge describing a dead engine — the bug this fixes
    /// was `serve.queue_depth` surviving a checkpoint/restore and
    /// reporting the pre-checkpoint engine's depth.
    fn publish_gauges(&self) {
        eta2_obs::gauge(
            "serve.queue_depth",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        // The epoch gauge too: `publish()` refreshes it on every new epoch,
        // but an engine that just restored or recovered may not have
        // published since, and a scrape would read the previous engine's
        // epoch.
        eta2_obs::gauge("serve.epoch", self.epoch.load(Ordering::Relaxed) as f64);
    }

    /// The latest published epoch snapshot. Lock-free against flushes: the
    /// read lock is only ever held (by anyone) for an `Arc` clone or swap.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.published.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Convenience: [`EpochSnapshot::truth`] on the latest snapshot.
    pub fn truth(&self, task: TaskId) -> Option<TruthEstimate> {
        self.snapshot().truth(task)
    }

    /// Convenience: [`EpochSnapshot::expertise`] on the latest snapshot.
    pub fn expertise(&self, user: UserId, domain: DomainId) -> f64 {
        self.snapshot().expertise(user, domain)
    }

    /// Reports pending across all shards (approximate under concurrency).
    pub fn queue_depth(&self) -> usize {
        self.queue_depth.load(Ordering::Relaxed)
    }

    /// Merges domain `absorbed` into `kept`: tasks are relabeled, expertise
    /// accumulators are folded (moving shards if the two domains hash
    /// differently), flushed truths follow their tasks, and a new epoch is
    /// published. Reports for relabeled tasks still pending in the old
    /// shard move to the kept domain's shard under the same lock hold
    /// (never overwriting a newer report already routed there); flush-time
    /// re-routing remains as a backstop for reports that race in behind
    /// the merge.
    ///
    /// # Panics
    ///
    /// Panics if `kept == absorbed`.
    pub fn merge_domains(&self, kept: DomainId, absorbed: DomainId) {
        assert_ne!(kept, absorbed, "cannot merge a domain into itself");
        let _wal = self.wal_guard(|| WalOp::Merge {
            kept: kept.0,
            absorbed: absorbed.0,
        });
        // Relabel first: every subsequent routing decision (submit or
        // flush re-route) then sends absorbed-domain reports to kept's
        // shard, so no new state for `absorbed` can appear in its old
        // shard after the accumulator move below.
        let tasks = {
            let mut table = lock(&self.tasks);
            // Skip the copy-on-write clone entirely when no task carries
            // the absorbed label — a merge of an empty or never-used
            // domain relabels nothing.
            if table.map.values().any(|t| t.domain == absorbed) {
                let map = Arc::make_mut(&mut table.map);
                for t in map.values_mut() {
                    if t.domain == absorbed {
                        t.domain = kept;
                    }
                }
            }
            Arc::clone(&table.map)
        };

        let n = self.cfg.n_shards;
        let (ka, kb) = (shard_of(kept, n), shard_of(absorbed, n));
        if ka == kb {
            // View stores happen under the shard guard(s), like a flush's:
            // a merge does not bump the flush counter, so only the lock
            // orders its store against concurrent flush stores.
            let mut shard = lock(&self.shards[ka]);
            shard.expertise.merge_domains(kept, absorbed);
            // Truths don't move in a same-shard merge, so the view
            // republishes them as `Arc` bumps; only the two touched
            // columns are rebuilt (the absorbed one disappears with its
            // accumulators).
            shard.refresh_column(kept);
            shard.refresh_column(absorbed);
            *lock(&self.views[ka]) = shard.view();
        } else {
            // Lock both shards in index order (the only place two shard
            // locks are ever held at once).
            let (lo, hi) = (ka.min(kb), ka.max(kb));
            let mut guard_lo = lock(&self.shards[lo]);
            let mut guard_hi = lock(&self.shards[hi]);
            let (keep_shard, from_shard) = if lo == ka {
                (&mut *guard_lo, &mut *guard_hi)
            } else {
                (&mut *guard_hi, &mut *guard_lo)
            };
            if let Some(column) = from_shard.expertise.take_domain(absorbed) {
                keep_shard.expertise.merge_in(kept, column);
                eta2_obs::emit_with(|| eta2_obs::Event::DomainMerged {
                    kept: u64::from(kept.0),
                    absorbed: u64::from(absorbed.0),
                });
            }
            // Truths follow their (relabeled) tasks to the kept shard. The
            // layered map partitions (and compacts) in one pass; the moved
            // entries enter the kept shard through its delta layer.
            let moved = from_shard
                .truths
                .take_matching(|id| tasks.get(id).is_some_and(|t| shard_of(t.domain, n) != kb));
            keep_shard.truths.insert_all(moved);
            // Pending reports follow their relabeled tasks too, eagerly
            // and under the same two guards. Left behind, they would be
            // folded only after a flush-time re-route — and a newer
            // report for the same (user, task) submitted to the kept
            // shard in the meantime would either be clobbered by the
            // stale straggler or double-folded alongside it, diverging
            // from the sequential last-submitted-wins semantics. The
            // destination-wins skip below covers the race where a
            // concurrent submit (which saw the relabeled table) landed a
            // newer report before these locks were taken.
            let old_pending = std::mem::take(&mut from_shard.pending);
            from_shard.pending_len = 0;
            // Ingest traces follow their reports: any trace whose reports
            // move to the kept shard must be closed by that shard's next
            // flush, and a trace kept alive on both shards would emit two
            // flush children — harmless for the parent-resolution
            // invariant, but moving them wholesale keeps the common case
            // (all of a trace's reports relabeled together) linear.
            keep_shard
                .pending_traces
                .append(&mut from_shard.pending_traces);
            let mut dropped = 0usize;
            for o in old_pending.iter() {
                let new_home = tasks.get(&o.task).map(|t| shard_of(t.domain, n));
                if new_home == Some(ka) {
                    if keep_shard.pending.contains(o.user, o.task) {
                        dropped += 1;
                    } else {
                        keep_shard.pending.insert(o.user, o.task, o.value);
                        keep_shard.pending_len += 1;
                    }
                } else {
                    // Still owned here (or unknown / owned by a third
                    // shard after racing merges — flush re-routes those).
                    from_shard.pending.insert(o.user, o.task, o.value);
                    from_shard.pending_len += 1;
                }
            }
            if dropped > 0 {
                self.queue_depth.fetch_sub(dropped, Ordering::Relaxed);
            }
            // The folded column is the only one either shard rebuilt; the
            // absorbed entry vanishes with its accumulators.
            keep_shard.refresh_column(kept);
            from_shard.refresh_column(absorbed);
            let view_keep = keep_shard.view();
            let view_from = from_shard.view();
            // Stored before the shard guards drop, for the same ordering
            // reason as the single-shard branch above.
            *lock(&self.views[ka]) = view_keep;
            *lock(&self.views[kb]) = view_from;
        }
        self.publish();
    }

    /// Checkpoints the engine: flushes every pending report (via
    /// [`tick`](Self::tick)), then captures the merged expertise state, the
    /// task table, all flushed truths, and any reports still pending —
    /// tick's sweep cap or a racing submit can leave residue, and a
    /// checkpoint that silently dropped it would make the restored engine
    /// diverge from the never-checkpointed run.
    pub fn checkpoint(&self) -> EngineCheckpoint {
        self.tick();
        self.capture()
    }

    /// Captures the current state without ticking first. Callers must
    /// ensure no mutation is concurrently in flight when bit-exactness
    /// matters ([`checkpoint_durable`](Self::checkpoint_durable) holds the
    /// wal lock across the tick and this capture for exactly that reason).
    fn capture(&self) -> EngineCheckpoint {
        let (map, next) = {
            let table = lock(&self.tasks);
            (Arc::clone(&table.map), table.next)
        };
        let mut expertise = DynamicExpertise::new(self.cfg.n_users, self.cfg.alpha, self.cfg.mle);
        let mut truths = BTreeMap::new();
        let mut pending = Vec::new();
        for m in &self.shards {
            let shard = lock(m);
            expertise.absorb_disjoint(shard.expertise.clone());
            truths.extend(shard.truths.iter().map(|(&id, &est)| (id, est)));
            pending.extend(shard.pending.iter());
        }
        EngineCheckpoint {
            version: ENGINE_CHECKPOINT_VERSION,
            expertise,
            tasks: (*map).clone(),
            truths,
            next_task: next,
            pending,
        }
    }

    /// Rebuilds an engine from a checkpoint, re-sharding the expertise
    /// columns and truths under `cfg` (which may use a different shard
    /// count than the engine that produced the checkpoint).
    ///
    /// # Panics
    ///
    /// Panics when `cfg` disagrees with the checkpoint on `n_users`,
    /// `alpha` or the MLE configuration — the accumulators would be
    /// reinterpreted under different semantics — or when the checkpoint's
    /// `next_task` does not exceed every task id in its table, which would
    /// make the restored engine re-assign ids of live tasks.
    pub fn restore(cfg: ServeConfig, checkpoint: EngineCheckpoint) -> Self {
        // Deserialization already rejects unknown versions; this guards
        // checkpoints constructed in memory.
        assert!(
            (1..=ENGINE_CHECKPOINT_VERSION).contains(&checkpoint.version),
            "unsupported engine checkpoint version {}; this build reads versions 1..={ENGINE_CHECKPOINT_VERSION}",
            checkpoint.version
        );
        assert_eq!(
            cfg.n_users,
            checkpoint.expertise.n_users(),
            "checkpoint has {} users, config says {}",
            checkpoint.expertise.n_users(),
            cfg.n_users
        );
        assert_eq!(
            cfg.alpha,
            checkpoint.expertise.alpha(),
            "checkpoint alpha differs from config"
        );
        assert_eq!(
            cfg.mle,
            checkpoint.expertise.mle_config(),
            "checkpoint MLE config differs from config"
        );
        if let Some((&max_id, _)) = checkpoint.tasks.last_key_value() {
            assert!(
                checkpoint.next_task > max_id.0,
                "malformed checkpoint: next_task {} does not exceed max task id {}",
                checkpoint.next_task,
                max_id.0
            );
        }
        let engine = ServeEngine::new(cfg);
        let mut source = checkpoint.expertise;
        let n = engine.cfg.n_shards;
        let domains: Vec<DomainId> = source.domains().collect();
        for domain in domains {
            if let Some(column) = source.take_domain(domain) {
                let mut shard = lock(&engine.shards[shard_of(domain, n)]);
                shard.expertise.insert_domain(domain, column);
            }
        }
        {
            let mut table = lock(&engine.tasks);
            table.map = Arc::new(checkpoint.tasks);
            table.next = checkpoint.next_task;
        }
        let tasks = engine.tasks_arc();
        let mut per_shard: Vec<BTreeMap<TaskId, TruthEstimate>> =
            (0..n).map(|_| BTreeMap::new()).collect();
        for (id, est) in checkpoint.truths {
            if let Some(t) = tasks.get(&id) {
                per_shard[shard_of(t.domain, n)].insert(id, est);
            }
        }
        for (k, map) in per_shard.into_iter().enumerate() {
            // Bulk load as an already-compacted base layer.
            lock(&engine.shards[k]).truths = TruthLayers::from_map(map);
        }
        // Residual pending reports re-enter through the normal routing
        // path (sharded by the restored task table), so flush-time
        // behaviour after restore matches the never-checkpointed run.
        engine.enqueue(&checkpoint.pending);
        for (k, m) in engine.shards.iter().enumerate() {
            let mut shard = lock(m);
            // The bulk surgery above bypassed the per-flush bookkeeping:
            // rebuild every column cache before the first view publishes.
            shard.refresh_all_columns();
            *lock(&engine.views[k]) = shard.view();
        }
        engine.publish();
        // Re-publish engine gauges from the *restored* state. Without this
        // a scrape after restore read the previous engine's last
        // `serve.queue_depth` — stale by exactly the residual pending
        // reports enqueued above.
        engine.publish_gauges();
        engine
    }

    // ---- durability -----------------------------------------------------

    /// Whether this engine logs mutations to a WAL before acking them.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The WAL record index the next logged mutation will receive, or
    /// `None` for a non-durable engine.
    pub fn wal_position(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| lock(w).position())
    }

    /// If durable, appends `op` to the log and returns the held WAL guard
    /// so the caller applies the mutation while the log lock pins the
    /// ordering (log order == apply order). Returns `None` when the engine
    /// has no WAL, which keeps every call site a one-liner.
    fn wal_guard(&self, op: impl FnOnce() -> WalOp) -> Option<MutexGuard<'_, Wal>> {
        let wal = self.wal.as_ref()?;
        let mut guard = lock(wal);
        Self::wal_append(&mut guard, &op());
        Some(guard)
    }

    fn wal_append(wal: &mut Wal, op: &WalOp) {
        let bytes = serde_json::to_vec(op).expect("wal ops always serialize");
        if let Err(e) = wal.append(&bytes) {
            // Crash-stop: an engine that cannot log must not ack. Recovery
            // from the on-disk state is the designed restart path.
            panic!("wal append failed; refusing to ack an unlogged write: {e}");
        }
    }

    fn wal_sync_batched(wal: &mut Wal) {
        if let Err(e) = wal.sync_batched() {
            panic!("wal fsync failed; cannot guarantee acked writes: {e}");
        }
    }

    /// Ticks, captures a checkpoint anchored at the current WAL position,
    /// writes it atomically into `checkpoint_dir`, and truncates log
    /// segments the checkpoint fully covers. Returns the checkpoint path.
    ///
    /// The WAL lock is held across the tick, the capture, and the position
    /// read, so the checkpoint covers exactly the logged prefix — no
    /// mutation can slip between "state captured" and "position recorded".
    ///
    /// # Panics
    ///
    /// Panics if called on a non-durable engine (use
    /// [`checkpoint`](Self::checkpoint) there).
    pub fn checkpoint_durable(&self, checkpoint_dir: &Path) -> Result<PathBuf, RecoverError> {
        let wal = self
            .wal
            .as_ref()
            .expect("checkpoint_durable requires a durable engine");
        let mut guard = lock(wal);
        // The tick is logged like any other mutation: replay from an
        // *older* checkpoint must flush at this same point to stay
        // bit-identical.
        Self::wal_append(&mut guard, &WalOp::Tick);
        self.tick_inner();
        let checkpoint = self.capture();
        let position = guard.position();
        // Make everything the checkpoint claims to cover durable before
        // the checkpoint itself commits.
        guard.sync().map_err(RecoverError::Wal)?;
        let path = durable::write_checkpoint(checkpoint_dir, position, &checkpoint)?;
        guard.truncate_up_to(position).map_err(RecoverError::Wal)?;
        drop(guard);
        eta2_obs::counter("wal.checkpoint", 1);
        Ok(path)
    }

    /// Rebuilds a durable engine from `checkpoint_dir` and the WAL in
    /// `wal_cfg.dir`, replaying the log tail over the newest checkpoint.
    /// Both directories may be empty or absent — that is a fresh durable
    /// engine, so `recover` is also the constructor for first boot.
    ///
    /// Replay applies records whose index is at or past the checkpoint's
    /// anchored position through the ordinary public mutation methods; the
    /// WAL is only attached afterwards, so replay never re-logs.
    pub fn recover(
        cfg: ServeConfig,
        checkpoint_dir: &Path,
        wal_cfg: WalConfig,
    ) -> Result<(Self, RecoverReport), RecoverError> {
        let _span = eta2_obs::Span::start("serve.recover_seconds");
        let loaded = durable::load_latest_checkpoint(checkpoint_dir)?;
        let (checkpoint_path, position, engine) = match loaded {
            Some((path, wrapped)) => {
                let engine = ServeEngine::restore(cfg, wrapped.engine);
                (Some(path), wrapped.wal_position, engine)
            }
            None => (None, 0, ServeEngine::new(cfg)),
        };
        // Read-only scan first: replay must not mutate the log (the open
        // below chops any torn tail once, after we know the survivors).
        let replayed = eta2_wal::replay(&wal_cfg.dir)?;
        let mut records_replayed = 0u64;
        for record in &replayed.records {
            if record.index < position {
                continue; // already folded into the checkpoint
            }
            let op: WalOp =
                serde_json::from_slice(&record.payload).map_err(|e| RecoverError::Json {
                    path: wal_cfg.dir.clone(),
                    source: e,
                })?;
            engine.apply_logged(op, record.index, &wal_cfg.dir)?;
            records_replayed += 1;
        }
        let torn_bytes = replayed.torn.as_ref().map_or(0, |t| t.dropped_bytes);
        let torn_reason = replayed.torn.as_ref().map(|t| t.reason.clone());
        let (mut wal, _open) = Wal::open(wal_cfg)?;
        // A checkpoint can anchor past the surviving log tail (records it
        // covered were truncated, or the tail was torn); dead indices must
        // never be reused.
        wal.advance_to(position).map_err(RecoverError::Wal)?;
        let mut engine = engine;
        engine.wal = Some(Mutex::new(wal));
        eta2_obs::counter("wal.recover", 1);
        eta2_obs::counter("wal.recover_records", records_replayed);
        if eta2_obs::tracing_active() {
            // A recovery is causally a root: nothing in this process
            // preceded it.
            let ctx = TraceContext::root();
            eta2_obs::emit(&eta2_obs::Event::TraceRecover {
                trace: ctx.trace,
                span: ctx.span,
                parent: ctx.parent,
                checkpoint_position: position,
                records: records_replayed,
                torn_bytes,
                epoch: engine.epoch.load(Ordering::Relaxed),
            });
        }
        // Same regression class as restore: gauges must reflect the
        // recovered engine, not whatever published last in this process.
        engine.publish_gauges();
        let report = RecoverReport {
            checkpoint_path,
            checkpoint_position: position,
            records_replayed,
            torn_bytes,
            torn_reason,
        };
        Ok((engine, report))
    }

    /// Applies one logged op during recovery. The engine has no WAL
    /// attached yet, so the public methods used here do not re-log.
    fn apply_logged(&self, op: WalOp, index: u64, dir: &Path) -> Result<(), RecoverError> {
        let corrupt = |detail: String| RecoverError::Corrupt {
            path: dir.to_path_buf(),
            detail,
        };
        match op {
            WalOp::Register(specs) => match self.register_tasks(&specs) {
                // Id exhaustion is deterministic: the original call failed
                // the same way after logging, so the record is a no-op.
                Ok(_) | Err(ServeError::TaskIdsExhausted { .. }) => Ok(()),
                Err(e) => Err(corrupt(format!(
                    "logged register_tasks at index {index} failed on replay: {e}"
                ))),
            },
            WalOp::Submit(reports) => {
                let mut set = ObservationSet::new();
                for o in reports {
                    set.insert(o.user, o.task, o.value);
                }
                self.submit(&set);
                Ok(())
            }
            WalOp::Merge { kept, absorbed } => {
                if kept == absorbed {
                    return Err(corrupt(format!(
                        "logged merge at index {index} merges domain {kept} into itself"
                    )));
                }
                self.merge_domains(DomainId(kept), DomainId(absorbed));
                Ok(())
            }
            WalOp::Tick => {
                self.tick();
                Ok(())
            }
        }
    }
}

/// Format version written into every [`EngineCheckpoint`]. Bump when the
/// checkpoint layout changes incompatibly; deserialization rejects
/// versions outside `1..=ENGINE_CHECKPOINT_VERSION` with a sourced error
/// instead of silently misreading the state.
pub const ENGINE_CHECKPOINT_VERSION: u32 = 1;

fn default_checkpoint_version() -> u32 {
    // Checkpoints written before the version field existed are the
    // version-1 layout.
    1
}

fn checked_checkpoint_version<'de, D>(de: D) -> Result<u32, D::Error>
where
    D: serde::Deserializer<'de>,
{
    let v = u32::deserialize(de)?;
    if !(1..=ENGINE_CHECKPOINT_VERSION).contains(&v) {
        return Err(serde::de::Error::custom(format!(
            "unsupported engine checkpoint version {v}; this build reads versions 1..={ENGINE_CHECKPOINT_VERSION}"
        )));
    }
    Ok(v)
}

/// A serializable checkpoint of a [`ServeEngine`]'s durable state (pending
/// reports are flushed before capture where possible; epoch counters are
/// not durable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Checkpoint format version. Defaults to 1 when absent so
    /// checkpoints written before this field existed still deserialize;
    /// unknown (newer) versions are rejected at decode time.
    #[serde(
        default = "default_checkpoint_version",
        deserialize_with = "checked_checkpoint_version"
    )]
    pub version: u32,
    /// Merged expertise accumulators across all shards.
    pub expertise: DynamicExpertise,
    /// The task table.
    pub tasks: BTreeMap<TaskId, Task>,
    /// All flushed truth estimates.
    pub truths: BTreeMap<TaskId, TruthEstimate>,
    /// The next task id to assign.
    pub next_task: u32,
    /// Reports still pending at capture (tick residue under concurrent
    /// load or the sweep cap). Defaults to empty so checkpoints written
    /// before this field existed still deserialize.
    #[serde(default)]
    pub pending: Vec<Observation>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaskSpec;

    fn cfg(n_users: usize, n_shards: usize, batch_capacity: usize) -> ServeConfig {
        ServeConfig {
            n_users,
            n_shards,
            batch_capacity,
            threads: 1,
            ..ServeConfig::default()
        }
    }

    fn obs(triples: &[(u32, TaskId, f64)]) -> ObservationSet {
        let mut set = ObservationSet::new();
        for &(u, t, v) in triples {
            set.insert(UserId(u), t, v);
        }
        set
    }

    #[test]
    fn register_submit_tick_read_roundtrip() {
        let engine = ServeEngine::new(cfg(3, 4, 0));
        let ids = engine
            .register_tasks(&[
                TaskSpec::new(DomainId(0), 1.0, 1.0),
                TaskSpec::new(DomainId(1), 2.0, 1.0),
            ])
            .unwrap();
        assert_eq!(ids, vec![TaskId(0), TaskId(1)]);
        let receipt = engine.submit(&obs(&[
            (0, ids[0], 10.0),
            (1, ids[0], 11.0),
            (2, ids[0], 9.0),
            (0, ids[1], 5.0),
            (1, ids[1], 5.5),
        ]));
        assert_eq!(receipt.accepted, 5);
        assert!(receipt.flushes.is_empty(), "batch_capacity 0 never flushes");
        assert_eq!(engine.queue_depth(), 5);
        assert!(engine.truth(ids[0]).is_none(), "nothing flushed yet");

        let flushed = engine.tick();
        assert!(!flushed.is_empty());
        assert_eq!(engine.queue_depth(), 0);
        let snap = engine.snapshot();
        snap.validate().unwrap();
        let mu = snap.truth(ids[0]).unwrap().mu;
        assert!((9.0..=11.0).contains(&mu), "mu {mu}");
        assert!(snap.truth(ids[1]).is_some());
    }

    #[test]
    fn count_trigger_flushes_inside_submit() {
        let engine = ServeEngine::new(cfg(3, 2, 3));
        let ids = engine
            .register_tasks(&[TaskSpec::new(DomainId(7), 1.0, 1.0)])
            .unwrap();
        let receipt = engine.submit(&obs(&[
            (0, ids[0], 1.0),
            (1, ids[0], 1.2),
            (2, ids[0], 0.9),
        ]));
        assert_eq!(receipt.flushes.len(), 1, "capacity 3 reached");
        assert_eq!(receipt.flushes[0].reports, 3);
        assert!(engine.truth(ids[0]).is_some());
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn quarantine_and_unknown_are_counted_not_fatal() {
        let engine = ServeEngine::new(cfg(2, 2, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
            .unwrap();
        let receipt = engine.submit(&obs(&[
            (0, ids[0], f64::NAN),
            (1, ids[0], 4.0),
            (0, TaskId(999), 1.0),
        ]));
        assert_eq!(receipt.quarantined, 1);
        assert_eq!(receipt.unknown_task, 1);
        assert_eq!(receipt.accepted, 1);
    }

    #[test]
    fn register_rejects_bad_specs_atomically() {
        let engine = ServeEngine::new(cfg(1, 2, 0));
        let err = engine
            .register_tasks(&[
                TaskSpec::new(DomainId(0), 1.0, 1.0),
                TaskSpec::new(DomainId(0), f64::INFINITY, 1.0),
            ])
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidTask { index: 1, .. }));
        assert!(engine.snapshot().tasks().is_empty(), "nothing registered");
    }

    #[test]
    fn epochs_strictly_increase() {
        let engine = ServeEngine::new(cfg(2, 2, 0));
        let e0 = engine.snapshot().epoch();
        engine
            .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
            .unwrap();
        let e1 = engine.snapshot().epoch();
        engine.submit(&obs(&[(0, TaskId(0), 1.0), (1, TaskId(0), 2.0)]));
        engine.tick();
        let e2 = engine.snapshot().epoch();
        assert!(e0 < e1 && e1 < e2, "{e0} {e1} {e2}");
        assert!(engine.tick().is_empty(), "nothing pending");
        assert_eq!(
            engine.snapshot().epoch(),
            e2,
            "empty tick publishes nothing"
        );
    }

    #[test]
    fn cross_shard_merge_moves_column_and_truths() {
        // Find two domains that land in different shards of a 4-shard engine.
        let n = 4;
        let d0 = DomainId(0);
        let d1 = (1..100)
            .map(DomainId)
            .find(|d| shard_of(*d, n) != shard_of(d0, n))
            .unwrap();
        let engine = ServeEngine::new(cfg(3, n, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(d0, 1.0, 1.0), TaskSpec::new(d1, 1.0, 1.0)])
            .unwrap();
        engine.submit(&obs(&[
            (0, ids[0], 10.0),
            (1, ids[0], 10.5),
            (0, ids[1], 3.0),
            (1, ids[1], 3.3),
        ]));
        engine.tick();
        assert!(engine.truth(ids[1]).is_some());

        engine.merge_domains(d0, d1);
        let snap = engine.snapshot();
        snap.validate().unwrap();
        // The relabeled task's truth is still readable through the merged
        // domain's shard.
        assert!(snap.truth(ids[1]).is_some(), "truth follows its task");
        assert_eq!(snap.tasks()[&ids[1]].domain, d0, "task relabeled");
        // Absorbed column is gone; kept column carries the folded data.
        let m = snap.expertise_matrix();
        assert!(m.domains().all(|d| d != d1), "absorbed column removed");
    }

    #[test]
    fn pending_reports_survive_merge_via_reroute() {
        let n = 4;
        let d0 = DomainId(0);
        let d1 = (1..100)
            .map(DomainId)
            .find(|d| shard_of(*d, n) != shard_of(d0, n))
            .unwrap();
        let engine = ServeEngine::new(cfg(2, n, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(d1, 1.0, 1.0)])
            .unwrap();
        // Report sits pending in d1's shard when the merge relabels it.
        engine.submit(&obs(&[(0, ids[0], 7.0), (1, ids[0], 7.5)]));
        engine.merge_domains(d0, d1);
        // First tick flushes d1's old shard, which re-routes the reports;
        // the second folds them in at their new home.
        engine.tick();
        engine.tick();
        let snap = engine.snapshot();
        snap.validate().unwrap();
        let est = snap.truth(ids[0]).expect("report survived the merge");
        assert!((7.0..=7.5).contains(&est.mu), "mu {}", est.mu);
    }

    #[test]
    fn merge_pending_stale_report_cannot_clobber_newer() {
        // Regression (found by the eta2-check differential harness, PR 5):
        // a report queued before a cross-shard merge used to stay in the
        // absorbed domain's old shard until flush-time re-routing, where
        // `enqueue`'s overwriting insert let the stale value clobber (or
        // double-fold against) a newer report for the same (user, task)
        // submitted after the merge. Sequential semantics: the later
        // submit wins and is folded exactly once.
        let n = 4;
        let d0 = DomainId(0);
        let d1 = (1..100)
            .map(DomainId)
            .find(|d| shard_of(*d, n) != shard_of(d0, n))
            .unwrap();
        let engine = ServeEngine::new(cfg(2, n, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(d1, 1.0, 1.0)])
            .unwrap();
        // Older report queues in d1's shard.
        engine.submit(&obs(&[(0, ids[0], 5.0)]));
        engine.merge_domains(d0, d1);
        // Newer report for the same (user, task) routes to d0's shard.
        engine.submit(&obs(&[(0, ids[0], 9.0)]));
        assert_eq!(
            engine.queue_depth(),
            1,
            "merge moved the old report; newer replaced it"
        );
        engine.tick();
        let est = engine.truth(ids[0]).expect("flushed");
        assert!(
            (est.mu - 9.0).abs() < 1e-9,
            "stale pre-merge report resurfaced: mu {} (want 9.0)",
            est.mu
        );
        // Mirror the sequential oracle exactly: one shard, same ops.
        let seq = ServeEngine::new(cfg(2, 1, 0));
        let sids = seq.register_tasks(&[TaskSpec::new(d1, 1.0, 1.0)]).unwrap();
        seq.submit(&obs(&[(0, sids[0], 5.0)]));
        seq.merge_domains(d0, d1);
        seq.submit(&obs(&[(0, sids[0], 9.0)]));
        seq.tick();
        assert_eq!(engine.truth(ids[0]), seq.truth(sids[0]));
        assert_eq!(
            engine.snapshot().expertise_matrix(),
            seq.snapshot().expertise_matrix(),
            "expertise accumulators double-counted the stale report"
        );
    }

    #[test]
    fn checkpoint_roundtrips_pending_reports() {
        // A checkpoint taken while reports are still queued (tick residue
        // under the sweep cap or a racing submit) must carry the queue:
        // restore re-enqueues through the normal routing path so the next
        // flush matches the never-checkpointed run — including after the
        // pending reports' domain was absorbed by a merge.
        let n = 4;
        let d0 = DomainId(0);
        let d1 = (1..100)
            .map(DomainId)
            .find(|d| shard_of(*d, n) != shard_of(d0, n))
            .unwrap();
        let engine = ServeEngine::new(cfg(2, n, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(d1, 1.0, 1.0)])
            .unwrap();
        engine.submit(&obs(&[(0, ids[0], 7.0), (1, ids[0], 8.0)]));
        // Capture durable state, then simulate queued-at-capture reports
        // by building the checkpoint an interrupted engine would write.
        let mut checkpoint = engine.checkpoint();
        assert!(checkpoint.pending.is_empty(), "quiescent tick drains all");
        checkpoint.truths.clear();
        checkpoint.expertise = DynamicExpertise::new(2, engine.cfg.alpha, engine.cfg.mle);
        checkpoint.pending = vec![
            Observation {
                user: UserId(0),
                task: ids[0],
                value: 7.0,
            },
            Observation {
                user: UserId(1),
                task: ids[0],
                value: 8.0,
            },
        ];
        let json = serde_json::to_string(&checkpoint).unwrap();
        let parsed: EngineCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.pending, checkpoint.pending, "pending serialized");

        // Restore into a different shard count; the queue must survive
        // and fold identically to the uninterrupted engine.
        let restored = ServeEngine::restore(cfg(2, 2, 0), parsed);
        assert_eq!(restored.queue_depth(), 2, "pending re-enqueued");
        restored.merge_domains(d0, d1);
        restored.tick();
        let seq = ServeEngine::new(cfg(2, 1, 0));
        let sids = seq.register_tasks(&[TaskSpec::new(d1, 1.0, 1.0)]).unwrap();
        seq.submit(&obs(&[(0, sids[0], 7.0), (1, sids[0], 8.0)]));
        seq.merge_domains(d0, d1);
        seq.tick();
        assert_eq!(restored.truth(ids[0]), seq.truth(sids[0]));
    }

    #[test]
    fn old_format_checkpoint_without_pending_still_restores() {
        let engine = ServeEngine::new(cfg(2, 2, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(DomainId(3), 1.0, 1.0)])
            .unwrap();
        engine.submit(&obs(&[(0, ids[0], 4.0), (1, ids[0], 4.4)]));
        let checkpoint = engine.checkpoint();
        let mut json: serde_json::Value = serde_json::to_value(&checkpoint).unwrap();
        // PR-4 checkpoints have no `pending` field.
        json.as_object_mut().unwrap().remove("pending");
        let parsed: EngineCheckpoint = serde_json::from_value(json).unwrap();
        assert!(parsed.pending.is_empty());
        let restored = ServeEngine::restore(cfg(2, 2, 0), parsed);
        assert_eq!(restored.truth(ids[0]), engine.truth(ids[0]));
    }

    #[test]
    fn tick_is_bounded_under_concurrent_submitters() {
        // Livelock regression: tick()'s re-sweep loop used to run until no
        // reports were in flight, which concurrent submitters could extend
        // forever. Now it is capped at MAX_TICK_SWEEPS passes; residue
        // stays queued for the next tick.
        let engine = ServeEngine::new(cfg(3, 4, 0));
        let d = DomainId(11);
        let ids = engine
            .register_tasks(&[TaskSpec::new(d, 1.0, 1.0), TaskSpec::new(d, 2.0, 1.0)])
            .unwrap();
        std::thread::scope(|s| {
            let eng = &engine;
            for worker in 0..2u32 {
                let ids = ids.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let v = (i % 10) as f64 + worker as f64;
                        eng.submit(&obs(&[
                            (worker, ids[0], v),
                            ((worker + 1) % 3, ids[1], v + 0.5),
                        ]));
                    }
                });
            }
            for _ in 0..20 {
                let outcomes = eng.tick();
                assert!(
                    outcomes.len() <= ServeEngine::MAX_TICK_SWEEPS * eng.cfg.n_shards,
                    "tick exceeded its sweep bound: {} flushes",
                    outcomes.len()
                );
            }
        });
        // Drain whatever the racing submits left behind and check reads.
        engine.tick();
        assert_eq!(engine.queue_depth(), 0);
        let snap = engine.snapshot();
        snap.validate().unwrap();
        assert!(snap.truth(ids[0]).is_some());
    }

    #[test]
    fn register_errors_on_task_id_exhaustion() {
        let c = cfg(1, 2, 0);
        let engine = ServeEngine::restore(
            c,
            EngineCheckpoint {
                version: ENGINE_CHECKPOINT_VERSION,
                expertise: DynamicExpertise::new(1, c.alpha, c.mle),
                tasks: BTreeMap::new(),
                truths: BTreeMap::new(),
                next_task: u32::MAX - 1,
                pending: Vec::new(),
            },
        );
        let err = engine
            .register_tasks(&[
                TaskSpec::new(DomainId(0), 1.0, 1.0),
                TaskSpec::new(DomainId(0), 1.0, 1.0),
            ])
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::TaskIdsExhausted { next, requested: 2 } if next == u32::MAX - 1
            ),
            "{err}"
        );
        // The rejection is atomic: nothing registered, and a batch that
        // still fits succeeds with the id allocator untouched.
        assert!(engine.snapshot().tasks().is_empty());
        let ids = engine
            .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
            .unwrap();
        assert_eq!(ids, vec![TaskId(u32::MAX - 1)]);
    }

    #[test]
    #[should_panic(expected = "next_task")]
    fn restore_rejects_checkpoint_with_reusable_ids() {
        let c = cfg(1, 2, 0);
        let mut tasks = BTreeMap::new();
        tasks.insert(TaskId(5), Task::new(TaskId(5), DomainId(0), 1.0, 1.0));
        ServeEngine::restore(
            c,
            EngineCheckpoint {
                version: ENGINE_CHECKPOINT_VERSION,
                expertise: DynamicExpertise::new(1, c.alpha, c.mle),
                tasks,
                truths: BTreeMap::new(),
                next_task: 3,
                pending: Vec::new(),
            },
        );
    }

    #[test]
    fn checkpoint_restore_roundtrip_even_resharded() {
        let engine = ServeEngine::new(cfg(3, 4, 0));
        let ids = engine
            .register_tasks(&[
                TaskSpec::new(DomainId(0), 1.0, 1.0),
                TaskSpec::new(DomainId(5), 1.0, 2.0),
            ])
            .unwrap();
        engine.submit(&obs(&[
            (0, ids[0], 10.0),
            (1, ids[0], 9.0),
            (2, ids[1], 4.0),
            (0, ids[1], 4.4),
        ]));
        let checkpoint = engine.checkpoint(); // flushes pending first
        let json = serde_json::to_string(&checkpoint).unwrap();
        let parsed: EngineCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, checkpoint);

        // Restore under a different shard count: reads must be identical.
        let restored = ServeEngine::restore(cfg(3, 2, 0), parsed);
        let (a, b) = (engine.snapshot(), restored.snapshot());
        b.validate().unwrap();
        for &id in &ids {
            assert_eq!(a.truth(id), b.truth(id), "{id:?}");
        }
        assert_eq!(a.expertise_matrix(), b.expertise_matrix());
        assert_eq!(a.tasks(), b.tasks());
        // Id allocation continues where the original left off.
        let new = restored
            .register_tasks(&[TaskSpec::new(DomainId(0), 1.0, 1.0)])
            .unwrap();
        assert_eq!(new[0], TaskId(2));
    }

    #[test]
    fn incremental_matches_full_reconvergence_bitwise() {
        // The dirty-set path (default) only skips domains with no pending
        // reports, and those domains' state is never read or written by a
        // flush — so it must be bit-identical to the historical
        // full-recompute path (`incremental: false`) at every point.
        let mut full_cfg = cfg(4, 4, 3);
        full_cfg.incremental = false;
        let inc = ServeEngine::new(cfg(4, 4, 3));
        let full = ServeEngine::new(full_cfg);
        let mut ids = Vec::new();
        for round in 0..4u32 {
            let specs: Vec<TaskSpec> = (0..3)
                .map(|j| TaskSpec::new(DomainId((round + j) % 5), 1.0, 1.0))
                .collect();
            let a = inc.register_tasks(&specs).unwrap();
            let b = full.register_tasks(&specs).unwrap();
            assert_eq!(a, b);
            ids.extend(a.iter().copied());
            let mut triples = Vec::new();
            for (k, &id) in a.iter().enumerate() {
                for u in 0..4u32 {
                    triples.push((u, id, f64::from(round * 7 + k as u32 * 3 + u) * 0.5 - 3.0));
                }
            }
            let ra = inc.submit(&obs(&triples));
            let rb = full.submit(&obs(&triples));
            assert_eq!(ra.accepted, rb.accepted);
            assert_eq!(ra.flushes.len(), rb.flushes.len(), "round {round}");
            inc.tick();
            full.tick();
            if round == 2 {
                inc.merge_domains(DomainId(0), DomainId(1));
                full.merge_domains(DomainId(0), DomainId(1));
            }
        }
        let (a, b) = (inc.snapshot(), full.snapshot());
        a.validate().unwrap();
        b.validate().unwrap();
        for &id in &ids {
            let (ta, tb) = (a.truth(id), b.truth(id));
            assert_eq!(
                ta.map(|e| e.mu.to_bits()),
                tb.map(|e| e.mu.to_bits()),
                "{id:?}"
            );
        }
        assert_eq!(a.expertise_matrix(), b.expertise_matrix());
    }

    #[test]
    fn untouched_shard_views_are_pointer_shared_across_epochs() {
        // A flush republishes only its own shard's view; every other
        // shard's `Arc<ShardView>` must carry over into the next epoch by
        // pointer, not by rebuild.
        let n = 4;
        let d0 = DomainId(0);
        let d1 = (1..100)
            .map(DomainId)
            .find(|d| shard_of(*d, n) != shard_of(d0, n))
            .unwrap();
        let (k0, k1) = (shard_of(d0, n), shard_of(d1, n));
        let engine = ServeEngine::new(cfg(2, n, 0));
        let ids = engine
            .register_tasks(&[TaskSpec::new(d0, 1.0, 1.0), TaskSpec::new(d1, 1.0, 1.0)])
            .unwrap();
        engine.submit(&obs(&[(0, ids[0], 1.0), (1, ids[0], 1.5)]));
        engine.tick();
        let snap1 = engine.snapshot();
        // Touch only d1's shard.
        engine.submit(&obs(&[(0, ids[1], 2.0), (1, ids[1], 2.5)]));
        engine.tick();
        let snap2 = engine.snapshot();
        assert_eq!(
            snap1.view_ptr(k0),
            snap2.view_ptr(k0),
            "untouched shard was republished by value"
        );
        assert_ne!(
            snap1.view_ptr(k1),
            snap2.view_ptr(k1),
            "flushed shard must publish a fresh view"
        );
        assert_eq!(snap1.truth(ids[0]), snap2.truth(ids[0]));
        assert!(snap2.truth(ids[1]).is_some());
    }

    #[test]
    fn small_flushes_share_the_truth_base_layer() {
        // Incremental mode: once a large flush has compacted into the base
        // layer, later small flushes ride the delta and share the base Arc
        // across epochs. Non-incremental mode compacts every flush, so the
        // base is recloned each time (the historical cost profile).
        let d = DomainId(3);
        let run = |incremental: bool| {
            let mut c = cfg(2, 2, 0);
            c.incremental = incremental;
            let k = shard_of(d, c.n_shards);
            let engine = ServeEngine::new(c);
            let specs: Vec<TaskSpec> = (0..80).map(|_| TaskSpec::new(d, 1.0, 1.0)).collect();
            let ids = engine.register_tasks(&specs).unwrap();
            let mut triples = Vec::new();
            for (j, &id) in ids.iter().enumerate() {
                triples.push((0, id, j as f64));
                triples.push((1, id, j as f64 + 0.5));
            }
            engine.submit(&obs(&triples));
            engine.tick(); // 80-entry flush: compacts into the base layer
            let snap1 = engine.snapshot();
            engine.submit(&obs(&[(0, ids[0], 40.0), (1, ids[1], 41.0)]));
            engine.tick(); // 2-entry flush: delta-only when incremental
            let snap2 = engine.snapshot();
            assert_eq!(snap2.truth_count(), 80);
            assert!((snap2.truth(ids[0]).unwrap().mu - 40.0).abs() < 1.0);
            (snap1.truth_base_ptr(k), snap2.truth_base_ptr(k))
        };
        let (inc1, inc2) = run(true);
        assert_eq!(inc1, inc2, "small incremental flush recloned the base");
        let (full1, full2) = run(false);
        assert_ne!(full1, full2, "non-incremental flush must recompact");
    }

    #[test]
    fn warm_start_tracks_cold_reconvergence_within_bound() {
        // Warm-started MLE applies the 5% convergence criterion from the
        // previous epoch's estimates, so it may stop earlier than a cold
        // solve — but never settles outside the documented envelope
        // (DESIGN.md §13.2). First flush has no prior estimates, so the two
        // paths are bit-identical there.
        let mut warm_cfg = cfg(3, 2, 0);
        warm_cfg.warm_start = true;
        let warm = ServeEngine::new(warm_cfg);
        let cold = ServeEngine::new(cfg(3, 2, 0));
        let specs: Vec<TaskSpec> = (0..4)
            .map(|j| TaskSpec::new(DomainId(j % 2), 1.0, 1.0))
            .collect();
        let ids_w = warm.register_tasks(&specs).unwrap();
        let ids_c = cold.register_tasks(&specs).unwrap();
        assert_eq!(ids_w, ids_c);
        for round in 0..6u32 {
            let mut triples = Vec::new();
            for (j, &id) in ids_w.iter().enumerate() {
                for u in 0..3u32 {
                    let v = 5.0 + j as f64 + f64::from(u) * 0.3 + f64::from(round) * 0.05;
                    triples.push((u, id, v));
                }
            }
            warm.submit(&obs(&triples));
            cold.submit(&obs(&triples));
            warm.tick();
            cold.tick();
            if round == 0 {
                for &id in &ids_w {
                    assert_eq!(
                        warm.truth(id).map(|e| e.mu.to_bits()),
                        cold.truth(id).map(|e| e.mu.to_bits()),
                        "no prior estimates: warm must equal cold"
                    );
                }
            }
        }
        for &id in &ids_w {
            let (w, c) = (warm.truth(id).unwrap(), cold.truth(id).unwrap());
            assert!(w.mu.is_finite() && w.sigma.is_finite());
            let rel = (w.mu - c.mu).abs() / c.mu.abs().max(w.mu.abs()).max(1.0);
            assert!(rel < 0.15, "warm {} vs cold {}: rel {rel}", w.mu, c.mu);
        }
    }
}
