//! Immutable epoch snapshots: the read side of the serving engine.

use crate::{shard_of, ServeConfig};
use eta2_core::allocation::{Allocation, MaxQualityAllocator, MaxQualityConfig};
use eta2_core::model::{DomainId, ExpertiseMatrix, Task, TaskId, UserId, UserProfile};
use eta2_core::truth::TruthEstimate;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Read-only view of one shard's published state. Rebuilt by that shard's
/// flush; shared into snapshots by `Arc`.
#[derive(Debug)]
pub(crate) struct ShardView {
    /// Truth estimates for every task this shard has ever flushed.
    pub truths: BTreeMap<TaskId, TruthEstimate>,
    /// Expertise for the domains pinned to this shard.
    pub expertise: ExpertiseMatrix,
    /// Number of flushes that produced this view (0 for the empty view).
    pub flushes: u64,
}

impl ShardView {
    pub fn empty(n_users: usize) -> Self {
        ShardView {
            truths: BTreeMap::new(),
            expertise: ExpertiseMatrix::new(n_users),
            flushes: 0,
        }
    }
}

/// An immutable, internally consistent view of the engine at one epoch.
///
/// Snapshots are published atomically (a single `Arc` swap) after a flush,
/// so every read made through one snapshot observes the same epoch: truths,
/// expertise and the task table all come from the same publish. Holding a
/// snapshot never blocks ingest, and taking one never waits for an
/// in-flight flush.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    epoch: u64,
    n_users: usize,
    epsilon: f64,
    n_shards: usize,
    tasks: Arc<BTreeMap<TaskId, Task>>,
    views: Vec<Arc<ShardView>>,
}

impl EpochSnapshot {
    pub(crate) fn assemble(
        epoch: u64,
        cfg: &ServeConfig,
        tasks: Arc<BTreeMap<TaskId, Task>>,
        views: Vec<Arc<ShardView>>,
    ) -> Self {
        debug_assert_eq!(views.len(), cfg.n_shards);
        EpochSnapshot {
            epoch,
            n_users: cfg.n_users,
            epsilon: cfg.epsilon,
            n_shards: cfg.n_shards,
            tasks,
            views,
        }
    }

    /// The epoch counter: strictly increasing across publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of registered users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// The task table at this epoch.
    pub fn tasks(&self) -> &BTreeMap<TaskId, Task> {
        &self.tasks
    }

    /// Total flushed truth estimates across all shards.
    pub fn truth_count(&self) -> usize {
        self.views.iter().map(|v| v.truths.len()).sum()
    }

    /// Per-shard flush counters (diagnostics; non-decreasing across
    /// successive snapshots).
    pub fn shard_flushes(&self) -> Vec<u64> {
        self.views.iter().map(|v| v.flushes).collect()
    }

    /// The truth estimate for `task` at this epoch, if it has been flushed.
    pub fn truth(&self, task: TaskId) -> Option<TruthEstimate> {
        let t = self.tasks.get(&task)?;
        self.views[shard_of(t.domain, self.n_shards)]
            .truths
            .get(&task)
            .copied()
    }

    /// The expertise `u_i^k` of `user` in `domain` at this epoch (1.0 when
    /// nothing has been accumulated, per the paper's initialization).
    pub fn expertise(&self, user: UserId, domain: DomainId) -> f64 {
        self.views[shard_of(domain, self.n_shards)]
            .expertise
            .get(user, domain)
    }

    /// The full expertise matrix at this epoch, merged across shards.
    pub fn expertise_matrix(&self) -> ExpertiseMatrix {
        let mut m = ExpertiseMatrix::new(self.n_users);
        for view in &self.views {
            for domain in view.expertise.domains() {
                for (i, &v) in view.expertise.column(domain).iter().enumerate() {
                    m.set(UserId(i as u32), domain, v);
                }
            }
        }
        m
    }

    /// Greedy max-quality allocation (Algorithm 1) of the given registered
    /// tasks to `users`, using this epoch's expertise. Unknown task ids are
    /// skipped.
    pub fn allocate_max_quality(&self, tasks: &[TaskId], users: &[UserProfile]) -> Allocation {
        let batch: Vec<Task> = tasks
            .iter()
            .filter_map(|id| self.tasks.get(id).copied())
            .collect();
        let expertise = self.expertise_matrix();
        MaxQualityAllocator::new(MaxQualityConfig {
            epsilon: self.epsilon,
            use_approximation_pass: true,
        })
        .allocate(&batch, users, &expertise)
    }

    /// Checks the snapshot's structural invariants, returning a description
    /// of the first violation. Used by the concurrency stress tests to
    /// assert readers never observe a torn epoch:
    ///
    /// * every truth belongs to a task registered in **this** snapshot's
    ///   task table (registration is published before reports are accepted);
    /// * every truth and every expertise domain lives in the shard its
    ///   domain hashes to (no column ever leaks across shards).
    pub fn validate(&self) -> Result<(), String> {
        if self.views.len() != self.n_shards {
            return Err(format!(
                "epoch {}: {} views for {} shards",
                self.epoch,
                self.views.len(),
                self.n_shards
            ));
        }
        for (k, view) in self.views.iter().enumerate() {
            for &task in view.truths.keys() {
                let t = self.tasks.get(&task).ok_or_else(|| {
                    format!(
                        "epoch {}: shard {k} has truth for unregistered {task:?}",
                        self.epoch
                    )
                })?;
                let home = shard_of(t.domain, self.n_shards);
                if home != k {
                    return Err(format!(
                        "epoch {}: truth for {task:?} (domain {:?}) in shard {k}, belongs in {home}",
                        self.epoch, t.domain
                    ));
                }
            }
            for domain in view.expertise.domains() {
                let home = shard_of(domain, self.n_shards);
                if home != k {
                    return Err(format!(
                        "epoch {}: expertise column {domain:?} in shard {k}, belongs in {home}",
                        self.epoch
                    ));
                }
            }
        }
        Ok(())
    }
}
