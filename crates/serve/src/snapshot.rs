//! Immutable epoch snapshots: the read side of the serving engine.

use crate::{shard_of, ServeConfig};
use eta2_core::allocation::{Allocation, MaxQualityAllocator, MaxQualityConfig};
use eta2_core::model::{DomainId, ExpertiseMatrix, Task, TaskId, UserId, UserProfile};
use eta2_core::truth::TruthEstimate;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Delta entries below this never trigger a compaction on their own; keeps
/// tiny shards from compacting on every flush.
const COMPACT_MIN: usize = 64;
/// Compact once the delta exceeds this fraction (1/8) of the base, so the
/// per-flush copy-on-write clone stays a bounded fraction of shard size.
const COMPACT_RATIO: usize = 8;
/// Hard cap on the delta layer regardless of base size: bounds the
/// worst-case per-flush delta clone even for very large shards.
const COMPACT_MAX_DELTA: usize = 4096;

/// Copy-on-write truth map: a large immutable `base` shared across epochs
/// plus a small `delta` overlay absorbing recent flushes (delta entries
/// shadow base entries). Readers hold `Arc` clones, so a flush that inserts
/// a batch clones only the delta layer — O(delta), not O(shard) — and the
/// owning shard folds the delta into a fresh base once it grows past the
/// compaction thresholds above. See DESIGN.md §13.3 for the lifecycle.
#[derive(Debug, Clone)]
pub(crate) struct TruthLayers {
    base: Arc<BTreeMap<TaskId, TruthEstimate>>,
    delta: Arc<BTreeMap<TaskId, TruthEstimate>>,
    /// Number of keys present in both layers, so `len` is O(1).
    overlap: usize,
}

impl TruthLayers {
    pub fn empty() -> Self {
        TruthLayers {
            base: Arc::new(BTreeMap::new()),
            delta: Arc::new(BTreeMap::new()),
            overlap: 0,
        }
    }

    /// Builds a single-layer (fully compacted) instance from `map`.
    pub fn from_map(map: BTreeMap<TaskId, TruthEstimate>) -> Self {
        TruthLayers {
            base: Arc::new(map),
            delta: Arc::new(BTreeMap::new()),
            overlap: 0,
        }
    }

    pub fn get(&self, id: &TaskId) -> Option<&TruthEstimate> {
        self.delta.get(id).or_else(|| self.base.get(id))
    }

    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len() - self.overlap
    }

    /// Iterates every live entry (shadowed base entries skipped). The order
    /// interleaves the two layers and is **not** globally ascending.
    pub fn iter(&self) -> impl Iterator<Item = (&TaskId, &TruthEstimate)> {
        self.base
            .iter()
            .filter(|(id, _)| !self.delta.contains_key(id))
            .chain(self.delta.iter())
    }

    /// Inserts a batch of estimates through the copy-on-write delta, then
    /// compacts if the delta has outgrown its thresholds.
    pub fn insert_all(&mut self, entries: impl IntoIterator<Item = (TaskId, TruthEstimate)>) {
        let mut entries = entries.into_iter().peekable();
        if entries.peek().is_none() {
            return;
        }
        let delta = Arc::make_mut(&mut self.delta);
        for (id, est) in entries {
            if delta.insert(id, est).is_none() && self.base.contains_key(&id) {
                self.overlap += 1;
            }
        }
        if self.delta.len() >= COMPACT_MIN
            && (self.delta.len() * COMPACT_RATIO >= self.base.len()
                || self.delta.len() >= COMPACT_MAX_DELTA)
        {
            self.compact();
        }
    }

    /// Folds the delta into a fresh base layer. O(len); called on the
    /// compaction thresholds, on domain merges (which must drop entries),
    /// and unconditionally per flush in non-incremental mode to reproduce
    /// the historical full-clone cost profile.
    pub fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let mut base = (*self.base).clone();
        for (&id, &est) in self.delta.iter() {
            base.insert(id, est);
        }
        self.base = Arc::new(base);
        self.delta = Arc::new(BTreeMap::new());
        self.overlap = 0;
    }

    /// Removes and returns every entry matching `pred`, compacting the
    /// layers in the process (the cross-shard half of a domain merge).
    pub fn take_matching<F: FnMut(&TaskId) -> bool>(
        &mut self,
        mut pred: F,
    ) -> Vec<(TaskId, TruthEstimate)> {
        let mut kept = BTreeMap::new();
        let mut taken = Vec::new();
        for (&id, &est) in self.iter() {
            if pred(&id) {
                taken.push((id, est));
            } else {
                kept.insert(id, est);
            }
        }
        self.base = Arc::new(kept);
        self.delta = Arc::new(BTreeMap::new());
        self.overlap = 0;
        taken
    }
}

/// Read-only view of one shard's published state. Rebuilt by that shard's
/// flush; shared into snapshots by `Arc`. Both fields are copy-on-write:
/// the truth layers share their base with the owning shard, and each
/// expertise column is an `Arc` refreshed only when a flush dirties its
/// domain, so building a view is O(domains) pointer bumps, not a copy of
/// the shard.
#[derive(Debug, Clone)]
pub(crate) struct ShardView {
    /// Truth estimates for every task this shard has ever flushed.
    pub truths: TruthLayers,
    /// Dense expertise columns (length `n_users`, the paper's 1.0 default
    /// filled in) for the domains pinned to this shard — exactly the
    /// domains `DynamicExpertise::matrix` would materialize.
    pub expertise: BTreeMap<DomainId, Arc<Vec<f64>>>,
    /// Number of flushes that produced this view (0 for the empty view).
    pub flushes: u64,
}

impl ShardView {
    pub fn empty() -> Self {
        ShardView {
            truths: TruthLayers::empty(),
            expertise: BTreeMap::new(),
            flushes: 0,
        }
    }
}

/// An immutable, internally consistent view of the engine at one epoch.
///
/// Snapshots are published atomically (a single `Arc` swap) after a flush,
/// so every read made through one snapshot observes the same epoch: truths,
/// expertise and the task table all come from the same publish. Holding a
/// snapshot never blocks ingest, and taking one never waits for an
/// in-flight flush.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    epoch: u64,
    n_users: usize,
    epsilon: f64,
    n_shards: usize,
    tasks: Arc<BTreeMap<TaskId, Task>>,
    views: Vec<Arc<ShardView>>,
}

impl EpochSnapshot {
    pub(crate) fn assemble(
        epoch: u64,
        cfg: &ServeConfig,
        tasks: Arc<BTreeMap<TaskId, Task>>,
        views: Vec<Arc<ShardView>>,
    ) -> Self {
        debug_assert_eq!(views.len(), cfg.n_shards);
        EpochSnapshot {
            epoch,
            n_users: cfg.n_users,
            epsilon: cfg.epsilon,
            n_shards: cfg.n_shards,
            tasks,
            views,
        }
    }

    /// The epoch counter: strictly increasing across publishes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of registered users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// The task table at this epoch.
    pub fn tasks(&self) -> &BTreeMap<TaskId, Task> {
        &self.tasks
    }

    /// Total flushed truth estimates across all shards.
    pub fn truth_count(&self) -> usize {
        self.views.iter().map(|v| v.truths.len()).sum()
    }

    /// Per-shard flush counters (diagnostics; non-decreasing across
    /// successive snapshots).
    pub fn shard_flushes(&self) -> Vec<u64> {
        self.views.iter().map(|v| v.flushes).collect()
    }

    /// The truth estimate for `task` at this epoch, if it has been flushed.
    pub fn truth(&self, task: TaskId) -> Option<TruthEstimate> {
        let t = self.tasks.get(&task)?;
        self.views[shard_of(t.domain, self.n_shards)]
            .truths
            .get(&task)
            .copied()
    }

    /// The expertise `u_i^k` of `user` in `domain` at this epoch (1.0 when
    /// nothing has been accumulated, per the paper's initialization).
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn expertise(&self, user: UserId, domain: DomainId) -> f64 {
        assert!(
            (user.0 as usize) < self.n_users,
            "user {user} out of range for {} users",
            self.n_users
        );
        self.views[shard_of(domain, self.n_shards)]
            .expertise
            .get(&domain)
            .map_or(1.0, |col| col[user.0 as usize])
    }

    /// The full expertise matrix at this epoch, merged across shards.
    pub fn expertise_matrix(&self) -> ExpertiseMatrix {
        let mut m = ExpertiseMatrix::new(self.n_users);
        for view in &self.views {
            for (&domain, col) in &view.expertise {
                for (i, &v) in col.iter().enumerate() {
                    m.set(UserId(i as u32), domain, v);
                }
            }
        }
        m
    }

    /// Greedy max-quality allocation (Algorithm 1) of the given registered
    /// tasks to `users`, using this epoch's expertise. Unknown task ids are
    /// skipped.
    pub fn allocate_max_quality(&self, tasks: &[TaskId], users: &[UserProfile]) -> Allocation {
        let batch: Vec<Task> = tasks
            .iter()
            .filter_map(|id| self.tasks.get(id).copied())
            .collect();
        let expertise = self.expertise_matrix();
        MaxQualityAllocator::new(MaxQualityConfig {
            epsilon: self.epsilon,
            use_approximation_pass: true,
        })
        .allocate(&batch, users, &expertise)
    }

    /// Checks the snapshot's structural invariants, returning a description
    /// of the first violation. Used by the concurrency stress tests to
    /// assert readers never observe a torn epoch:
    ///
    /// * every truth belongs to a task registered in **this** snapshot's
    ///   task table (registration is published before reports are accepted);
    /// * every truth and every expertise domain lives in the shard its
    ///   domain hashes to (no column ever leaks across shards).
    pub fn validate(&self) -> Result<(), String> {
        if self.views.len() != self.n_shards {
            return Err(format!(
                "epoch {}: {} views for {} shards",
                self.epoch,
                self.views.len(),
                self.n_shards
            ));
        }
        for (k, view) in self.views.iter().enumerate() {
            for (&task, _) in view.truths.iter() {
                let t = self.tasks.get(&task).ok_or_else(|| {
                    format!(
                        "epoch {}: shard {k} has truth for unregistered {task:?}",
                        self.epoch
                    )
                })?;
                let home = shard_of(t.domain, self.n_shards);
                if home != k {
                    return Err(format!(
                        "epoch {}: truth for {task:?} (domain {:?}) in shard {k}, belongs in {home}",
                        self.epoch, t.domain
                    ));
                }
            }
            for &domain in view.expertise.keys() {
                let home = shard_of(domain, self.n_shards);
                if home != k {
                    return Err(format!(
                        "epoch {}: expertise column {domain:?} in shard {k}, belongs in {home}",
                        self.epoch
                    ));
                }
            }
        }
        Ok(())
    }

    #[cfg(test)]
    pub(crate) fn view_ptr(&self, shard: usize) -> *const ShardView {
        Arc::as_ptr(&self.views[shard])
    }

    #[cfg(test)]
    pub(crate) fn truth_base_ptr(&self, shard: usize) -> *const BTreeMap<TaskId, TruthEstimate> {
        Arc::as_ptr(&self.views[shard].truths.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(mu: f64) -> TruthEstimate {
        TruthEstimate {
            mu,
            sigma: 1.0,
            fallback: false,
        }
    }

    fn ins(layers: &mut TruthLayers, id: u32, mu: f64) {
        layers.insert_all(std::iter::once((TaskId(id), est(mu))));
    }

    #[test]
    fn layers_get_len_iter_shadowing() {
        let mut base = BTreeMap::new();
        base.insert(TaskId(0), est(1.0));
        base.insert(TaskId(1), est(2.0));
        let mut layers = TruthLayers::from_map(base);
        assert_eq!(layers.len(), 2);
        // Shadow one base entry and add a fresh one.
        ins(&mut layers, 1, 20.0);
        ins(&mut layers, 2, 3.0);
        assert_eq!(layers.len(), 3);
        assert_eq!(layers.get(&TaskId(1)).unwrap().mu, 20.0);
        assert_eq!(layers.get(&TaskId(0)).unwrap().mu, 1.0);
        assert!(layers.get(&TaskId(9)).is_none());
        let collected: BTreeMap<TaskId, f64> = layers.iter().map(|(&id, e)| (id, e.mu)).collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[&TaskId(1)], 20.0);
        // Compaction preserves the merged contents exactly.
        layers.compact();
        assert_eq!(layers.len(), 3);
        let after: BTreeMap<TaskId, f64> = layers.iter().map(|(&id, e)| (id, e.mu)).collect();
        assert_eq!(collected, after);
    }

    #[test]
    fn layers_insert_is_cow_for_readers() {
        let mut layers = TruthLayers::empty();
        ins(&mut layers, 0, 1.0);
        let reader = layers.clone();
        ins(&mut layers, 0, 99.0);
        ins(&mut layers, 1, 2.0);
        // The reader's clone still sees the old epoch.
        assert_eq!(reader.get(&TaskId(0)).unwrap().mu, 1.0);
        assert!(reader.get(&TaskId(1)).is_none());
        assert_eq!(layers.get(&TaskId(0)).unwrap().mu, 99.0);
    }

    #[test]
    fn layers_take_matching_partitions() {
        let mut layers = TruthLayers::empty();
        for i in 0..10u32 {
            ins(&mut layers, i, i as f64);
        }
        let taken = layers.take_matching(|id| id.0 % 2 == 0);
        assert_eq!(taken.len(), 5);
        assert_eq!(layers.len(), 5);
        assert!(layers.get(&TaskId(2)).is_none());
        assert_eq!(layers.get(&TaskId(3)).unwrap().mu, 3.0);
    }

    #[test]
    fn layers_compact_on_threshold() {
        let mut layers = TruthLayers::empty();
        // Fresh inserts on an empty base must compact (delta >= min and
        // ratio trivially satisfied), keeping the delta from growing
        // without bound.
        layers.insert_all((0..200u32).map(|i| (TaskId(i), est(i as f64))));
        assert_eq!(layers.len(), 200);
        assert!(
            layers.delta.len() < 200,
            "delta never compacted: {} entries",
            layers.delta.len()
        );
    }
}
