//! The stateful ETA² server.

use eta2_cluster::{ClustererState, DomainEvent, DynamicClusterer};
use eta2_core::allocation::min_cost::DataSource;
use eta2_core::allocation::{
    Allocation, MaxQualityAllocator, MaxQualityConfig, MinCostAllocator, MinCostConfig,
    MinCostOutcome,
};
use eta2_core::model::{
    DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId, UserProfile,
};
use eta2_core::truth::dynamic::{BatchOutcome, DynamicExpertise};
use eta2_core::truth::mle::{MleConfig, TruthEstimate};
use eta2_embed::pairword::pairword_distance;
use eta2_embed::{Embedding, PairWordExtractor};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Server configuration (the knobs of §3–§5 that are not per-call).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Expertise decay factor `α` (§4.2).
    pub alpha: f64,
    /// Clustering threshold fraction `γ` (§3.3); ignored in known-domain
    /// mode.
    pub gamma: f64,
    /// Accuracy threshold `ε` of the allocation objective (§5.1).
    pub epsilon: f64,
    /// MLE settings (§4.1).
    pub mle: MleConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            alpha: 0.5,
            gamma: 0.6,
            epsilon: 0.1,
            mle: MleConfig::default(),
        }
    }
}

/// Error returned by server operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// A described task was registered on a known-domain server, or vice
    /// versa.
    WrongTaskKind {
        /// What the server expects: `"described"` or `"domained"`.
        expected: &'static str,
    },
    /// An operation referenced a task id the server has never issued.
    UnknownTask(TaskId),
    /// A registered task carried a non-finite or out-of-range numeric
    /// field. The whole batch is rejected; no task of it is registered.
    InvalidTaskInput {
        /// Position of the offending task in the input batch.
        index: usize,
        /// Which field was rejected: `"processing_time"` or `"cost"`.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A report batch carried a NaN or infinite value. The whole batch is
    /// rejected before any truth analysis runs.
    NonFiniteReport {
        /// The reporting user.
        user: UserId,
        /// The reported task.
        task: TaskId,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::WrongTaskKind { expected } => {
                write!(f, "this server only accepts {expected} tasks")
            }
            ServerError::UnknownTask(id) => write!(f, "unknown {id}"),
            ServerError::InvalidTaskInput {
                index,
                field,
                value,
            } => {
                write!(f, "task #{index}: invalid {field} {value}")
            }
            ServerError::NonFiniteReport { user, task, value } => {
                write!(f, "non-finite report {value} from {user} for {task}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

/// One task handed to [`Eta2Server::register_tasks`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskInput {
    /// A natural-language task for domain discovery.
    Described {
        /// The task description sentence.
        description: String,
        /// Processing time `t_j` in hours.
        processing_time: f64,
        /// Recruiting cost `c_j`.
        cost: f64,
    },
    /// A task with a pre-known expertise domain.
    Domained {
        /// The expertise domain.
        domain: DomainId,
        /// Processing time `t_j` in hours.
        processing_time: f64,
        /// Recruiting cost `c_j`.
        cost: f64,
    },
}

impl TaskInput {
    /// Convenience constructor for a described task.
    pub fn described(description: &str, processing_time: f64, cost: f64) -> Self {
        TaskInput::Described {
            description: description.to_string(),
            processing_time,
            cost,
        }
    }

    /// Convenience constructor for a pre-domained task.
    pub fn domained(domain: DomainId, processing_time: f64, cost: f64) -> Self {
        TaskInput::Domained {
            domain,
            processing_time,
            cost,
        }
    }
}

/// Domain-identification state: discovery pipeline or trust-the-caller.
enum Domains {
    Discover {
        embedding: Embedding,
        extractor: PairWordExtractor,
        clusterer: DynamicClusterer<Vec<f32>, fn(&Vec<f32>, &Vec<f32>) -> f64>,
    },
    Known,
}

/// The stateful ETA² crowdsourcing server (see the crate docs for the
/// end-to-end walkthrough).
pub struct Eta2Server {
    config: ServerConfig,
    domains: Domains,
    expertise: DynamicExpertise,
    tasks: BTreeMap<TaskId, Task>,
    truths: BTreeMap<TaskId, TruthEstimate>,
    next_task: u32,
}

fn metric(a: &Vec<f32>, b: &Vec<f32>) -> f64 {
    pairword_distance(a, b)
}

impl Eta2Server {
    /// Creates a server that *discovers* expertise domains from task
    /// descriptions with the given trained embedding (§3 pipeline).
    pub fn discovering(n_users: usize, config: ServerConfig, embedding: Embedding) -> Self {
        Eta2Server {
            expertise: DynamicExpertise::new(n_users, config.alpha, config.mle),
            domains: Domains::Discover {
                embedding,
                extractor: PairWordExtractor::new(),
                clusterer: DynamicClusterer::new(
                    metric as fn(&Vec<f32>, &Vec<f32>) -> f64,
                    config.gamma,
                ),
            },
            config,
            tasks: BTreeMap::new(),
            truths: BTreeMap::new(),
            next_task: 0,
        }
    }

    /// Creates a server whose tasks arrive with pre-known domains.
    pub fn with_known_domains(n_users: usize, config: ServerConfig) -> Self {
        Eta2Server {
            expertise: DynamicExpertise::new(n_users, config.alpha, config.mle),
            domains: Domains::Known,
            config,
            tasks: BTreeMap::new(),
            truths: BTreeMap::new(),
            next_task: 0,
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of live expertise domains.
    pub fn domain_count(&self) -> usize {
        match &self.domains {
            Domains::Discover { clusterer, .. } => clusterer.domains().len(),
            Domains::Known => self
                .tasks
                .values()
                .map(|t| t.domain)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
        }
    }

    /// Registers a batch of tasks, identifying their expertise domains
    /// (§3). The first described batch doubles as the clustering warm-up
    /// and fixes `d*`. Returns the new task ids in input order.
    ///
    /// # Errors
    ///
    /// [`ServerError::WrongTaskKind`] if the input kind does not match the
    /// server's mode.
    pub fn register_tasks(&mut self, inputs: Vec<TaskInput>) -> Result<Vec<TaskId>, ServerError> {
        let _span = eta2_obs::span!("server.register_tasks");
        let result = self.register_tasks_inner(inputs);
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "register_tasks",
            ok: result.is_ok(),
            detail: match &result {
                Ok(ids) => format!("registered {} tasks", ids.len()),
                Err(e) => e.to_string(),
            },
        });
        result
    }

    fn register_tasks_inner(&mut self, inputs: Vec<TaskInput>) -> Result<Vec<TaskId>, ServerError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        // Validate every numeric field before anything mutates — a rejected
        // batch must leave the clusterer and task table untouched, and
        // `Task::new` would panic on these values further down.
        for (index, input) in inputs.iter().enumerate() {
            let (time, cost) = match input {
                TaskInput::Described {
                    processing_time,
                    cost,
                    ..
                }
                | TaskInput::Domained {
                    processing_time,
                    cost,
                    ..
                } => (*processing_time, *cost),
            };
            if !(time.is_finite() && time > 0.0) {
                return Err(ServerError::InvalidTaskInput {
                    index,
                    field: "processing_time",
                    value: time,
                });
            }
            if !(cost.is_finite() && cost >= 0.0) {
                return Err(ServerError::InvalidTaskInput {
                    index,
                    field: "cost",
                    value: cost,
                });
            }
        }
        let resolved_domains: Vec<DomainId> = match &mut self.domains {
            Domains::Known => inputs
                .iter()
                .map(|i| match i {
                    TaskInput::Domained { domain, .. } => Ok(*domain),
                    TaskInput::Described { .. } => Err(ServerError::WrongTaskKind {
                        expected: "domained",
                    }),
                })
                .collect::<Result<_, _>>()?,
            Domains::Discover {
                embedding,
                extractor,
                clusterer,
            } => {
                let points: Vec<Vec<f32>> = inputs
                    .iter()
                    .map(|i| match i {
                        TaskInput::Described { description, .. } => Ok(extractor
                            .extract(description)
                            .semantic_vector(embedding)
                            .unwrap_or_else(|| vec![0.0; 2 * embedding.dim()])),
                        TaskInput::Domained { .. } => Err(ServerError::WrongTaskKind {
                            expected: "described",
                        }),
                    })
                    .collect::<Result<_, _>>()?;
                let update = if clusterer.is_empty() {
                    clusterer.warm_up(points)
                } else {
                    clusterer.add(points)
                };
                // Fold domain merges into the expertise accumulators and
                // re-label affected tasks (paper §4.2, special case 2).
                for event in &update.events {
                    if let DomainEvent::Merged { kept, absorbed } = event {
                        self.expertise
                            .merge_domains(DomainId(*kept), DomainId(*absorbed));
                        for t in self.tasks.values_mut() {
                            if t.domain == DomainId(*absorbed) {
                                t.domain = DomainId(*kept);
                            }
                        }
                    }
                }
                update.assignments.iter().map(|&d| DomainId(d)).collect()
            }
        };

        let mut ids = Vec::with_capacity(inputs.len());
        for (input, domain) in inputs.iter().zip(resolved_domains) {
            let (time, cost) = match input {
                TaskInput::Described {
                    processing_time,
                    cost,
                    ..
                }
                | TaskInput::Domained {
                    processing_time,
                    cost,
                    ..
                } => (*processing_time, *cost),
            };
            let id = TaskId(self.next_task);
            self.next_task += 1;
            self.tasks.insert(id, Task::new(id, domain, time, cost));
            ids.push(id);
        }
        Ok(ids)
    }

    /// The resolved domain of a registered task.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTask`] for an unregistered id.
    pub fn domain_of(&self, task: TaskId) -> Result<DomainId, ServerError> {
        self.tasks
            .get(&task)
            .map(|t| t.domain)
            .ok_or(ServerError::UnknownTask(task))
    }

    /// Max-quality allocation (§5.1) of the given tasks to `users`, using
    /// the current expertise estimates.
    ///
    /// Unknown task ids are ignored (allocating a subset is the common
    /// case; validate with [`Eta2Server::domain_of`] first if needed).
    pub fn allocate_max_quality(&self, tasks: &[TaskId], users: &[UserProfile]) -> Allocation {
        let _span = eta2_obs::span!("server.allocate_max_quality");
        let batch: Vec<Task> = tasks
            .iter()
            .filter_map(|id| self.tasks.get(id).copied())
            .collect();
        let alloc = MaxQualityAllocator::new(MaxQualityConfig {
            epsilon: self.config.epsilon,
            use_approximation_pass: true,
        })
        .allocate(&batch, users, &self.expertise.matrix());
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "allocate_max_quality",
            ok: true,
            detail: format!(
                "{} assignments over {} tasks",
                alloc.assignment_count(),
                batch.len()
            ),
        });
        alloc
    }

    /// Min-cost allocation (§5.2): drives `source` through collection
    /// rounds until each task's quality gate is met. Observations collected
    /// by the rounds are *also* ingested into the server's expertise state,
    /// so a follow-up [`Eta2Server::ingest`] is not needed.
    pub fn allocate_min_cost<S: DataSource>(
        &mut self,
        tasks: &[TaskId],
        users: &[UserProfile],
        config: MinCostConfig,
        source: &mut S,
    ) -> MinCostOutcome {
        let _span = eta2_obs::span!("server.allocate_min_cost");
        let batch: Vec<Task> = tasks
            .iter()
            .filter_map(|id| self.tasks.get(id).copied())
            .collect();
        let outcome =
            MinCostAllocator::new(config).allocate(&batch, users, &self.expertise.matrix(), source);
        let ingest = self.expertise.ingest_batch(&batch, &outcome.observations);
        self.truths.extend(ingest.truths);
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "allocate_min_cost",
            ok: outcome.all_passed,
            detail: format!(
                "{} rounds, cost {:.3}, all_passed={}",
                outcome.rounds, outcome.total_cost, outcome.all_passed
            ),
        });
        outcome
    }

    /// Ingests collected reports: runs the §4 expertise-aware truth
    /// analysis over the registered tasks they belong to, updates the
    /// decayed expertise, caches and returns the truth estimates.
    ///
    /// Observations for unregistered tasks are ignored.
    ///
    /// # Errors
    ///
    /// [`ServerError::NonFiniteReport`] when any report is NaN or infinite;
    /// the whole batch is rejected and no state changes.
    pub fn ingest(&mut self, reports: &ObservationSet) -> Result<BatchOutcome, ServerError> {
        let _span = eta2_obs::span!("server.ingest");
        if let Some((user, task, value)) = reports.first_non_finite() {
            let err = ServerError::NonFiniteReport { user, task, value };
            eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
                op: "ingest",
                ok: false,
                detail: err.to_string(),
            });
            return Err(err);
        }
        let batch: Vec<Task> = reports
            .tasks()
            .filter_map(|id| self.tasks.get(&id).copied())
            .collect();
        let outcome = self.expertise.ingest_batch(&batch, reports);
        self.truths
            .extend(outcome.truths.iter().map(|(&k, &v)| (k, v)));
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "ingest",
            ok: outcome.converged,
            detail: format!(
                "{} tasks analysed in {} iterations",
                outcome.truths.len(),
                outcome.iterations
            ),
        });
        Ok(outcome)
    }

    /// The latest truth estimate for a task, if it has been analysed.
    pub fn truth(&self, task: TaskId) -> Option<TruthEstimate> {
        self.truths.get(&task).copied()
    }

    /// A snapshot of the current expertise estimates.
    pub fn expertise(&self) -> ExpertiseMatrix {
        self.expertise.matrix()
    }

    /// Captures the complete server state as a serializable checkpoint.
    ///
    /// The snapshot holds everything a restart needs — configuration,
    /// expertise accumulators, task table, cached truths, the id counter
    /// and (in discovery mode) the embedding plus clustering state — so
    /// [`Eta2Server::restore`] continues bit-identically to a server that
    /// never stopped.
    pub fn snapshot(&self) -> ServerSnapshot {
        let _span = eta2_obs::span!("server.snapshot");
        let snap = ServerSnapshot {
            config: self.config,
            expertise: self.expertise.clone(),
            tasks: self.tasks.clone(),
            truths: self.truths.clone(),
            next_task: self.next_task,
            domains: match &self.domains {
                Domains::Known => DomainsSnapshot::Known,
                Domains::Discover {
                    embedding,
                    clusterer,
                    ..
                } => DomainsSnapshot::Discover {
                    embedding: embedding.clone(),
                    clusterer: clusterer.state(),
                },
            },
        };
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "snapshot",
            ok: true,
            detail: format!("{} tasks, {} truths", snap.tasks.len(), snap.truths.len()),
        });
        snap
    }

    /// Rebuilds a server from a [`ServerSnapshot`] checkpoint.
    pub fn restore(snapshot: ServerSnapshot) -> Self {
        let _span = eta2_obs::span!("server.restore");
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "restore",
            ok: true,
            detail: format!(
                "{} tasks, {} truths",
                snapshot.tasks.len(),
                snapshot.truths.len()
            ),
        });
        Eta2Server {
            config: snapshot.config,
            expertise: snapshot.expertise,
            tasks: snapshot.tasks,
            truths: snapshot.truths,
            next_task: snapshot.next_task,
            domains: match snapshot.domains {
                DomainsSnapshot::Known => Domains::Known,
                DomainsSnapshot::Discover {
                    embedding,
                    clusterer,
                } => Domains::Discover {
                    embedding,
                    extractor: PairWordExtractor::new(),
                    clusterer: DynamicClusterer::from_state(
                        metric as fn(&Vec<f32>, &Vec<f32>) -> f64,
                        clusterer,
                    ),
                },
            },
        }
    }
}

/// Serializable checkpoint of an [`Eta2Server`] — produced by
/// [`Eta2Server::snapshot`], consumed by [`Eta2Server::restore`].
///
/// Serialized with serde; the JSON form is the checkpoint format documented
/// in DESIGN.md §7. Only the pair-word extractor (stateless) and the
/// clustering metric (a function pointer) are rebuilt on restore.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSnapshot {
    config: ServerConfig,
    expertise: DynamicExpertise,
    tasks: BTreeMap<TaskId, Task>,
    truths: BTreeMap<TaskId, TruthEstimate>,
    next_task: u32,
    domains: DomainsSnapshot,
}

/// Serializable mirror of the private [`Domains`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum DomainsSnapshot {
    Known,
    Discover {
        embedding: Embedding,
        clusterer: ClustererState<Vec<f32>>,
    },
}

impl fmt::Debug for Eta2Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Eta2Server")
            .field(
                "mode",
                &match self.domains {
                    Domains::Discover { .. } => "discover",
                    Domains::Known => "known-domains",
                },
            )
            .field("tasks", &self.tasks.len())
            .field("domains", &self.domain_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta2_core::model::UserId;
    use eta2_embed::corpus::TopicCorpus;
    use eta2_embed::{SkipGramConfig, SkipGramTrainer};
    use rand::{Rng, SeedableRng};

    fn embedding() -> Embedding {
        let corpus = TopicCorpus::builtin().generate(150, 1);
        SkipGramTrainer::new(SkipGramConfig {
            dim: 16,
            epochs: 2,
            ..SkipGramConfig::default()
        })
        .train_sentences(&corpus)
        .unwrap()
    }

    fn users(n: u32, capacity: f64) -> Vec<UserProfile> {
        (0..n)
            .map(|i| UserProfile::new(UserId(i), capacity))
            .collect()
    }

    #[test]
    fn known_domain_lifecycle() {
        let mut server = Eta2Server::with_known_domains(3, ServerConfig::default());
        let ids = server
            .register_tasks(vec![
                TaskInput::domained(DomainId(0), 1.0, 1.0),
                TaskInput::domained(DomainId(1), 1.0, 1.0),
            ])
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(server.task_count(), 2);
        assert_eq!(server.domain_count(), 2);
        assert_eq!(server.domain_of(ids[0]).unwrap(), DomainId(0));

        let alloc = server.allocate_max_quality(&ids, &users(3, 5.0));
        assert!(!alloc.is_empty());
        let mut reports = ObservationSet::new();
        for (task, assigned) in alloc.iter() {
            for &u in assigned {
                reports.insert(u, task, 10.0 + u.0 as f64 * 0.01);
            }
        }
        let outcome = server.ingest(&reports).unwrap();
        assert_eq!(outcome.truths.len(), 2);
        assert!(server.truth(ids[0]).is_some());
        assert!(server.truth(TaskId(99)).is_none());
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut known = Eta2Server::with_known_domains(1, ServerConfig::default());
        let err = known
            .register_tasks(vec![TaskInput::described("what is this?", 1.0, 1.0)])
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::WrongTaskKind {
                expected: "domained"
            }
        );

        let mut disco = Eta2Server::discovering(1, ServerConfig::default(), embedding());
        let err = disco
            .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, 1.0)])
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::WrongTaskKind {
                expected: "described"
            }
        );
    }

    #[test]
    fn discovery_assigns_same_topic_to_same_domain() {
        let mut server = Eta2Server::discovering(4, ServerConfig::default(), embedding());
        let ids = server
            .register_tasks(vec![
                TaskInput::described(
                    "What is the noise level around the municipal building?",
                    1.0,
                    1.0,
                ),
                TaskInput::described(
                    "What is the decibel measurement near the construction street?",
                    1.0,
                    1.0,
                ),
                TaskInput::described("How many parking spots are at the garage?", 1.0, 1.0),
            ])
            .unwrap();
        let d0 = server.domain_of(ids[0]).unwrap();
        let d1 = server.domain_of(ids[1]).unwrap();
        let d2 = server.domain_of(ids[2]).unwrap();
        assert_eq!(d0, d1, "noise tasks split across domains");
        assert_ne!(d0, d2, "noise and parking merged");

        // A later arrival joins the existing noise domain.
        let later = server
            .register_tasks(vec![TaskInput::described(
                "What is the ambient sound volume near the street?",
                1.0,
                1.0,
            )])
            .unwrap();
        assert_eq!(server.domain_of(later[0]).unwrap(), d0);
    }

    #[test]
    fn expertise_learned_over_batches() {
        let mut server = Eta2Server::with_known_domains(4, ServerConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let skills = [3.0, 1.0, 1.0, 0.3];
        for _day in 0..3 {
            let ids = server
                .register_tasks(
                    (0..15)
                        .map(|_| TaskInput::domained(DomainId(0), 1.0, 1.0))
                        .collect(),
                )
                .unwrap();
            let mut reports = ObservationSet::new();
            for &id in &ids {
                let truth: f64 = rng.gen_range(0.0..20.0);
                for (i, &u) in skills.iter().enumerate() {
                    let z = eta2_stats::normal::standard_sample(&mut rng);
                    reports.insert(UserId(i as u32), id, truth + z / u);
                }
            }
            server.ingest(&reports).unwrap();
        }
        let ex = server.expertise();
        assert!(
            ex.get(UserId(0), DomainId(0)) > ex.get(UserId(3), DomainId(0)),
            "expertise ordering not learned: {:?}",
            (0..4)
                .map(|i| ex.get(UserId(i), DomainId(0)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn min_cost_path_ingests_automatically() {
        let mut server = Eta2Server::with_known_domains(10, ServerConfig::default());
        let ids = server
            .register_tasks(
                (0..3)
                    .map(|_| TaskInput::domained(DomainId(0), 1.0, 1.0))
                    .collect(),
            )
            .unwrap();
        let mut source = |_u: UserId, _t: &Task| 7.0_f64;
        let outcome = server.allocate_min_cost(
            &ids,
            &users(10, 100.0),
            MinCostConfig::default(),
            &mut source,
        );
        assert!(outcome.all_passed);
        // Truths are queryable without a separate ingest.
        for id in ids {
            assert!((server.truth(id).unwrap().mu - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ingest_ignores_unregistered_tasks() {
        let mut server = Eta2Server::with_known_domains(2, ServerConfig::default());
        let mut reports = ObservationSet::new();
        reports.insert(UserId(0), TaskId(123), 1.0);
        let outcome = server.ingest(&reports).unwrap();
        assert!(outcome.truths.is_empty());
    }

    #[test]
    fn empty_registration_is_noop() {
        let mut server = Eta2Server::with_known_domains(2, ServerConfig::default());
        assert_eq!(server.register_tasks(vec![]).unwrap(), vec![]);
        assert_eq!(server.task_count(), 0);
    }

    #[test]
    fn allocate_ignores_unknown_ids() {
        let server = Eta2Server::with_known_domains(2, ServerConfig::default());
        let alloc = server.allocate_max_quality(&[TaskId(5)], &users(2, 5.0));
        assert!(alloc.is_empty());
    }

    #[test]
    fn debug_shows_mode() {
        let server = Eta2Server::with_known_domains(2, ServerConfig::default());
        assert!(format!("{server:?}").contains("known-domains"));
    }

    #[test]
    fn register_rejects_bad_numerics_atomically() {
        let mut server = Eta2Server::with_known_domains(2, ServerConfig::default());
        let err = server
            .register_tasks(vec![
                TaskInput::domained(DomainId(0), 1.0, 1.0),
                TaskInput::domained(DomainId(0), f64::NAN, 1.0),
            ])
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServerError::InvalidTaskInput {
                    index: 1,
                    field: "processing_time",
                    value,
                } if value.is_nan()
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("processing_time"));

        let err = server
            .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, -3.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            ServerError::InvalidTaskInput { field: "cost", .. }
        ));

        let err = server
            .register_tasks(vec![TaskInput::domained(DomainId(0), f64::INFINITY, 1.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            ServerError::InvalidTaskInput {
                field: "processing_time",
                ..
            }
        ));

        // Rejection is atomic: the valid head of a bad batch was not kept.
        assert_eq!(server.task_count(), 0);
    }

    #[test]
    fn ingest_rejects_non_finite_reports_without_state_change() {
        let mut server = Eta2Server::with_known_domains(2, ServerConfig::default());
        let ids = server
            .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, 1.0)])
            .unwrap();
        let before = server.expertise();

        let mut reports = ObservationSet::new();
        reports.insert(UserId(0), ids[0], 5.0);
        reports.insert(UserId(1), ids[0], f64::NAN);
        let err = server.ingest(&reports).unwrap_err();
        assert!(matches!(
            err,
            ServerError::NonFiniteReport {
                user: UserId(1),
                ..
            }
        ));
        assert_eq!(server.expertise(), before, "rejected batch mutated state");
        assert!(server.truth(ids[0]).is_none());
    }

    /// Drives `server` through one day of a deterministic workload.
    fn one_day(server: &mut Eta2Server, day: u64) -> Vec<TaskId> {
        let ids = server
            .register_tasks(
                (0..4)
                    .map(|k| TaskInput::domained(DomainId((k % 2) as u32), 1.0, 1.0))
                    .collect(),
            )
            .unwrap();
        let mut reports = ObservationSet::new();
        for (k, &id) in ids.iter().enumerate() {
            for u in 0..3u32 {
                let value = 10.0 + day as f64 + k as f64 * 0.5 + u as f64 * 0.05;
                reports.insert(UserId(u), id, value);
            }
        }
        server.ingest(&reports).unwrap();
        ids
    }

    #[test]
    fn known_domain_checkpoint_restores_bit_identically() {
        // Uninterrupted reference run: four days straight through.
        let mut reference = Eta2Server::with_known_domains(3, ServerConfig::default());
        let mut ref_ids = Vec::new();
        for day in 0..4 {
            ref_ids.extend(one_day(&mut reference, day));
        }

        // Interrupted run: two days, checkpoint through JSON, two more.
        let mut first_half = Eta2Server::with_known_domains(3, ServerConfig::default());
        for day in 0..2 {
            one_day(&mut first_half, day);
        }
        let json = serde_json::to_string(&first_half.snapshot()).unwrap();
        drop(first_half);
        let snap: ServerSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = Eta2Server::restore(snap);
        for day in 2..4 {
            one_day(&mut restored, day);
        }

        assert_eq!(restored.task_count(), reference.task_count());
        assert_eq!(restored.expertise(), reference.expertise());
        for &id in &ref_ids {
            assert_eq!(restored.truth(id), reference.truth(id), "{id}");
        }
    }

    #[test]
    fn discovery_checkpoint_keeps_clustering_state() {
        let emb = embedding();
        let mut original = Eta2Server::discovering(4, ServerConfig::default(), emb);
        original
            .register_tasks(vec![
                TaskInput::described(
                    "What is the noise level around the municipal building?",
                    1.0,
                    1.0,
                ),
                TaskInput::described("How many parking spots are at the garage?", 1.0, 1.0),
            ])
            .unwrap();

        let json = serde_json::to_string(&original.snapshot()).unwrap();
        let mut restored =
            Eta2Server::restore(serde_json::from_str::<ServerSnapshot>(&json).unwrap());
        assert_eq!(restored.task_count(), original.task_count());
        assert_eq!(restored.domain_count(), original.domain_count());

        // Both servers classify the next arrival identically: the restored
        // clusterer kept its points, domains and reference distance d*.
        let next = TaskInput::described(
            "What is the decibel measurement near the construction street?",
            1.0,
            1.0,
        );
        let a = original.register_tasks(vec![next.clone()]).unwrap();
        let b = restored.register_tasks(vec![next]).unwrap();
        assert_eq!(a, b, "restored server issued different task ids");
        assert_eq!(
            original.domain_of(a[0]).unwrap(),
            restored.domain_of(b[0]).unwrap(),
            "restored server clustered the arrival differently"
        );
    }
}
