//! The stateful ETA² server — a thin single-threaded adapter over a
//! one-shard [`ServeEngine`].

use eta2_cluster::{ClustererState, DomainEvent, DynamicClusterer};
use eta2_core::allocation::min_cost::DataSource;
use eta2_core::allocation::{Allocation, MinCostAllocator, MinCostConfig, MinCostOutcome};
use eta2_core::model::{DomainId, ExpertiseMatrix, ObservationSet, TaskId, UserId, UserProfile};
use eta2_core::truth::dynamic::BatchOutcome;
use eta2_core::truth::mle::{MleConfig, TruthEstimate};
use eta2_embed::pairword::pairword_distance;
use eta2_embed::{Embedding, PairWordExtractor};
use eta2_net::{Request, Response};
use eta2_serve::{EngineCheckpoint, ServeConfig, ServeEngine, TaskSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Server configuration (the knobs of §3–§5 that are not per-call).
///
/// `#[non_exhaustive]`: construct via [`ServerConfig::default`] and mutate
/// the fields you need — new knobs may be added in minor releases.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ServerConfig {
    /// Expertise decay factor `α` (§4.2).
    pub alpha: f64,
    /// Clustering threshold fraction `γ` (§3.3); ignored in known-domain
    /// mode.
    pub gamma: f64,
    /// Accuracy threshold `ε` of the allocation objective (§5.1).
    pub epsilon: f64,
    /// MLE settings (§4.1).
    pub mle: MleConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            alpha: 0.5,
            gamma: 0.6,
            epsilon: 0.1,
            mle: MleConfig::default(),
        }
    }
}

/// Error returned by server operations.
///
/// `#[non_exhaustive]`: match with a wildcard arm — new error conditions
/// may be added in minor releases. Wrapped lower-level failures (snapshot
/// decoding today) expose their cause through
/// [`std::error::Error::source`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServerError {
    /// A described task was registered on a known-domain server, or vice
    /// versa.
    WrongTaskKind {
        /// What the server expects: `"described"` or `"domained"`.
        expected: &'static str,
    },
    /// An operation referenced a task id the server has never issued.
    UnknownTask(TaskId),
    /// A registered task carried a non-finite or out-of-range numeric
    /// field. The whole batch is rejected; no task of it is registered.
    InvalidTaskInput {
        /// Position of the offending task in the input batch.
        index: usize,
        /// Which field was rejected: `"processing_time"` or `"cost"`.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A report batch carried a NaN or infinite value. The whole batch is
    /// rejected before any truth analysis runs.
    NonFiniteReport {
        /// The reporting user.
        user: UserId,
        /// The reported task.
        task: TaskId,
        /// The offending value.
        value: f64,
    },
    /// A snapshot or checkpoint could not be decoded (corrupt data or an
    /// unsupported [`ServerSnapshot`] version). The underlying decoder
    /// error is available via [`std::error::Error::source`].
    BadSnapshot {
        /// What was being decoded when the failure happened.
        context: String,
        /// The wrapped lower-level error.
        source: Arc<dyn std::error::Error + Send + Sync>,
    },
}

impl PartialEq for ServerError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                ServerError::WrongTaskKind { expected: a },
                ServerError::WrongTaskKind { expected: b },
            ) => a == b,
            (ServerError::UnknownTask(a), ServerError::UnknownTask(b)) => a == b,
            (
                ServerError::InvalidTaskInput {
                    index: ia,
                    field: fa,
                    value: va,
                },
                ServerError::InvalidTaskInput {
                    index: ib,
                    field: fb,
                    value: vb,
                },
            ) => ia == ib && fa == fb && va == vb,
            (
                ServerError::NonFiniteReport {
                    user: ua,
                    task: ta,
                    value: va,
                },
                ServerError::NonFiniteReport {
                    user: ub,
                    task: tb,
                    value: vb,
                },
            ) => ua == ub && ta == tb && va == vb,
            (
                ServerError::BadSnapshot {
                    context: ca,
                    source: sa,
                },
                ServerError::BadSnapshot {
                    context: cb,
                    source: sb,
                },
            ) => ca == cb && sa.to_string() == sb.to_string(),
            _ => false,
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::WrongTaskKind { expected } => {
                write!(f, "this server only accepts {expected} tasks")
            }
            ServerError::UnknownTask(id) => write!(f, "unknown {id}"),
            ServerError::InvalidTaskInput {
                index,
                field,
                value,
            } => {
                write!(f, "task #{index}: invalid {field} {value}")
            }
            ServerError::NonFiniteReport { user, task, value } => {
                write!(f, "non-finite report {value} from {user} for {task}")
            }
            ServerError::BadSnapshot { context, source } => {
                write!(f, "{context}: {source}")
            }
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::BadSnapshot { source, .. } => {
                Some(source.as_ref() as &(dyn std::error::Error + 'static))
            }
            _ => None,
        }
    }
}

/// One task handed to [`Eta2Server::register_tasks`].
///
/// `#[non_exhaustive]`: build via [`TaskInput::described`] /
/// [`TaskInput::domained`] and match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TaskInput {
    /// A natural-language task for domain discovery.
    Described {
        /// The task description sentence.
        description: String,
        /// Processing time `t_j` in hours.
        processing_time: f64,
        /// Recruiting cost `c_j`.
        cost: f64,
    },
    /// A task with a pre-known expertise domain.
    Domained {
        /// The expertise domain.
        domain: DomainId,
        /// Processing time `t_j` in hours.
        processing_time: f64,
        /// Recruiting cost `c_j`.
        cost: f64,
    },
}

impl TaskInput {
    /// Convenience constructor for a described task.
    pub fn described(description: &str, processing_time: f64, cost: f64) -> Self {
        TaskInput::Described {
            description: description.to_string(),
            processing_time,
            cost,
        }
    }

    /// Convenience constructor for a pre-domained task.
    pub fn domained(domain: DomainId, processing_time: f64, cost: f64) -> Self {
        TaskInput::Domained {
            domain,
            processing_time,
            cost,
        }
    }
}

/// Domain-identification state: discovery pipeline or trust-the-caller.
enum Domains {
    Discover {
        embedding: Embedding,
        extractor: PairWordExtractor,
        clusterer: DynamicClusterer<Vec<f32>, fn(&Vec<f32>, &Vec<f32>) -> f64>,
    },
    Known,
}

/// Builds an [`Eta2Server`].
///
/// The embedding is the only structural choice: give one with
/// [`ServerBuilder::embedding`] and the server *discovers* expertise
/// domains from task descriptions (§3 pipeline); omit it and tasks must
/// arrive pre-labeled with a [`DomainId`].
///
/// ```no_run
/// # let embedding: eta2_embed::Embedding = unimplemented!();
/// use eta2_server::{ServerBuilder, ServerConfig};
///
/// let mut config = ServerConfig::default();
/// config.alpha = 0.7;
/// let known = ServerBuilder::new(16).config(config).build();
/// let discovering = ServerBuilder::new(16).embedding(embedding).build();
/// ```
#[derive(Debug, Clone)]
pub struct ServerBuilder {
    n_users: usize,
    config: ServerConfig,
    embedding: Option<Embedding>,
}

impl ServerBuilder {
    /// Starts a builder for a server with `n_users` registered users,
    /// default configuration and pre-known domains.
    pub fn new(n_users: usize) -> Self {
        ServerBuilder {
            n_users,
            config: ServerConfig::default(),
            embedding: None,
        }
    }

    /// Replaces the server configuration.
    pub fn config(mut self, config: ServerConfig) -> Self {
        self.config = config;
        self
    }

    /// Switches the server to domain *discovery* using this trained word
    /// embedding; tasks must then arrive as [`TaskInput::Described`].
    pub fn embedding(mut self, embedding: Embedding) -> Self {
        self.embedding = Some(embedding);
        self
    }

    /// Builds the server.
    pub fn build(self) -> Eta2Server {
        let engine = ServeEngine::new(Eta2Server::engine_config(self.n_users, &self.config));
        let domains = match self.embedding {
            Some(embedding) => Domains::Discover {
                extractor: PairWordExtractor::new(),
                clusterer: DynamicClusterer::new(
                    metric as fn(&Vec<f32>, &Vec<f32>) -> f64,
                    self.config.gamma,
                ),
                embedding,
            },
            None => Domains::Known,
        };
        Eta2Server {
            config: self.config,
            domains,
            engine,
        }
    }

    /// Rebuilds a server from a checkpoint; equivalent to
    /// [`Eta2Server::restore`], offered here so the whole lifecycle reads
    /// off the builder.
    pub fn from_snapshot(snapshot: ServerSnapshot) -> Eta2Server {
        Eta2Server::restore(snapshot)
    }
}

/// The stateful ETA² crowdsourcing server (see the crate docs for the
/// end-to-end walkthrough).
///
/// Internally this is a single-threaded adapter over a one-shard
/// [`ServeEngine`] with manual flushing: every [`Eta2Server::ingest`]
/// submits the reports and immediately flushes, so results are available
/// synchronously, and any sharded `eta2-serve` deployment fed the same
/// report stream produces exactly these floats (the parity proptest in
/// `tests/parity.rs`). One numeric change relative to the pre-engine
/// 0.1 release is deliberate: an ingest spanning several domains now
/// converges each domain on its own 5 % criterion (the decomposition the
/// sharded engine relies on) instead of iterating every domain until the
/// slowest converges, so multi-domain ingests can produce slightly
/// different floats than 0.1 did; single-domain ingests are bit-identical.
/// Use `eta2-serve` directly for concurrent producers and lock-free epoch
/// reads.
pub struct Eta2Server {
    config: ServerConfig,
    domains: Domains,
    engine: ServeEngine,
}

fn metric(a: &Vec<f32>, b: &Vec<f32>) -> f64 {
    pairword_distance(a, b)
}

impl Eta2Server {
    /// The adapter always runs the engine as a single shard with manual
    /// (per-ingest) flushing so the historical synchronous semantics hold.
    // `ServeConfig` is `#[non_exhaustive]`, so it cannot be built with a
    // struct literal from this crate.
    #[allow(clippy::field_reassign_with_default)]
    fn engine_config(n_users: usize, config: &ServerConfig) -> ServeConfig {
        let mut serve = ServeConfig::default();
        serve.n_users = n_users;
        serve.n_shards = 1;
        serve.batch_capacity = 0;
        serve.threads = 1;
        serve.alpha = config.alpha;
        serve.epsilon = config.epsilon;
        serve.mle = config.mle;
        serve
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of registered tasks.
    pub fn task_count(&self) -> usize {
        self.engine.snapshot().tasks().len()
    }

    /// Number of live expertise domains.
    pub fn domain_count(&self) -> usize {
        match &self.domains {
            Domains::Discover { clusterer, .. } => clusterer.domains().len(),
            Domains::Known => self
                .engine
                .snapshot()
                .tasks()
                .values()
                .map(|t| t.domain)
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
        }
    }

    /// Registers a batch of tasks, identifying their expertise domains
    /// (§3). The first described batch doubles as the clustering warm-up
    /// and fixes `d*`. Returns the new task ids in input order.
    ///
    /// # Errors
    ///
    /// [`ServerError::WrongTaskKind`] if the input kind does not match the
    /// server's mode.
    pub fn register_tasks(&mut self, inputs: Vec<TaskInput>) -> Result<Vec<TaskId>, ServerError> {
        let _span = eta2_obs::span!("server.register_tasks");
        let result = self.register_tasks_inner(inputs);
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "register_tasks",
            ok: result.is_ok(),
            detail: match &result {
                Ok(ids) => format!("registered {} tasks", ids.len()),
                Err(e) => e.to_string(),
            },
        });
        result
    }

    fn register_tasks_inner(&mut self, inputs: Vec<TaskInput>) -> Result<Vec<TaskId>, ServerError> {
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        // Validate every numeric field before anything mutates — a rejected
        // batch must leave the clusterer and task table untouched.
        for (index, input) in inputs.iter().enumerate() {
            let (time, cost) = match input {
                TaskInput::Described {
                    processing_time,
                    cost,
                    ..
                }
                | TaskInput::Domained {
                    processing_time,
                    cost,
                    ..
                } => (*processing_time, *cost),
            };
            if !(time.is_finite() && time > 0.0) {
                return Err(ServerError::InvalidTaskInput {
                    index,
                    field: "processing_time",
                    value: time,
                });
            }
            if !(cost.is_finite() && cost >= 0.0) {
                return Err(ServerError::InvalidTaskInput {
                    index,
                    field: "cost",
                    value: cost,
                });
            }
        }
        let resolved_domains: Vec<DomainId> = match &mut self.domains {
            Domains::Known => inputs
                .iter()
                .map(|i| match i {
                    TaskInput::Domained { domain, .. } => Ok(*domain),
                    _ => Err(ServerError::WrongTaskKind {
                        expected: "domained",
                    }),
                })
                .collect::<Result<_, _>>()?,
            Domains::Discover {
                embedding,
                extractor,
                clusterer,
            } => {
                let points: Vec<Vec<f32>> = inputs
                    .iter()
                    .map(|i| match i {
                        TaskInput::Described { description, .. } => Ok(extractor
                            .extract(description)
                            .semantic_vector(embedding)
                            .unwrap_or_else(|| vec![0.0; 2 * embedding.dim()])),
                        _ => Err(ServerError::WrongTaskKind {
                            expected: "described",
                        }),
                    })
                    .collect::<Result<_, _>>()?;
                let update = if clusterer.is_empty() {
                    clusterer.warm_up(points)
                } else {
                    clusterer.add(points)
                };
                // Fold domain merges into the engine: accumulators are
                // combined and affected tasks re-labeled (paper §4.2,
                // special case 2).
                for event in &update.events {
                    if let DomainEvent::Merged { kept, absorbed } = event {
                        self.engine
                            .merge_domains(DomainId(*kept), DomainId(*absorbed));
                    }
                }
                update.assignments.iter().map(|&d| DomainId(d)).collect()
            }
        };

        let specs: Vec<TaskSpec> = inputs
            .iter()
            .zip(resolved_domains)
            .map(|(input, domain)| {
                let (time, cost) = match input {
                    TaskInput::Described {
                        processing_time,
                        cost,
                        ..
                    }
                    | TaskInput::Domained {
                        processing_time,
                        cost,
                        ..
                    } => (*processing_time, *cost),
                };
                TaskSpec::new(domain, time, cost)
            })
            .collect();
        Ok(self
            .engine
            .register_tasks(&specs)
            .expect("inputs validated above and u32 task id space not exhausted"))
    }

    /// The resolved domain of a registered task.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownTask`] for an unregistered id.
    pub fn domain_of(&self, task: TaskId) -> Result<DomainId, ServerError> {
        self.engine
            .snapshot()
            .tasks()
            .get(&task)
            .map(|t| t.domain)
            .ok_or(ServerError::UnknownTask(task))
    }

    /// Max-quality allocation (§5.1) of the given tasks to `users`, using
    /// the current expertise estimates.
    ///
    /// Unknown task ids are ignored (allocating a subset is the common
    /// case; validate with [`Eta2Server::domain_of`] first if needed).
    pub fn allocate_max_quality(&self, tasks: &[TaskId], users: &[UserProfile]) -> Allocation {
        let _span = eta2_obs::span!("server.allocate_max_quality");
        let snap = self.engine.snapshot();
        let known = tasks
            .iter()
            .filter(|id| snap.tasks().contains_key(*id))
            .count();
        let alloc = snap.allocate_max_quality(tasks, users);
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "allocate_max_quality",
            ok: true,
            detail: format!(
                "{} assignments over {} tasks",
                alloc.assignment_count(),
                known
            ),
        });
        alloc
    }

    /// Min-cost allocation (§5.2): drives `source` through collection
    /// rounds until each task's quality gate is met. Observations collected
    /// by the rounds are *also* ingested into the server's expertise state,
    /// so a follow-up [`Eta2Server::ingest`] is not needed.
    pub fn allocate_min_cost<S: DataSource>(
        &mut self,
        tasks: &[TaskId],
        users: &[UserProfile],
        config: MinCostConfig,
        source: &mut S,
    ) -> MinCostOutcome {
        let _span = eta2_obs::span!("server.allocate_min_cost");
        let snap = self.engine.snapshot();
        let batch: Vec<_> = tasks
            .iter()
            .filter_map(|id| snap.tasks().get(id).copied())
            .collect();
        let outcome =
            MinCostAllocator::new(config).allocate(&batch, users, &snap.expertise_matrix(), source);
        self.engine.submit(&outcome.observations);
        self.engine.tick();
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "allocate_min_cost",
            ok: outcome.all_passed,
            detail: format!(
                "{} rounds, cost {:.3}, all_passed={}",
                outcome.rounds, outcome.total_cost, outcome.all_passed
            ),
        });
        outcome
    }

    /// Ingests collected reports: runs the §4 expertise-aware truth
    /// analysis over the registered tasks they belong to, updates the
    /// decayed expertise, caches and returns the truth estimates.
    ///
    /// Observations for unregistered tasks are ignored.
    ///
    /// # Errors
    ///
    /// [`ServerError::NonFiniteReport`] when any report is NaN or infinite;
    /// the whole batch is rejected and no state changes. (This strict
    /// all-or-nothing contract is the adapter's: `eta2-serve` itself
    /// quarantines the offending reports and keeps the rest.)
    pub fn ingest(&mut self, reports: &ObservationSet) -> Result<BatchOutcome, ServerError> {
        let _span = eta2_obs::span!("server.ingest");
        if let Some((user, task, value)) = reports.first_non_finite() {
            let err = ServerError::NonFiniteReport { user, task, value };
            eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
                op: "ingest",
                ok: false,
                detail: err.to_string(),
            });
            return Err(err);
        }
        self.engine.submit(reports);
        let mut truths = BTreeMap::new();
        let mut iterations = 0;
        let mut converged = true;
        for flush in self.engine.tick() {
            iterations = iterations.max(flush.iterations);
            converged &= flush.converged;
            truths.extend(flush.truths);
        }
        let outcome = BatchOutcome {
            truths,
            iterations,
            converged,
        };
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "ingest",
            ok: outcome.converged,
            detail: format!(
                "{} tasks analysed in {} iterations",
                outcome.truths.len(),
                outcome.iterations
            ),
        });
        Ok(outcome)
    }

    /// Dispatches one wire-shaped [`Request`], including mutating
    /// operations — the in-process twin of sending the same frame to an
    /// `eta2-net` front door. Read-only operations delegate to
    /// [`Eta2Server::query`].
    ///
    /// Semantics are this adapter's, not the engine's: a submit carrying
    /// any non-finite value is rejected atomically (the sharded engine
    /// would quarantine just the offending reports), and registration on
    /// a discovery-mode server is rejected because [`Request::Register`]
    /// carries pre-domained specs.
    pub fn request(&mut self, request: Request) -> Response {
        match request {
            Request::Register { specs } => {
                let inputs = specs
                    .iter()
                    .map(|s| TaskInput::domained(s.domain, s.processing_time, s.cost))
                    .collect();
                match self.register_tasks(inputs) {
                    Ok(ids) => Response::Registered { ids },
                    Err(e) => Response::Error {
                        code: eta2_net::ERR_REGISTER,
                        message: e.to_string(),
                    },
                }
            }
            Request::Submit { reports } => {
                let batch: ObservationSet = reports.iter().copied().collect();
                let snap = self.engine.snapshot();
                let unknown_task = batch
                    .iter()
                    .filter(|o| !snap.tasks().contains_key(&o.task))
                    .count() as u64;
                drop(snap);
                match self.ingest(&batch) {
                    Ok(outcome) => Response::Submitted {
                        accepted: batch.len() as u64 - unknown_task,
                        quarantined: 0,
                        unknown_task,
                        flushes: u64::from(!outcome.truths.is_empty()),
                    },
                    Err(e) => Response::Error {
                        code: eta2_net::ERR_BAD_REQUEST,
                        message: e.to_string(),
                    },
                }
            }
            read_only => self.query(&read_only),
        }
    }

    /// Dispatches one read-only wire-shaped [`Request`] (`Truth`,
    /// `Expertise`, `Allocate`, `Metrics`). Mutating operations are
    /// rejected with a typed error — use [`Eta2Server::request`], which
    /// takes `&mut self`.
    pub fn query(&self, request: &Request) -> Response {
        match request {
            Request::Truth { task } => Response::Truth {
                estimate: self.engine.truth(*task),
            },
            Request::Expertise { user, domain } => {
                let snap = self.engine.snapshot();
                if user.0 as usize >= snap.n_users() {
                    return Response::Error {
                        code: eta2_net::ERR_BAD_REQUEST,
                        message: format!(
                            "{} out of range: server has {} users",
                            user,
                            snap.n_users()
                        ),
                    };
                }
                Response::Expertise {
                    value: snap.expertise(*user, *domain),
                }
            }
            Request::Allocate { tasks, users } => {
                let snap = self.engine.snapshot();
                if let Some(bad) = users.iter().find(|u| u.id.0 as usize >= snap.n_users()) {
                    return Response::Error {
                        code: eta2_net::ERR_BAD_REQUEST,
                        message: format!(
                            "{} out of range: server has {} users",
                            bad.id,
                            snap.n_users()
                        ),
                    };
                }
                let alloc = snap.allocate_max_quality(tasks, users);
                Response::Allocated {
                    assignments: alloc
                        .iter()
                        .map(|(task, assigned)| (task, assigned.to_vec()))
                        .collect(),
                }
            }
            Request::Metrics => Response::Metrics {
                json: eta2_obs::expose_json(),
            },
            Request::Register { .. } | Request::Submit { .. } => Response::Error {
                code: eta2_net::ERR_BAD_REQUEST,
                message: format!(
                    "{} mutates server state; dispatch it through Eta2Server::request",
                    request.op_name()
                ),
            },
            // `Request` is #[non_exhaustive]: reject operations this
            // build predates instead of dropping them.
            #[allow(unreachable_patterns)]
            _ => Response::Error {
                code: eta2_net::ERR_BAD_REQUEST,
                message: "operation not supported by this build".to_string(),
            },
        }
    }

    /// The latest truth estimate for a task, if it has been analysed.
    ///
    /// A thin adapter over [`Eta2Server::query`] — the wire request and
    /// this method answer from the same dispatch path.
    pub fn truth(&self, task: TaskId) -> Option<TruthEstimate> {
        match self.query(&Request::Truth { task }) {
            Response::Truth { estimate } => estimate,
            _ => None,
        }
    }

    /// A snapshot of the current expertise estimates.
    pub fn expertise(&self) -> ExpertiseMatrix {
        self.engine.snapshot().expertise_matrix()
    }

    /// Captures the complete server state as a serializable checkpoint.
    ///
    /// The snapshot holds everything a restart needs — configuration,
    /// expertise accumulators, task table, cached truths, the id counter
    /// and (in discovery mode) the embedding plus clustering state — so
    /// [`Eta2Server::restore`] continues bit-identically to a server that
    /// never stopped.
    pub fn snapshot(&self) -> ServerSnapshot {
        let _span = eta2_obs::span!("server.snapshot");
        let checkpoint = self.engine.checkpoint();
        let snap = ServerSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config,
            expertise: checkpoint.expertise,
            tasks: checkpoint.tasks,
            truths: checkpoint.truths,
            next_task: checkpoint.next_task,
            domains: match &self.domains {
                Domains::Known => DomainsSnapshot::Known,
                Domains::Discover {
                    embedding,
                    clusterer,
                    ..
                } => DomainsSnapshot::Discover {
                    embedding: embedding.clone(),
                    clusterer: clusterer.state(),
                },
            },
        };
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "snapshot",
            ok: true,
            detail: format!("{} tasks, {} truths", snap.tasks.len(), snap.truths.len()),
        });
        snap
    }

    /// Serializes [`Eta2Server::snapshot`] to the versioned JSON checkpoint
    /// format (DESIGN.md §7).
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("snapshot serializes")
    }

    /// Rebuilds a server from a [`ServerSnapshot`] checkpoint.
    pub fn restore(snapshot: ServerSnapshot) -> Self {
        let _span = eta2_obs::span!("server.restore");
        eta2_obs::emit_with(|| eta2_obs::Event::ServerRequest {
            op: "restore",
            ok: true,
            detail: format!(
                "{} tasks, {} truths",
                snapshot.tasks.len(),
                snapshot.truths.len()
            ),
        });
        let engine = ServeEngine::restore(
            Self::engine_config(snapshot.expertise.n_users(), &snapshot.config),
            EngineCheckpoint {
                version: eta2_serve::ENGINE_CHECKPOINT_VERSION,
                expertise: snapshot.expertise,
                tasks: snapshot.tasks,
                truths: snapshot.truths,
                next_task: snapshot.next_task,
                // ServerSnapshot predates pending-residue capture and the
                // 1-shard adapter drains on snapshot, so nothing is lost.
                pending: Vec::new(),
            },
        );
        Eta2Server {
            config: snapshot.config,
            engine,
            domains: match snapshot.domains {
                DomainsSnapshot::Known => Domains::Known,
                DomainsSnapshot::Discover {
                    embedding,
                    clusterer,
                } => Domains::Discover {
                    embedding,
                    extractor: PairWordExtractor::new(),
                    clusterer: DynamicClusterer::from_state(
                        metric as fn(&Vec<f32>, &Vec<f32>) -> f64,
                        clusterer,
                    ),
                },
            },
        }
    }

    /// Decodes a JSON checkpoint (see [`Eta2Server::snapshot_json`]) and
    /// restores from it.
    ///
    /// # Errors
    ///
    /// [`ServerError::BadSnapshot`] when the JSON is corrupt or the
    /// snapshot's `version` is not supported by this build; the underlying
    /// decoder error is on the [`std::error::Error::source`] chain.
    pub fn restore_json(json: &str) -> Result<Self, ServerError> {
        let snapshot: ServerSnapshot =
            serde_json::from_str(json).map_err(|e| ServerError::BadSnapshot {
                context: "decoding server snapshot".to_string(),
                source: Arc::new(e),
            })?;
        Ok(Self::restore(snapshot))
    }
}

/// The snapshot format version written by this build (see
/// [`ServerSnapshot`]).
pub const SNAPSHOT_VERSION: u32 = 1;

fn default_snapshot_version() -> u32 {
    // Checkpoints written before the version field existed (PR 2's format)
    // are identical to version 1 minus the field itself, so a missing
    // version reads as 1.
    1
}

fn checked_snapshot_version<'de, D>(de: D) -> Result<u32, D::Error>
where
    D: serde::Deserializer<'de>,
{
    let v = u32::deserialize(de)?;
    if !(1..=SNAPSHOT_VERSION).contains(&v) {
        return Err(serde::de::Error::custom(format!(
            "unsupported snapshot version {v}; this build reads versions 1..={SNAPSHOT_VERSION}"
        )));
    }
    Ok(v)
}

/// Serializable checkpoint of an [`Eta2Server`] — produced by
/// [`Eta2Server::snapshot`], consumed by [`Eta2Server::restore`].
///
/// Serialized with serde; the JSON form is the checkpoint format documented
/// in DESIGN.md §7. The format is versioned: a `version` field (currently
/// [`SNAPSHOT_VERSION`]) is written with every snapshot, a snapshot with an
/// unknown version fails to deserialize instead of being misread, and a
/// snapshot without the field (written before versioning existed) reads as
/// version 1. Only the pair-word extractor (stateless) and the clustering
/// metric (a function pointer) are rebuilt on restore.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerSnapshot {
    #[serde(
        default = "default_snapshot_version",
        deserialize_with = "checked_snapshot_version"
    )]
    version: u32,
    config: ServerConfig,
    expertise: eta2_core::truth::dynamic::DynamicExpertise,
    tasks: BTreeMap<TaskId, eta2_core::model::Task>,
    truths: BTreeMap<TaskId, TruthEstimate>,
    next_task: u32,
    domains: DomainsSnapshot,
}

impl ServerSnapshot {
    /// The format version this snapshot carries.
    pub fn version(&self) -> u32 {
        self.version
    }
}

/// Serializable mirror of the private [`Domains`] state.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum DomainsSnapshot {
    Known,
    Discover {
        embedding: Embedding,
        clusterer: ClustererState<Vec<f32>>,
    },
}

impl fmt::Debug for Eta2Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Eta2Server")
            .field(
                "mode",
                &match self.domains {
                    Domains::Discover { .. } => "discover",
                    Domains::Known => "known-domains",
                },
            )
            .field("tasks", &self.task_count())
            .field("domains", &self.domain_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eta2_core::model::UserId;
    use eta2_embed::corpus::TopicCorpus;
    use eta2_embed::{SkipGramConfig, SkipGramTrainer};
    use rand::{Rng, SeedableRng};

    fn embedding() -> Embedding {
        let corpus = TopicCorpus::builtin().generate(150, 1);
        SkipGramTrainer::new(SkipGramConfig {
            dim: 16,
            epochs: 2,
            ..SkipGramConfig::default()
        })
        .train_sentences(&corpus)
        .unwrap()
    }

    fn known_server(n_users: usize) -> Eta2Server {
        ServerBuilder::new(n_users).build()
    }

    fn discovering_server(n_users: usize) -> Eta2Server {
        ServerBuilder::new(n_users).embedding(embedding()).build()
    }

    fn users(n: u32, capacity: f64) -> Vec<UserProfile> {
        (0..n)
            .map(|i| UserProfile::new(UserId(i), capacity))
            .collect()
    }

    #[test]
    fn known_domain_lifecycle() {
        let mut server = known_server(3);
        let ids = server
            .register_tasks(vec![
                TaskInput::domained(DomainId(0), 1.0, 1.0),
                TaskInput::domained(DomainId(1), 1.0, 1.0),
            ])
            .unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(server.task_count(), 2);
        assert_eq!(server.domain_count(), 2);
        assert_eq!(server.domain_of(ids[0]).unwrap(), DomainId(0));

        let alloc = server.allocate_max_quality(&ids, &users(3, 5.0));
        assert!(!alloc.is_empty());
        let mut reports = ObservationSet::new();
        for (task, assigned) in alloc.iter() {
            for &u in assigned {
                reports.insert(u, task, 10.0 + u.0 as f64 * 0.01);
            }
        }
        let outcome = server.ingest(&reports).unwrap();
        assert_eq!(outcome.truths.len(), 2);
        assert!(server.truth(ids[0]).is_some());
        assert!(server.truth(TaskId(99)).is_none());
    }

    #[test]
    fn wire_request_surface_matches_typed_methods() {
        let mut server = known_server(3);
        // Register through the wire shape.
        let specs = vec![
            TaskSpec::new(DomainId(0), 1.0, 1.0),
            TaskSpec::new(DomainId(1), 1.0, 1.0),
        ];
        let ids = match server.request(Request::Register { specs }) {
            Response::Registered { ids } => ids,
            other => panic!("register answered {other:?}"),
        };
        assert_eq!(ids.len(), 2);

        // Submit through the wire shape; counts reflect the adapter's
        // atomic-ingest semantics.
        let reports: Vec<_> = (0..3u32)
            .map(|u| eta2_core::model::Observation {
                user: UserId(u),
                task: ids[0],
                value: 10.0 + u as f64 * 0.01,
            })
            .chain(std::iter::once(eta2_core::model::Observation {
                user: UserId(0),
                task: TaskId(999),
                value: 1.0,
            }))
            .collect();
        match server.request(Request::Submit { reports }) {
            Response::Submitted {
                accepted,
                quarantined,
                unknown_task,
                flushes,
            } => {
                assert_eq!(accepted, 3);
                assert_eq!(quarantined, 0);
                assert_eq!(unknown_task, 1);
                assert_eq!(flushes, 1);
            }
            other => panic!("submit answered {other:?}"),
        }

        // truth() is an adapter over query(): both views agree.
        let direct = server.truth(ids[0]).expect("analysed");
        match server.query(&Request::Truth { task: ids[0] }) {
            Response::Truth { estimate } => assert_eq!(estimate, Some(direct)),
            other => panic!("truth answered {other:?}"),
        }

        // Reads reject mutating ops instead of silently dropping them.
        match server.query(&Request::Register { specs: vec![] }) {
            Response::Error { code, .. } => assert_eq!(code, eta2_net::ERR_BAD_REQUEST),
            other => panic!("mutating query answered {other:?}"),
        }

        // Out-of-range expertise reads come back typed, not as a panic.
        match server.query(&Request::Expertise {
            user: UserId(99),
            domain: DomainId(0),
        }) {
            Response::Error { code, .. } => assert_eq!(code, eta2_net::ERR_BAD_REQUEST),
            other => panic!("oob expertise answered {other:?}"),
        }
    }

    #[test]
    fn wire_submit_rejects_non_finite_batch_atomically() {
        let mut server = known_server(2);
        let ids = match server.request(Request::Register {
            specs: vec![TaskSpec::new(DomainId(0), 1.0, 1.0)],
        }) {
            Response::Registered { ids } => ids,
            other => panic!("register answered {other:?}"),
        };
        let reports = vec![
            eta2_core::model::Observation {
                user: UserId(0),
                task: ids[0],
                value: 5.0,
            },
            eta2_core::model::Observation {
                user: UserId(1),
                task: ids[0],
                value: f64::NAN,
            },
        ];
        match server.request(Request::Submit { reports }) {
            Response::Error { code, message } => {
                assert_eq!(code, eta2_net::ERR_BAD_REQUEST);
                assert!(message.contains("non-finite"), "{message}");
            }
            other => panic!("bad submit answered {other:?}"),
        }
        assert!(
            server.truth(ids[0]).is_none(),
            "rejected batch mutated state"
        );
    }

    #[test]
    fn kind_mismatch_rejected() {
        let mut known = known_server(1);
        let err = known
            .register_tasks(vec![TaskInput::described("what is this?", 1.0, 1.0)])
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::WrongTaskKind {
                expected: "domained"
            }
        );

        let mut disco = discovering_server(1);
        let err = disco
            .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, 1.0)])
            .unwrap_err();
        assert_eq!(
            err,
            ServerError::WrongTaskKind {
                expected: "described"
            }
        );
    }

    #[test]
    fn discovery_assigns_same_topic_to_same_domain() {
        let mut server = discovering_server(4);
        let ids = server
            .register_tasks(vec![
                TaskInput::described(
                    "What is the noise level around the municipal building?",
                    1.0,
                    1.0,
                ),
                TaskInput::described(
                    "What is the decibel measurement near the construction street?",
                    1.0,
                    1.0,
                ),
                TaskInput::described("How many parking spots are at the garage?", 1.0, 1.0),
            ])
            .unwrap();
        let d0 = server.domain_of(ids[0]).unwrap();
        let d1 = server.domain_of(ids[1]).unwrap();
        let d2 = server.domain_of(ids[2]).unwrap();
        assert_eq!(d0, d1, "noise tasks split across domains");
        assert_ne!(d0, d2, "noise and parking merged");

        // A later arrival joins the existing noise domain.
        let later = server
            .register_tasks(vec![TaskInput::described(
                "What is the ambient sound volume near the street?",
                1.0,
                1.0,
            )])
            .unwrap();
        assert_eq!(server.domain_of(later[0]).unwrap(), d0);
    }

    #[test]
    fn expertise_learned_over_batches() {
        let mut server = known_server(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let skills = [3.0, 1.0, 1.0, 0.3];
        for _day in 0..3 {
            let ids = server
                .register_tasks(
                    (0..15)
                        .map(|_| TaskInput::domained(DomainId(0), 1.0, 1.0))
                        .collect(),
                )
                .unwrap();
            let mut reports = ObservationSet::new();
            for &id in &ids {
                let truth: f64 = rng.gen_range(0.0..20.0);
                for (i, &u) in skills.iter().enumerate() {
                    let z = eta2_stats::normal::standard_sample(&mut rng);
                    reports.insert(UserId(i as u32), id, truth + z / u);
                }
            }
            server.ingest(&reports).unwrap();
        }
        let ex = server.expertise();
        assert!(
            ex.get(UserId(0), DomainId(0)) > ex.get(UserId(3), DomainId(0)),
            "expertise ordering not learned: {:?}",
            (0..4)
                .map(|i| ex.get(UserId(i), DomainId(0)))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn min_cost_path_ingests_automatically() {
        let mut server = known_server(10);
        let ids = server
            .register_tasks(
                (0..3)
                    .map(|_| TaskInput::domained(DomainId(0), 1.0, 1.0))
                    .collect(),
            )
            .unwrap();
        let mut source = |_u: UserId, _t: &eta2_core::model::Task| 7.0_f64;
        let outcome = server.allocate_min_cost(
            &ids,
            &users(10, 100.0),
            MinCostConfig::default(),
            &mut source,
        );
        assert!(outcome.all_passed);
        // Truths are queryable without a separate ingest.
        for id in ids {
            assert!((server.truth(id).unwrap().mu - 7.0).abs() < 1e-9);
        }
    }

    #[test]
    fn ingest_ignores_unregistered_tasks() {
        let mut server = known_server(2);
        let mut reports = ObservationSet::new();
        reports.insert(UserId(0), TaskId(123), 1.0);
        let outcome = server.ingest(&reports).unwrap();
        assert!(outcome.truths.is_empty());
    }

    #[test]
    fn empty_registration_is_noop() {
        let mut server = known_server(2);
        assert_eq!(server.register_tasks(vec![]).unwrap(), vec![]);
        assert_eq!(server.task_count(), 0);
    }

    #[test]
    fn allocate_ignores_unknown_ids() {
        let server = known_server(2);
        let alloc = server.allocate_max_quality(&[TaskId(5)], &users(2, 5.0));
        assert!(alloc.is_empty());
    }

    #[test]
    fn debug_shows_mode() {
        let server = known_server(2);
        assert!(format!("{server:?}").contains("known-domains"));
    }

    #[test]
    fn register_rejects_bad_numerics_atomically() {
        let mut server = known_server(2);
        let err = server
            .register_tasks(vec![
                TaskInput::domained(DomainId(0), 1.0, 1.0),
                TaskInput::domained(DomainId(0), f64::NAN, 1.0),
            ])
            .unwrap_err();
        assert!(
            matches!(
                err,
                ServerError::InvalidTaskInput {
                    index: 1,
                    field: "processing_time",
                    value,
                } if value.is_nan()
            ),
            "{err:?}"
        );
        assert!(err.to_string().contains("processing_time"));

        let err = server
            .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, -3.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            ServerError::InvalidTaskInput { field: "cost", .. }
        ));

        let err = server
            .register_tasks(vec![TaskInput::domained(DomainId(0), f64::INFINITY, 1.0)])
            .unwrap_err();
        assert!(matches!(
            err,
            ServerError::InvalidTaskInput {
                field: "processing_time",
                ..
            }
        ));

        // Rejection is atomic: the valid head of a bad batch was not kept.
        assert_eq!(server.task_count(), 0);
    }

    #[test]
    fn ingest_rejects_non_finite_reports_without_state_change() {
        let mut server = known_server(2);
        let ids = server
            .register_tasks(vec![TaskInput::domained(DomainId(0), 1.0, 1.0)])
            .unwrap();
        let before = server.expertise();

        let mut reports = ObservationSet::new();
        reports.insert(UserId(0), ids[0], 5.0);
        reports.insert(UserId(1), ids[0], f64::NAN);
        let err = server.ingest(&reports).unwrap_err();
        assert!(matches!(
            err,
            ServerError::NonFiniteReport {
                user: UserId(1),
                ..
            }
        ));
        assert_eq!(server.expertise(), before, "rejected batch mutated state");
        assert!(server.truth(ids[0]).is_none());
    }

    /// Drives `server` through one day of a deterministic workload.
    fn one_day(server: &mut Eta2Server, day: u64) -> Vec<TaskId> {
        let ids = server
            .register_tasks(
                (0..4)
                    .map(|k| TaskInput::domained(DomainId((k % 2) as u32), 1.0, 1.0))
                    .collect(),
            )
            .unwrap();
        let mut reports = ObservationSet::new();
        for (k, &id) in ids.iter().enumerate() {
            for u in 0..3u32 {
                let value = 10.0 + day as f64 + k as f64 * 0.5 + u as f64 * 0.05;
                reports.insert(UserId(u), id, value);
            }
        }
        server.ingest(&reports).unwrap();
        ids
    }

    #[test]
    fn known_domain_checkpoint_restores_bit_identically() {
        // Uninterrupted reference run: four days straight through.
        let mut reference = known_server(3);
        let mut ref_ids = Vec::new();
        for day in 0..4 {
            ref_ids.extend(one_day(&mut reference, day));
        }

        // Interrupted run: two days, checkpoint through JSON, two more.
        let mut first_half = known_server(3);
        for day in 0..2 {
            one_day(&mut first_half, day);
        }
        let json = first_half.snapshot_json();
        drop(first_half);
        let mut restored = Eta2Server::restore_json(&json).unwrap();
        for day in 2..4 {
            one_day(&mut restored, day);
        }

        assert_eq!(restored.task_count(), reference.task_count());
        assert_eq!(restored.expertise(), reference.expertise());
        for &id in &ref_ids {
            assert_eq!(restored.truth(id), reference.truth(id), "{id}");
        }
    }

    #[test]
    fn discovery_checkpoint_keeps_clustering_state() {
        let mut original = discovering_server(4);
        original
            .register_tasks(vec![
                TaskInput::described(
                    "What is the noise level around the municipal building?",
                    1.0,
                    1.0,
                ),
                TaskInput::described("How many parking spots are at the garage?", 1.0, 1.0),
            ])
            .unwrap();

        let json = serde_json::to_string(&original.snapshot()).unwrap();
        let mut restored =
            Eta2Server::restore(serde_json::from_str::<ServerSnapshot>(&json).unwrap());
        assert_eq!(restored.task_count(), original.task_count());
        assert_eq!(restored.domain_count(), original.domain_count());

        // Both servers classify the next arrival identically: the restored
        // clusterer kept its points, domains and reference distance d*.
        let next = TaskInput::described(
            "What is the decibel measurement near the construction street?",
            1.0,
            1.0,
        );
        let a = original.register_tasks(vec![next.clone()]).unwrap();
        let b = restored.register_tasks(vec![next]).unwrap();
        assert_eq!(a, b, "restored server issued different task ids");
        assert_eq!(
            original.domain_of(a[0]).unwrap(),
            restored.domain_of(b[0]).unwrap(),
            "restored server clustered the arrival differently"
        );
    }

    #[test]
    fn snapshot_is_versioned_and_rejects_unknown_versions() {
        let server = known_server(2);
        let json = server.snapshot_json();
        assert!(json.contains("\"version\":1"), "{json}");
        assert_eq!(server.snapshot().version(), SNAPSHOT_VERSION);

        // A pre-versioning checkpoint (no version field) reads as v1.
        let mut value: serde_json::Value = serde_json::from_str(&json).unwrap();
        value.as_object_mut().unwrap().remove("version");
        let legacy: ServerSnapshot = serde_json::from_value(value.clone()).unwrap();
        assert_eq!(legacy.version(), 1);

        // A checkpoint from the future is rejected, not misread.
        value["version"] = serde_json::json!(99);
        let err = serde_json::from_value::<ServerSnapshot>(value).unwrap_err();
        assert!(
            err.to_string().contains("unsupported snapshot version 99"),
            "{err}"
        );
    }

    #[test]
    fn bad_snapshot_error_carries_source_chain() {
        let err = Eta2Server::restore_json("{ not json }").unwrap_err();
        assert!(matches!(err, ServerError::BadSnapshot { .. }), "{err:?}");
        let source = std::error::Error::source(&err).expect("wrapped decoder error");
        assert!(!source.to_string().is_empty());
        assert!(err.to_string().starts_with("decoding server snapshot:"));

        // The version gate surfaces through the same wrapped error.
        let server = known_server(1);
        let mut value: serde_json::Value = serde_json::from_str(&server.snapshot_json()).unwrap();
        value["version"] = serde_json::json!(7);
        let err = Eta2Server::restore_json(&value.to_string()).unwrap_err();
        assert!(
            std::error::Error::source(&err)
                .expect("source")
                .to_string()
                .contains("unsupported snapshot version 7"),
            "{err}"
        );
    }
}
