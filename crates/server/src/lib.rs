//! The ETA² crowdsourcing server as an online library.
//!
//! This crate packages the repetitive loop of the paper's Figure 1 —
//! *identify task expertise → allocate → collect → analyse truth → update
//! expertise* — behind one stateful type, [`Eta2Server`], so the system can
//! be embedded in an application instead of driven by the evaluation
//! simulator:
//!
//! ```
//! use eta2_core::model::{ObservationSet, UserId, UserProfile};
//! use eta2_embed::corpus::TopicCorpus;
//! use eta2_embed::{SkipGramConfig, SkipGramTrainer};
//! use eta2_server::{ServerBuilder, TaskInput};
//!
//! // 1. Train (or load) word embeddings once.
//! let corpus = TopicCorpus::builtin().generate(150, 1);
//! let embedding = SkipGramTrainer::new(SkipGramConfig {
//!     dim: 16,
//!     epochs: 2,
//!     ..SkipGramConfig::default()
//! })
//! .train_sentences(&corpus)?;
//!
//! // 2. Boot a server for 4 registered users. Giving an embedding turns on
//! //    domain discovery; without one, tasks must arrive pre-domained.
//! let mut server = ServerBuilder::new(4).embedding(embedding).build();
//!
//! // 3. Day 1: tasks arrive as plain text.
//! let ids = server.register_tasks(vec![
//!     TaskInput::described("What is the noise level around the municipal building?", 1.0, 1.0),
//!     TaskInput::described("How many parking spots are at the garage?", 1.0, 1.0),
//! ])?;
//!
//! // 4. Allocate to users and collect their reports however you like.
//! let users: Vec<UserProfile> = (0..4).map(|i| UserProfile::new(UserId(i), 8.0)).collect();
//! let allocation = server.allocate_max_quality(&ids, &users);
//! let mut reports = ObservationSet::new();
//! for (task, assigned) in allocation.iter() {
//!     for &u in assigned {
//!         reports.insert(u, task, 42.0); // your collection mechanism here
//!     }
//! }
//!
//! // 5. Ingest: truths come back, expertise is updated for the next day.
//! let outcome = server.ingest(&reports)?;
//! assert_eq!(outcome.truths.len(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`ServerBuilder`]'s one structural choice covers the paper's two dataset
//! situations:
//!
//! * [`ServerBuilder::embedding`] — tasks arrive as natural-language
//!   descriptions; expertise domains are discovered with the pair-word +
//!   dynamic-clustering pipeline (§3). The first registered batch plays the
//!   warm-up role and fixes `d*`.
//! * no embedding — tasks arrive already labeled with a domain (the
//!   synthetic-dataset situation, §6.1.3).
//!
//! Inputs are validated at the boundary (non-finite task numerics and
//! reports are rejected as [`ServerError`]s before any state changes), and
//! the whole server state checkpoints to a serde-serializable, versioned
//! [`ServerSnapshot`] — [`Eta2Server::restore`] resumes exactly where
//! [`Eta2Server::snapshot`] left off, and [`Eta2Server::restore_json`]
//! rejects checkpoints newer than [`SNAPSHOT_VERSION`] instead of
//! misreading them.
//!
//! # Construction and the wire-shaped request surface
//!
//! [`ServerBuilder`] is the only construction path. The 0.1 constructors
//! (`Eta2Server::with_known_domains`, `Eta2Server::discovering`), shipped
//! as deprecated shims through the 0.2 builder transition, are removed:
//! each mapped one-for-one onto
//! `ServerBuilder::new(n).config(cfg)[.embedding(emb)].build()`, and
//! restore still reads `Eta2Server::restore(snap)` (or
//! `ServerBuilder::from_snapshot(snap)`).
//!
//! [`ServerConfig`], [`TaskInput`] and [`ServerError`] are
//! `#[non_exhaustive]`: build the config by mutating
//! `ServerConfig::default()`, build inputs through
//! [`TaskInput::described`] / [`TaskInput::domained`], and give error
//! matches a wildcard arm.
//!
//! Besides the typed methods, the server dispatches `eta2-net`'s
//! wire-shaped [`eta2_net::Request`] / [`eta2_net::Response`] enums
//! directly — [`Eta2Server::request`] for mutating operations,
//! [`Eta2Server::query`] for reads — so an application that outgrows one
//! process keeps its request shapes when it moves behind an
//! `eta2_net::NetServer`. The typed read methods are thin adapters over
//! the same dispatch ([`Eta2Server::truth`] literally matches on
//! `self.query(&Request::Truth { task })`).
//!
//! Since this release [`Eta2Server`] is a thin single-threaded adapter over
//! a one-shard `eta2-serve` engine. The synchronous semantics (ingest
//! returns flushed results, whole-batch validation, checkpointing) are
//! unchanged, with one numeric caveat: an ingest spanning several domains
//! now converges each domain on its own 5 % criterion rather than iterating
//! all domains until the slowest converges, so multi-domain ingests can
//! produce slightly different floats than 0.1 (single-domain ingests are
//! bit-identical). Applications that need concurrent producers with
//! lock-free reads can use `eta2_serve::ServeEngine` directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod server;

pub use server::{
    Eta2Server, ServerBuilder, ServerConfig, ServerError, ServerSnapshot, TaskInput,
    SNAPSHOT_VERSION,
};
