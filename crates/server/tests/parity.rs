//! Proptest parity: sharded, chunked ingest through the serving engine is
//! bit-identical to the sequential `Eta2Server` path.
//!
//! The engine pins each domain to one shard and solves it there; the
//! per-domain decomposition of `DynamicExpertise::ingest_batch` makes any
//! sharding (and any split of a round into submit chunks) produce exactly
//! the floats the single-threaded server produces, as long as the flush
//! boundaries line up with the server's ingest calls.

use eta2_core::model::{DomainId, Observation, ObservationSet, UserId};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use eta2_server::{ServerBuilder, TaskInput};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_chunked_ingest_matches_sequential_server(
        seed in 0u64..1000,
        n_users in 2usize..6,
        n_domains in 1u32..5,
        rounds in 1usize..4,
        n_shards in 1usize..5,
        chunks in 1usize..4,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut server = ServerBuilder::new(n_users).build();
        let mut cfg = ServeConfig::default();
        cfg.n_users = n_users;
        cfg.n_shards = n_shards;
        cfg.batch_capacity = 0; // flush only on tick(), at round boundaries
        cfg.threads = 1;
        let engine = ServeEngine::new(cfg);

        let mut all_ids = Vec::new();
        for _round in 0..rounds {
            let domains: Vec<u32> = (0..rng.gen_range(1..6))
                .map(|_| rng.gen_range(0..n_domains))
                .collect();
            let server_ids = server
                .register_tasks(
                    domains
                        .iter()
                        .map(|&d| TaskInput::domained(DomainId(d), 1.0, 1.0))
                        .collect(),
                )
                .unwrap();
            let engine_ids = engine
                .register_tasks(
                    &domains
                        .iter()
                        .map(|&d| TaskSpec::new(DomainId(d), 1.0, 1.0))
                        .collect::<Vec<_>>(),
                )
                .unwrap();
            prop_assert_eq!(&server_ids, &engine_ids, "task id allocation diverged");

            let mut obs = ObservationSet::new();
            for &id in &server_ids {
                for u in 0..n_users {
                    if rng.gen_bool(0.8) {
                        obs.insert(UserId(u as u32), id, rng.gen_range(-50.0..50.0));
                    }
                }
            }

            // Server: the whole round in one synchronous ingest call.
            let server_outcome = server.ingest(&obs).unwrap();

            // Engine: the same round split into arbitrary submit chunks,
            // then one tick — one flush per shard, same batch boundary.
            let entries: Vec<Observation> = obs.iter().collect();
            for chunk in entries.chunks(entries.len().div_ceil(chunks).max(1)) {
                let part: ObservationSet = chunk.iter().copied().collect();
                let receipt = engine.submit(&part);
                prop_assert_eq!(receipt.accepted, chunk.len());
                prop_assert!(receipt.flushes.is_empty(), "no flush before tick");
            }
            let mut engine_truths = std::collections::BTreeMap::new();
            for flush in engine.tick() {
                engine_truths.extend(flush.truths);
            }
            prop_assert_eq!(&server_outcome.truths, &engine_truths,
                "per-round truths diverged");
            all_ids.extend(server_ids);
        }

        // Cumulative state agrees exactly: cached truths and the full
        // expertise matrix, element by element.
        for &id in &all_ids {
            prop_assert_eq!(server.truth(id), engine.truth(id));
        }
        let matrix = server.expertise();
        let snap = engine.snapshot();
        for d in 0..n_domains {
            for u in 0..n_users {
                let (user, domain) = (UserId(u as u32), DomainId(d));
                prop_assert_eq!(
                    matrix.get(user, domain).to_bits(),
                    snap.expertise(user, domain).to_bits(),
                    "expertise diverged at user {} domain {}", u, d
                );
            }
        }
    }
}
