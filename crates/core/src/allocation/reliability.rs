//! Allocators for the comparison approaches (paper §6.3).
//!
//! The reliability-based methods (Hubs & Authorities, Average·Log,
//! TruthFinder) "greedily allocate tasks to users with high reliability",
//! prioritizing tasks with lower sensing time so high-reliability users can
//! finish as many tasks as possible; the lower-bound Baseline allocates
//! randomly. Both respect the same per-user capacity constraint as ETA².

use crate::allocation::Allocation;
use crate::model::{Task, UserProfile};
use rand::seq::SliceRandom;
use rand::Rng;

/// Greedy reliability-based allocator used with the reliability-inferring
/// baselines.
///
/// Tasks are sorted by ascending processing time; allocation proceeds in
/// passes, each pass giving every task (in that order) one more user — the
/// most reliable user with enough remaining capacity that doesn't already
/// hold the task — until a full pass assigns nothing.
///
/// # Examples
///
/// ```
/// use eta2_core::allocation::ReliabilityGreedyAllocator;
/// use eta2_core::model::{DomainId, Task, TaskId, UserId, UserProfile};
///
/// let tasks = vec![Task::new(TaskId(0), DomainId(0), 1.0, 1.0)];
/// let users = vec![
///     UserProfile::new(UserId(0), 2.0),
///     UserProfile::new(UserId(1), 2.0),
/// ];
/// let reliability = vec![0.5, 2.0];
/// let alloc = ReliabilityGreedyAllocator::new().allocate(&tasks, &users, &reliability);
/// // The reliable user is chosen first.
/// assert_eq!(alloc.users_for(TaskId(0))[0], UserId(1));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityGreedyAllocator {
    _private: (),
}

impl ReliabilityGreedyAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        ReliabilityGreedyAllocator::default()
    }

    /// Allocates `tasks` to `users` by descending `reliability`.
    ///
    /// # Panics
    ///
    /// Panics unless `reliability.len() == users.len()`.
    pub fn allocate(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        reliability: &[f64],
    ) -> Allocation {
        assert_eq!(
            reliability.len(),
            users.len(),
            "one reliability score per user"
        );
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            tasks[a]
                .processing_time
                .total_cmp(&tasks[b].processing_time)
                .then(tasks[a].id.cmp(&tasks[b].id))
        });
        let mut user_order: Vec<usize> = (0..users.len()).collect();
        user_order.sort_by(|&a, &b| {
            reliability[b]
                .total_cmp(&reliability[a])
                .then(users[a].id.cmp(&users[b].id))
        });

        let mut remaining: Vec<f64> = users.iter().map(|u| u.capacity).collect();
        let mut alloc = Allocation::new();
        loop {
            let mut assigned_any = false;
            for &j in &order {
                let t = &tasks[j];
                for &i in &user_order {
                    if remaining[i] >= t.processing_time && !alloc.contains(users[i].id, t.id) {
                        alloc.assign(users[i].id, t.id);
                        remaining[i] -= t.processing_time;
                        assigned_any = true;
                        break;
                    }
                }
            }
            if !assigned_any {
                break;
            }
        }
        alloc
    }
}

/// Random allocator used with the mean Baseline (and during ETA²'s warm-up
/// period, §2.2).
///
/// Proceeds in passes over a shuffled task order, each pass assigning one
/// more random eligible user per task, until nothing can be assigned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomAllocator {
    _private: (),
}

impl RandomAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        RandomAllocator::default()
    }

    /// Allocates randomly, respecting capacities.
    pub fn allocate<R: Rng + ?Sized>(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        rng: &mut R,
    ) -> Allocation {
        let mut remaining: Vec<f64> = users.iter().map(|u| u.capacity).collect();
        let mut alloc = Allocation::new();
        let mut task_order: Vec<usize> = (0..tasks.len()).collect();
        loop {
            task_order.shuffle(rng);
            let mut assigned_any = false;
            for &j in &task_order {
                let t = &tasks[j];
                let eligible: Vec<usize> = (0..users.len())
                    .filter(|&i| {
                        remaining[i] >= t.processing_time && !alloc.contains(users[i].id, t.id)
                    })
                    .collect();
                if let Some(&i) = eligible.as_slice().choose(rng) {
                    alloc.assign(users[i].id, t.id);
                    remaining[i] -= t.processing_time;
                    assigned_any = true;
                }
            }
            if !assigned_any {
                break;
            }
        }
        alloc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DomainId, TaskId, UserId};
    use rand::SeedableRng;

    fn tasks_with_times(times: &[f64]) -> Vec<Task> {
        times
            .iter()
            .enumerate()
            .map(|(j, &t)| Task::new(TaskId(j as u32), DomainId(0), t, 1.0))
            .collect()
    }

    fn users_with_capacity(caps: &[f64]) -> Vec<UserProfile> {
        caps.iter()
            .enumerate()
            .map(|(i, &c)| UserProfile::new(UserId(i as u32), c))
            .collect()
    }

    #[test]
    fn greedy_prefers_reliable_users_and_short_tasks() {
        let tasks = tasks_with_times(&[3.0, 1.0]);
        let users = users_with_capacity(&[1.0, 1.0]);
        // User 1 most reliable but can only fit the short task.
        let alloc = ReliabilityGreedyAllocator::new().allocate(&tasks, &users, &[0.2, 5.0]);
        // Short task (id 1) is considered first and goes to user 1; the
        // second pass adds user 0 (who also still has capacity for it).
        assert_eq!(alloc.users_for(TaskId(1)), &[UserId(1), UserId(0)]);
        // The long task fits nobody (capacity 1 < 3).
        assert!(alloc.users_for(TaskId(0)).is_empty());
    }

    #[test]
    fn greedy_fills_capacity_with_multiple_passes() {
        let tasks = tasks_with_times(&[1.0, 1.0, 1.0]);
        let users = users_with_capacity(&[3.0, 3.0]);
        let alloc = ReliabilityGreedyAllocator::new().allocate(&tasks, &users, &[1.0, 1.0]);
        // 6 capacity-hours, 3 unit tasks × 2 users = all pairs assigned.
        assert_eq!(alloc.assignment_count(), 6);
    }

    #[test]
    fn greedy_respects_capacity() {
        let tasks = tasks_with_times(&[2.0; 10]);
        let users = users_with_capacity(&[5.0]);
        let alloc = ReliabilityGreedyAllocator::new().allocate(&tasks, &users, &[1.0]);
        assert!(alloc.load(UserId(0), &tasks) <= 5.0);
        assert_eq!(alloc.assignment_count(), 2);
    }

    #[test]
    #[should_panic(expected = "one reliability score per user")]
    fn greedy_validates_reliability_length() {
        let tasks = tasks_with_times(&[1.0]);
        let users = users_with_capacity(&[1.0]);
        ReliabilityGreedyAllocator::new().allocate(&tasks, &users, &[1.0, 2.0]);
    }

    #[test]
    fn random_respects_capacity_and_terminates() {
        let tasks = tasks_with_times(&[1.5, 2.5, 0.5, 1.0]);
        let users = users_with_capacity(&[4.0, 3.0, 0.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let alloc = RandomAllocator::new().allocate(&tasks, &users, &mut rng);
        for u in &users {
            assert!(alloc.load(u.id, &tasks) <= u.capacity + 1e-9);
        }
        // Zero-capacity user gets nothing.
        assert!(alloc.tasks_for(UserId(2)).is_empty());
        assert!(!alloc.is_empty());
    }

    #[test]
    fn random_is_seed_deterministic() {
        let tasks = tasks_with_times(&[1.0; 6]);
        let users = users_with_capacity(&[3.0, 3.0, 3.0]);
        let a = RandomAllocator::new().allocate(
            &tasks,
            &users,
            &mut rand::rngs::StdRng::seed_from_u64(7),
        );
        let b = RandomAllocator::new().allocate(
            &tasks,
            &users,
            &mut rand::rngs::StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn random_with_empty_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let alloc = RandomAllocator::new().allocate(&[], &[], &mut rng);
        assert!(alloc.is_empty());
    }
}
