//! Task allocation: max-quality (Algorithm 1, §5.1), min-cost
//! (Algorithm 2, §5.2) and the reliability-based/random allocators used by
//! the comparison approaches.

pub mod max_quality;
pub mod min_cost;
pub mod reliability;

pub use max_quality::{MaxQualityAllocator, MaxQualityConfig};
pub use min_cost::{DataSource, MinCostAllocator, MinCostConfig, MinCostOutcome};
pub use reliability::{RandomAllocator, ReliabilityGreedyAllocator};

use crate::model::{Task, TaskId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An assignment of tasks to users — the decision variables `s_ij` of the
/// paper's optimization problems.
///
/// # Examples
///
/// ```
/// use eta2_core::allocation::Allocation;
/// use eta2_core::model::{TaskId, UserId};
///
/// let mut a = Allocation::new();
/// assert!(a.assign(UserId(0), TaskId(3)));
/// assert!(!a.assign(UserId(0), TaskId(3))); // duplicate
/// assert_eq!(a.users_for(TaskId(3)), &[UserId(0)]);
/// assert_eq!(a.assignment_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Allocation {
    by_task: BTreeMap<TaskId, Vec<UserId>>,
    by_user: BTreeMap<UserId, Vec<TaskId>>,
}

impl Allocation {
    /// Creates an empty allocation.
    pub fn new() -> Self {
        Allocation::default()
    }

    /// Records that `task` is allocated to `user`. Returns `false` (and
    /// changes nothing) if the pair was already assigned.
    pub fn assign(&mut self, user: UserId, task: TaskId) -> bool {
        let users = self.by_task.entry(task).or_default();
        if users.contains(&user) {
            return false;
        }
        users.push(user);
        self.by_user.entry(user).or_default().push(task);
        true
    }

    /// Whether the pair is assigned.
    pub fn contains(&self, user: UserId, task: TaskId) -> bool {
        self.by_task
            .get(&task)
            .is_some_and(|users| users.contains(&user))
    }

    /// Users assigned to `task`, in assignment order (empty if none).
    pub fn users_for(&self, task: TaskId) -> &[UserId] {
        self.by_task.get(&task).map_or(&[], Vec::as_slice)
    }

    /// Tasks assigned to `user`, in assignment order (empty if none).
    pub fn tasks_for(&self, user: UserId) -> &[TaskId] {
        self.by_user.get(&user).map_or(&[], Vec::as_slice)
    }

    /// Total number of `(user, task)` pairs.
    pub fn assignment_count(&self) -> usize {
        self.by_task.values().map(Vec::len).sum()
    }

    /// Whether nothing is assigned.
    pub fn is_empty(&self) -> bool {
        self.by_task.is_empty()
    }

    /// Iterates `(task, users)` in task order.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &[UserId])> + '_ {
        self.by_task.iter().map(|(&t, u)| (t, u.as_slice()))
    }

    /// Total recruiting cost `Σ_ij s_ij · c_j` against the given task list
    /// (the objective of §5.2's Eq. 18).
    ///
    /// Tasks absent from `tasks` contribute nothing.
    pub fn total_cost(&self, tasks: &[Task]) -> f64 {
        tasks
            .iter()
            .map(|t| t.cost * self.users_for(t.id).len() as f64)
            .sum()
    }

    /// Total processing time user `user` spends under this allocation.
    pub fn load(&self, user: UserId, tasks: &[Task]) -> f64 {
        let by_id: BTreeMap<TaskId, f64> =
            tasks.iter().map(|t| (t.id, t.processing_time)).collect();
        self.tasks_for(user)
            .iter()
            .filter_map(|t| by_id.get(t))
            .sum()
    }

    /// Merges `other` into `self`, skipping duplicate pairs.
    pub fn merge(&mut self, other: &Allocation) {
        for (task, users) in other.iter() {
            for &u in users {
                self.assign(u, task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DomainId;

    #[test]
    fn assign_and_lookup() {
        let mut a = Allocation::new();
        assert!(a.is_empty());
        assert!(a.assign(UserId(1), TaskId(0)));
        assert!(a.assign(UserId(2), TaskId(0)));
        assert!(a.assign(UserId(1), TaskId(5)));
        assert!(!a.assign(UserId(1), TaskId(0)));
        assert_eq!(a.users_for(TaskId(0)), &[UserId(1), UserId(2)]);
        assert_eq!(a.tasks_for(UserId(1)), &[TaskId(0), TaskId(5)]);
        assert_eq!(a.users_for(TaskId(9)), &[] as &[UserId]);
        assert!(a.contains(UserId(2), TaskId(0)));
        assert!(!a.contains(UserId(2), TaskId(5)));
        assert_eq!(a.assignment_count(), 3);
    }

    #[test]
    fn cost_and_load() {
        let tasks = vec![
            Task::new(TaskId(0), DomainId(0), 2.0, 1.5),
            Task::new(TaskId(1), DomainId(0), 3.0, 1.0),
        ];
        let mut a = Allocation::new();
        a.assign(UserId(0), TaskId(0));
        a.assign(UserId(1), TaskId(0));
        a.assign(UserId(0), TaskId(1));
        assert_eq!(a.total_cost(&tasks), 2.0 * 1.5 + 1.0);
        assert_eq!(a.load(UserId(0), &tasks), 5.0);
        assert_eq!(a.load(UserId(1), &tasks), 2.0);
        assert_eq!(a.load(UserId(9), &tasks), 0.0);
    }

    #[test]
    fn merge_skips_duplicates() {
        let mut a = Allocation::new();
        a.assign(UserId(0), TaskId(0));
        let mut b = Allocation::new();
        b.assign(UserId(0), TaskId(0));
        b.assign(UserId(1), TaskId(1));
        a.merge(&b);
        assert_eq!(a.assignment_count(), 2);
    }

    #[test]
    fn iter_is_task_ordered() {
        let mut a = Allocation::new();
        a.assign(UserId(0), TaskId(5));
        a.assign(UserId(0), TaskId(1));
        let order: Vec<TaskId> = a.iter().map(|(t, _)| t).collect();
        assert_eq!(order, vec![TaskId(1), TaskId(5)]);
    }
}
