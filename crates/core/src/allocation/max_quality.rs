//! Max-quality task allocation (paper §5.1).
//!
//! The optimization problem (Eq. 14) maximizes
//! `Σ_j [1 − Π_i (1 − p_ij)^{s_ij}]` — the expected number of tasks for
//! which at least one assigned user reports accurately — subject to each
//! user's processing capability, with
//! `p_ij = Φ(ε·u_ij) − Φ(−ε·u_ij)` (Eq. 11). The problem is NP-hard
//! (knapsack reduction), so Algorithm 1 greedily picks the user–task pair of
//! highest *efficiency* — marginal objective gain `p_ij·(1−p_j)` per hour of
//! processing time — maintaining a per-task best-pair cache exactly as the
//! paper describes (`O(K(m+n))` for `K` selected pairs).
//!
//! Because time-normalized greedy can be arbitrarily bad when task durations
//! vary wildly, §5.1.2 adds a second greedy pass that ignores durations and
//! keeps whichever of the two allocations scores higher, recovering the
//! classical ½-approximation for monotone submodular maximization under a
//! knapsack constraint. That pass is always on here (disable it via
//! [`MaxQualityConfig::use_approximation_pass`] for ablations).

use crate::allocation::Allocation;
use crate::model::{ExpertiseMatrix, Task, UserProfile};
use eta2_stats::normal::accuracy_probability;
use serde::{Deserialize, Serialize};

/// Configuration of the max-quality allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxQualityConfig {
    /// Accuracy threshold `ε` of Eq. 11 (the paper fixes 0.1).
    pub epsilon: f64,
    /// Whether to run the duration-agnostic second greedy pass and keep the
    /// better allocation (the ½-approximation step of §5.1.2).
    pub use_approximation_pass: bool,
}

impl Default for MaxQualityConfig {
    fn default() -> Self {
        MaxQualityConfig {
            epsilon: 0.1,
            use_approximation_pass: true,
        }
    }
}

/// The greedy max-quality allocator (Algorithm 1 + §5.1.2's extra pass).
///
/// # Examples
///
/// ```
/// use eta2_core::allocation::MaxQualityAllocator;
/// use eta2_core::model::{DomainId, ExpertiseMatrix, Task, TaskId, UserId, UserProfile};
///
/// let tasks = vec![Task::new(TaskId(0), DomainId(0), 1.0, 1.0)];
/// let users = vec![
///     UserProfile::new(UserId(0), 10.0),
///     UserProfile::new(UserId(1), 10.0),
/// ];
/// let mut ex = ExpertiseMatrix::new(2);
/// ex.set(UserId(0), DomainId(0), 3.0);
/// ex.set(UserId(1), DomainId(0), 0.2);
///
/// let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
/// // Both users fit, but the expert is picked first.
/// assert_eq!(alloc.users_for(TaskId(0))[0], UserId(0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxQualityAllocator {
    config: MaxQualityConfig,
}

impl MaxQualityAllocator {
    /// Creates an allocator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is finite and positive.
    pub fn new(config: MaxQualityConfig) -> Self {
        assert!(
            config.epsilon.is_finite() && config.epsilon > 0.0,
            "epsilon must be finite and > 0, got {}",
            config.epsilon
        );
        MaxQualityAllocator { config }
    }

    /// The allocator configuration.
    pub fn config(&self) -> &MaxQualityConfig {
        &self.config
    }

    /// Allocates `tasks` to `users` given the current expertise estimates.
    pub fn allocate(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        expertise: &ExpertiseMatrix,
    ) -> Allocation {
        let _span = eta2_obs::span!("alloc.greedy");
        let chosen = self.allocate_inner(tasks, users, expertise);
        eta2_obs::emit_with(|| eta2_obs::Event::AllocationOutcome {
            strategy: "max_quality",
            assignments: chosen.assignment_count() as u64,
            total_cost: tasks
                .iter()
                .map(|t| t.cost * chosen.users_for(t.id).len() as f64)
                .sum(),
            rounds: 1,
            all_passed: tasks.iter().all(|t| !chosen.users_for(t.id).is_empty()),
        });
        chosen
    }

    fn allocate_inner(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        expertise: &ExpertiseMatrix,
    ) -> Allocation {
        let timed = greedy(
            tasks,
            users,
            expertise,
            self.config.epsilon,
            EfficiencyKind::PerHour,
            &mut NoBudget,
        );
        if !self.config.use_approximation_pass {
            return timed;
        }
        let untimed = greedy(
            tasks,
            users,
            expertise,
            self.config.epsilon,
            EfficiencyKind::Plain,
            &mut NoBudget,
        );
        let obj_timed = self.objective(tasks, expertise, &timed);
        let obj_untimed = self.objective(tasks, expertise, &untimed);
        if obj_untimed > obj_timed {
            untimed
        } else {
            timed
        }
    }

    /// The objective value `Σ_j [1 − Π_{i assigned}(1 − p_ij)]` (Eq. 12) of
    /// an allocation.
    pub fn objective(
        &self,
        tasks: &[Task],
        expertise: &ExpertiseMatrix,
        allocation: &Allocation,
    ) -> f64 {
        tasks
            .iter()
            .map(|t| {
                let mut q = 1.0;
                for &u in allocation.users_for(t.id) {
                    let p = accuracy_probability(self.config.epsilon, expertise.get(u, t.domain));
                    q *= 1.0 - p;
                }
                1.0 - q
            })
            .sum()
    }
}

/// How a pair's efficiency is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EfficiencyKind {
    /// Marginal gain divided by processing time (Algorithm 1 proper).
    PerHour,
    /// Marginal gain alone (the §5.1.2 approximation pass).
    Plain,
}

/// Budget hook used by the min-cost allocator to cap per-round spending;
/// the max-quality path uses [`NoBudget`].
pub(crate) trait BudgetGate {
    /// Whether assigning a task of cost `cost` is still allowed.
    fn admits(&self, cost: f64) -> bool;
    /// Records that a task of cost `cost` was assigned.
    fn charge(&mut self, cost: f64);
}

/// No budget restriction.
pub(crate) struct NoBudget;

impl BudgetGate for NoBudget {
    fn admits(&self, _cost: f64) -> bool {
        true
    }
    fn charge(&mut self, _cost: f64) {}
}

/// The shared greedy core of Algorithm 1 (and of each min-cost round).
///
/// Maintains, per task, the cached best `(efficiency, user)` pair and a
/// dirty flag; each round selects the global best cached pair, assigns it,
/// and invalidates only the caches the assignment can have changed (the
/// selected task, and every task whose cached best user lost capacity) —
/// the `O(K(m+n))` bookkeeping of §5.1.2.
///
/// `start` carries pre-existing assignments (min-cost rounds accumulate);
/// `remaining` the corresponding leftover capacities.
pub(crate) fn greedy_with_state(
    tasks: &[Task],
    users: &[UserProfile],
    expertise: &ExpertiseMatrix,
    epsilon: f64,
    kind: EfficiencyKind,
    budget: &mut dyn BudgetGate,
    start: &Allocation,
    remaining: &mut [f64],
) -> Allocation {
    let m = tasks.len();
    let n = users.len();
    assert_eq!(remaining.len(), n, "one remaining-capacity slot per user");

    // p[j*n + i] — accuracy probability of user i on task j.
    let mut p = vec![0.0f64; m * n];
    for (j, t) in tasks.iter().enumerate() {
        for (i, u) in users.iter().enumerate() {
            p[j * n + i] = accuracy_probability(epsilon, expertise.get(u.id, t.domain));
        }
    }

    // q[j] = Π (1 − p_ij) over assigned users (so the marginal gain of
    // adding i is p_ij · q_j).
    let mut q = vec![1.0f64; m];
    let mut assigned = vec![false; m * n];
    for (j, t) in tasks.iter().enumerate() {
        for &u in start.users_for(t.id) {
            if let Some(i) = users.iter().position(|up| up.id == u) {
                assigned[j * n + i] = true;
                q[j] *= 1.0 - p[j * n + i];
            }
        }
    }

    let mut out = Allocation::new();
    let mut best: Vec<Option<(f64, usize)>> = vec![None; m];
    let mut dirty = vec![true; m];

    let recompute =
        |j: usize, q: &[f64], assigned: &[bool], remaining: &[f64]| -> Option<(f64, usize)> {
            let t = &tasks[j];
            let mut best: Option<(f64, usize)> = None;
            for i in 0..n {
                if assigned[j * n + i] || remaining[i] < t.processing_time {
                    continue;
                }
                let gain = p[j * n + i] * q[j];
                let eff = match kind {
                    EfficiencyKind::PerHour => gain / t.processing_time,
                    EfficiencyKind::Plain => gain,
                };
                if eff > 0.0 && best.is_none_or(|(b, _)| eff > b) {
                    best = Some((eff, i));
                }
            }
            best
        };

    loop {
        for j in 0..m {
            if dirty[j] {
                best[j] = recompute(j, &q, &assigned, remaining);
                dirty[j] = false;
            }
        }
        // Global best cached pair (ties: lowest task index).
        let Some((j_star, (eff, i_star))) = best
            .iter()
            .enumerate()
            .filter_map(|(j, b)| b.map(|b| (j, b)))
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(b.0.cmp(&a.0)))
        else {
            break;
        };
        if eff <= 0.0 {
            break;
        }
        let t = &tasks[j_star];
        if !budget.admits(t.cost) {
            break;
        }

        budget.charge(t.cost);
        eta2_obs::emit_with(|| eta2_obs::Event::AllocationPick {
            strategy: match kind {
                EfficiencyKind::PerHour => "per_hour",
                EfficiencyKind::Plain => "plain",
            },
            task: t.id.0 as u64,
            user: users[i_star].id.0 as u64,
            efficiency: eff,
        });
        out.assign(users[i_star].id, t.id);
        assigned[j_star * n + i_star] = true;
        q[j_star] *= 1.0 - p[j_star * n + i_star];
        remaining[i_star] -= t.processing_time;

        dirty[j_star] = true;
        for j in 0..m {
            if let Some((_, bi)) = best[j] {
                if bi == i_star {
                    dirty[j] = true;
                }
            }
        }
    }
    out
}

/// Greedy from a blank allocation with fresh capacities.
pub(crate) fn greedy(
    tasks: &[Task],
    users: &[UserProfile],
    expertise: &ExpertiseMatrix,
    epsilon: f64,
    kind: EfficiencyKind,
    budget: &mut dyn BudgetGate,
) -> Allocation {
    let mut remaining: Vec<f64> = users.iter().map(|u| u.capacity).collect();
    greedy_with_state(
        tasks,
        users,
        expertise,
        epsilon,
        kind,
        budget,
        &Allocation::new(),
        &mut remaining,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DomainId, TaskId, UserId};
    use proptest::prelude::*;

    fn uniform_tasks(m: u32, time: f64) -> Vec<Task> {
        (0..m)
            .map(|j| Task::new(TaskId(j), DomainId(0), time, 1.0))
            .collect()
    }

    fn users_with_capacity(caps: &[f64]) -> Vec<UserProfile> {
        caps.iter()
            .enumerate()
            .map(|(i, &c)| UserProfile::new(UserId(i as u32), c))
            .collect()
    }

    #[test]
    fn prefers_high_expertise_users() {
        let tasks = uniform_tasks(1, 1.0);
        let users = users_with_capacity(&[1.0, 1.0, 1.0]);
        let mut ex = ExpertiseMatrix::new(3);
        ex.set(UserId(0), DomainId(0), 0.2);
        ex.set(UserId(1), DomainId(0), 3.0);
        ex.set(UserId(2), DomainId(0), 1.0);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert_eq!(alloc.users_for(TaskId(0))[0], UserId(1));
    }

    #[test]
    fn respects_capacity() {
        // One user with capacity for exactly 2 of 5 unit tasks.
        let tasks = uniform_tasks(5, 1.0);
        let users = users_with_capacity(&[2.0]);
        let ex = ExpertiseMatrix::new(1);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert_eq!(alloc.tasks_for(UserId(0)).len(), 2);
    }

    #[test]
    fn fills_all_capacity_when_tasks_abound() {
        let tasks = uniform_tasks(20, 1.0);
        let users = users_with_capacity(&[3.0, 5.0]);
        let ex = ExpertiseMatrix::new(2);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert_eq!(alloc.assignment_count(), 8);
    }

    #[test]
    fn no_user_fits_long_task() {
        let tasks = vec![Task::new(TaskId(0), DomainId(0), 10.0, 1.0)];
        let users = users_with_capacity(&[5.0, 9.9]);
        let ex = ExpertiseMatrix::new(2);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert!(alloc.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let ex = ExpertiseMatrix::new(0);
        let alloc = MaxQualityAllocator::default().allocate(&[], &[], &ex);
        assert!(alloc.is_empty());
        let ex = ExpertiseMatrix::new(1);
        let alloc = MaxQualityAllocator::default().allocate(&[], &users_with_capacity(&[5.0]), &ex);
        assert!(alloc.is_empty());
    }

    #[test]
    fn efficiency_prefers_short_tasks_at_equal_gain() {
        // Same expertise everywhere; the per-hour efficiency must fill the
        // capacity with the short tasks first.
        let tasks = vec![
            Task::new(TaskId(0), DomainId(0), 4.0, 1.0),
            Task::new(TaskId(1), DomainId(0), 1.0, 1.0),
            Task::new(TaskId(2), DomainId(0), 1.0, 1.0),
        ];
        let users = users_with_capacity(&[2.0]);
        let ex = ExpertiseMatrix::new(1);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        let mut got: Vec<TaskId> = alloc.tasks_for(UserId(0)).to_vec();
        got.sort();
        assert_eq!(got, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn approximation_pass_rescues_pathological_durations() {
        // Classic greedy pathology: a tiny-gain, tiny-duration task has
        // higher per-hour efficiency than a huge-gain task that consumes the
        // whole capacity; taking the tiny task first locks the big one out.
        let tasks = vec![
            Task::new(TaskId(0), DomainId(0), 0.1, 1.0), // low value, high eff
            Task::new(TaskId(1), DomainId(1), 10.0, 1.0), // high value
        ];
        let users = users_with_capacity(&[10.0]);
        let mut ex = ExpertiseMatrix::new(1);
        ex.set(UserId(0), DomainId(0), 0.3);
        ex.set(UserId(0), DomainId(1), 10.0);

        let with = MaxQualityAllocator::default();
        let without = MaxQualityAllocator::new(MaxQualityConfig {
            use_approximation_pass: false,
            ..MaxQualityConfig::default()
        });
        let a_with = with.allocate(&tasks, &users, &ex);
        let a_without = without.allocate(&tasks, &users, &ex);
        let obj_with = with.objective(&tasks, &ex, &a_with);
        let obj_without = with.objective(&tasks, &ex, &a_without);
        assert!(
            obj_with >= obj_without,
            "approximation pass made things worse: {obj_with} < {obj_without}"
        );
        // The high-value task must be covered when the pass is on.
        assert!(!a_with.users_for(TaskId(1)).is_empty());
    }

    #[test]
    fn objective_matches_manual_computation() {
        let tasks = uniform_tasks(1, 1.0);
        let mut ex = ExpertiseMatrix::new(2);
        ex.set(UserId(0), DomainId(0), 2.0);
        ex.set(UserId(1), DomainId(0), 1.0);
        let mut alloc = Allocation::new();
        alloc.assign(UserId(0), TaskId(0));
        alloc.assign(UserId(1), TaskId(0));
        let a = MaxQualityAllocator::default();
        let p0 = eta2_stats::normal::accuracy_probability(0.1, 2.0);
        let p1 = eta2_stats::normal::accuracy_probability(0.1, 1.0);
        let want = 1.0 - (1.0 - p0) * (1.0 - p1);
        assert!((a.objective(&tasks, &ex, &alloc) - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon must be finite and > 0")]
    fn epsilon_validated() {
        MaxQualityAllocator::new(MaxQualityConfig {
            epsilon: 0.0,
            ..MaxQualityConfig::default()
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Capacity constraints hold on arbitrary instances, and no pair is
        /// assigned twice.
        #[test]
        fn capacity_never_exceeded(
            seed in 0u64..1000,
            m in 1u32..15,
            n in 1usize..6,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks: Vec<Task> = (0..m)
                .map(|j| Task::new(
                    TaskId(j),
                    DomainId(rng.gen_range(0..3)),
                    rng.gen_range(0.5..4.0),
                    1.0,
                ))
                .collect();
            let users: Vec<UserProfile> = (0..n)
                .map(|i| UserProfile::new(UserId(i as u32), rng.gen_range(0.0..12.0)))
                .collect();
            let mut ex = ExpertiseMatrix::new(n);
            for i in 0..n {
                for d in 0..3 {
                    ex.set(UserId(i as u32), DomainId(d), rng.gen_range(0.05..3.0));
                }
            }
            let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
            for u in &users {
                prop_assert!(alloc.load(u.id, &tasks) <= u.capacity + 1e-9);
            }
            // No duplicates: by_task lists are sets.
            for (t, us) in alloc.iter() {
                let mut v = us.to_vec();
                v.sort();
                v.dedup();
                prop_assert_eq!(v.len(), alloc.users_for(t).len());
            }
        }

        /// The greedy solution is never worse than assigning nothing and
        /// never better than the trivial upper bound (every task certain).
        #[test]
        fn objective_bounds(seed in 0u64..300) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = rng.gen_range(1..10u32);
            let tasks: Vec<Task> = (0..m)
                .map(|j| Task::new(TaskId(j), DomainId(0), rng.gen_range(0.5..2.0), 1.0))
                .collect();
            let users: Vec<UserProfile> = (0..4)
                .map(|i| UserProfile::new(UserId(i), rng.gen_range(1.0..8.0)))
                .collect();
            let mut ex = ExpertiseMatrix::new(4);
            for i in 0..4 {
                ex.set(UserId(i), DomainId(0), rng.gen_range(0.1..3.0));
            }
            let a = MaxQualityAllocator::default();
            let alloc = a.allocate(&tasks, &users, &ex);
            let obj = a.objective(&tasks, &ex, &alloc);
            prop_assert!(obj >= 0.0);
            prop_assert!(obj <= m as f64 + 1e-9);
        }
    }
}
