//! Max-quality task allocation (paper §5.1).
//!
//! The optimization problem (Eq. 14) maximizes
//! `Σ_j [1 − Π_i (1 − p_ij)^{s_ij}]` — the expected number of tasks for
//! which at least one assigned user reports accurately — subject to each
//! user's processing capability, with
//! `p_ij = Φ(ε·u_ij) − Φ(−ε·u_ij)` (Eq. 11). The problem is NP-hard
//! (knapsack reduction), so Algorithm 1 greedily picks the user–task pair of
//! highest *efficiency* — marginal objective gain `p_ij·(1−p_j)` per hour of
//! processing time — maintaining a per-task best-pair cache exactly as the
//! paper describes (`O(K(m+n))` for `K` selected pairs). The selection
//! itself runs as a *lazy* greedy over a binary heap of possibly-stale
//! efficiency scores (see `greedy_with_state`): staleness only ever
//! over-estimates, so a fresh score at the top of the heap is the exact
//! argmax, and the pick sequence is identical to the full rescan — which is
//! preserved as `greedy_with_state_scan` and parity-tested.
//!
//! Because time-normalized greedy can be arbitrarily bad when task durations
//! vary wildly, §5.1.2 adds a second greedy pass that ignores durations and
//! keeps whichever of the two allocations scores higher, recovering the
//! classical ½-approximation for monotone submodular maximization under a
//! knapsack constraint. That pass is always on here (disable it via
//! [`MaxQualityConfig::use_approximation_pass`] for ablations).

use crate::allocation::Allocation;
use crate::model::{ExpertiseMatrix, Task, UserProfile};
use eta2_stats::normal::accuracy_probability;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Configuration of the max-quality allocator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaxQualityConfig {
    /// Accuracy threshold `ε` of Eq. 11 (the paper fixes 0.1).
    pub epsilon: f64,
    /// Whether to run the duration-agnostic second greedy pass and keep the
    /// better allocation (the ½-approximation step of §5.1.2).
    pub use_approximation_pass: bool,
}

impl Default for MaxQualityConfig {
    fn default() -> Self {
        MaxQualityConfig {
            epsilon: 0.1,
            use_approximation_pass: true,
        }
    }
}

/// The greedy max-quality allocator (Algorithm 1 + §5.1.2's extra pass).
///
/// # Examples
///
/// ```
/// use eta2_core::allocation::MaxQualityAllocator;
/// use eta2_core::model::{DomainId, ExpertiseMatrix, Task, TaskId, UserId, UserProfile};
///
/// let tasks = vec![Task::new(TaskId(0), DomainId(0), 1.0, 1.0)];
/// let users = vec![
///     UserProfile::new(UserId(0), 10.0),
///     UserProfile::new(UserId(1), 10.0),
/// ];
/// let mut ex = ExpertiseMatrix::new(2);
/// ex.set(UserId(0), DomainId(0), 3.0);
/// ex.set(UserId(1), DomainId(0), 0.2);
///
/// let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
/// // Both users fit, but the expert is picked first.
/// assert_eq!(alloc.users_for(TaskId(0))[0], UserId(0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxQualityAllocator {
    config: MaxQualityConfig,
}

impl MaxQualityAllocator {
    /// Creates an allocator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is finite and positive.
    pub fn new(config: MaxQualityConfig) -> Self {
        assert!(
            config.epsilon.is_finite() && config.epsilon > 0.0,
            "epsilon must be finite and > 0, got {}",
            config.epsilon
        );
        MaxQualityAllocator { config }
    }

    /// The allocator configuration.
    pub fn config(&self) -> &MaxQualityConfig {
        &self.config
    }

    /// Allocates `tasks` to `users` given the current expertise estimates.
    pub fn allocate(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        expertise: &ExpertiseMatrix,
    ) -> Allocation {
        let _span = eta2_obs::span!("alloc.greedy");
        let chosen = self.allocate_inner(tasks, users, expertise);
        if eta2_check::enabled() {
            // Differential invariant: the lazy-greedy heap must reproduce
            // the frozen full-scan oracle's allocation exactly. Costs a
            // full second solve, so it only runs under the check gate.
            let oracle = self.allocate_scan(tasks, users, expertise);
            eta2_check::invariant!(
                "alloc.heap_matches_scan",
                chosen == oracle,
                "lazy-greedy diverged from scan oracle: {} vs {} assignments",
                chosen.assignment_count(),
                oracle.assignment_count()
            );
        }
        eta2_obs::emit_with(|| eta2_obs::Event::AllocationOutcome {
            strategy: "max_quality",
            assignments: chosen.assignment_count() as u64,
            total_cost: tasks
                .iter()
                .map(|t| t.cost * chosen.users_for(t.id).len() as f64)
                .sum(),
            rounds: 1,
            all_passed: tasks.iter().all(|t| !chosen.users_for(t.id).is_empty()),
        });
        chosen
    }

    fn allocate_inner(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        expertise: &ExpertiseMatrix,
    ) -> Allocation {
        let timed = greedy(
            tasks,
            users,
            expertise,
            self.config.epsilon,
            EfficiencyKind::PerHour,
            &mut NoBudget,
        );
        if !self.config.use_approximation_pass {
            return timed;
        }
        let untimed = greedy(
            tasks,
            users,
            expertise,
            self.config.epsilon,
            EfficiencyKind::Plain,
            &mut NoBudget,
        );
        let obj_timed = self.objective(tasks, expertise, &timed);
        let obj_untimed = self.objective(tasks, expertise, &untimed);
        if obj_untimed > obj_timed {
            untimed
        } else {
            timed
        }
    }

    /// Full-scan twin of [`MaxQualityAllocator::allocate`]: the same two
    /// greedy passes driven by the pre-optimization scan core. Kept for
    /// parity testing and as the "before" timing of the `perf_suite`
    /// benchmark; not part of the supported API.
    #[doc(hidden)]
    pub fn allocate_scan(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        expertise: &ExpertiseMatrix,
    ) -> Allocation {
        let timed = greedy_scan(
            tasks,
            users,
            expertise,
            self.config.epsilon,
            EfficiencyKind::PerHour,
            &mut NoBudget,
        );
        if !self.config.use_approximation_pass {
            return timed;
        }
        let untimed = greedy_scan(
            tasks,
            users,
            expertise,
            self.config.epsilon,
            EfficiencyKind::Plain,
            &mut NoBudget,
        );
        let obj_timed = self.objective(tasks, expertise, &timed);
        let obj_untimed = self.objective(tasks, expertise, &untimed);
        if obj_untimed > obj_timed {
            untimed
        } else {
            timed
        }
    }

    /// The objective value `Σ_j [1 − Π_{i assigned}(1 − p_ij)]` (Eq. 12) of
    /// an allocation.
    pub fn objective(
        &self,
        tasks: &[Task],
        expertise: &ExpertiseMatrix,
        allocation: &Allocation,
    ) -> f64 {
        tasks
            .iter()
            .map(|t| {
                let mut q = 1.0;
                for &u in allocation.users_for(t.id) {
                    let p = accuracy_probability(self.config.epsilon, expertise.get(u, t.domain));
                    q *= 1.0 - p;
                }
                1.0 - q
            })
            .sum()
    }
}

/// How a pair's efficiency is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EfficiencyKind {
    /// Marginal gain divided by processing time (Algorithm 1 proper).
    PerHour,
    /// Marginal gain alone (the §5.1.2 approximation pass).
    Plain,
}

/// Budget hook used by the min-cost allocator to cap per-round spending;
/// the max-quality path uses [`NoBudget`].
pub(crate) trait BudgetGate {
    /// Whether assigning a task of cost `cost` is still allowed.
    fn admits(&self, cost: f64) -> bool;
    /// Records that a task of cost `cost` was assigned.
    fn charge(&mut self, cost: f64);
}

/// No budget restriction.
pub(crate) struct NoBudget;

impl BudgetGate for NoBudget {
    fn admits(&self, _cost: f64) -> bool {
        true
    }
    fn charge(&mut self, _cost: f64) {}
}

/// Precomputed instance state shared by the lazy-greedy and full-scan
/// cores: accuracy probabilities, per-task residual quality, and the
/// assignment bitmap. Both cores build it identically, so the pick
/// sequences they produce can be compared bit-for-bit.
struct GreedyState {
    n: usize,
    /// p[j*n + i] — accuracy probability of user i on task j.
    p: Vec<f64>,
    /// q[j] = Π (1 − p_ij) over assigned users (so the marginal gain of
    /// adding i is p_ij · q_j).
    q: Vec<f64>,
    assigned: Vec<bool>,
}

impl GreedyState {
    fn build(
        tasks: &[Task],
        users: &[UserProfile],
        expertise: &ExpertiseMatrix,
        epsilon: f64,
        start: &Allocation,
    ) -> GreedyState {
        let m = tasks.len();
        let n = users.len();
        let mut p = vec![0.0f64; m * n];
        for (j, t) in tasks.iter().enumerate() {
            for (i, u) in users.iter().enumerate() {
                p[j * n + i] = accuracy_probability(epsilon, expertise.get(u.id, t.domain));
            }
        }
        let mut q = vec![1.0f64; m];
        let mut assigned = vec![false; m * n];
        for (j, t) in tasks.iter().enumerate() {
            for &u in start.users_for(t.id) {
                if let Some(i) = users.iter().position(|up| up.id == u) {
                    assigned[j * n + i] = true;
                    q[j] *= 1.0 - p[j * n + i];
                }
            }
        }
        GreedyState { n, p, q, assigned }
    }

    /// Best feasible `(efficiency, user)` pair for task `j` under the
    /// current state, or `None` when no user can improve it. Strictly
    /// greater wins, so ties resolve to the lowest user index.
    fn best_pair(
        &self,
        j: usize,
        tasks: &[Task],
        remaining: &[f64],
        kind: EfficiencyKind,
    ) -> Option<(f64, usize)> {
        let t = &tasks[j];
        let n = self.n;
        let mut best: Option<(f64, usize)> = None;
        for i in 0..n {
            if self.assigned[j * n + i] || remaining[i] < t.processing_time {
                continue;
            }
            let gain = self.p[j * n + i] * self.q[j];
            let eff = match kind {
                EfficiencyKind::PerHour => gain / t.processing_time,
                EfficiencyKind::Plain => gain,
            };
            if eff > 0.0 && best.is_none_or(|(b, _)| eff > b) {
                best = Some((eff, i));
            }
        }
        best
    }

    /// Commits the pick `(j_star, i_star, eff)`: emits the trace event and
    /// updates the allocation, bitmap, residual quality and capacity.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        tasks: &[Task],
        users: &[UserProfile],
        kind: EfficiencyKind,
        out: &mut Allocation,
        remaining: &mut [f64],
        j_star: usize,
        i_star: usize,
        eff: f64,
    ) {
        let t = &tasks[j_star];
        eta2_check::invariant!(
            "alloc.pick_within_capacity",
            remaining[i_star] >= t.processing_time && t.processing_time.is_finite(),
            "user {:?} has {}h left but was picked for {:?} needing {}h",
            users[i_star].id,
            remaining[i_star],
            t.id,
            t.processing_time
        );
        eta2_obs::emit_with(|| eta2_obs::Event::AllocationPick {
            strategy: match kind {
                EfficiencyKind::PerHour => "per_hour",
                EfficiencyKind::Plain => "plain",
            },
            task: t.id.0 as u64,
            user: users[i_star].id.0 as u64,
            efficiency: eff,
        });
        out.assign(users[i_star].id, t.id);
        self.assigned[j_star * self.n + i_star] = true;
        self.q[j_star] *= 1.0 - self.p[j_star * self.n + i_star];
        remaining[i_star] -= t.processing_time;
    }
}

/// Max-heap entry for the lazy-greedy queue: highest efficiency first,
/// ties broken toward the lowest task index — exactly the order the
/// full-scan core's `max_by` resolves.
struct Entry {
    eff: f64,
    j: usize,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.eff.total_cmp(&other.eff).then(other.j.cmp(&self.j))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

/// The shared greedy core of Algorithm 1 (and of each min-cost round),
/// as a *lazy* greedy: a binary heap of per-task efficiency scores that
/// are allowed to go stale, re-evaluated only when they surface at the
/// top.
///
/// Laziness is sound because efficiencies are monotone non-increasing as
/// the allocation grows — `q_j` only shrinks, capacities only shrink, and
/// assignments are never undone — so a stale heap entry is a valid upper
/// bound on its task's true efficiency, and a *fresh* entry at the top of
/// the heap is the exact global argmax. The pick sequence (including
/// tie-breaks: highest efficiency, then lowest task index, then lowest
/// user index) is identical to the full-scan core preserved in
/// [`greedy_with_state_scan`], which the `heap_matches_scan_bitwise`
/// property test asserts.
///
/// `start` carries pre-existing assignments (min-cost rounds accumulate);
/// `remaining` the corresponding leftover capacities.
pub(crate) fn greedy_with_state(
    tasks: &[Task],
    users: &[UserProfile],
    expertise: &ExpertiseMatrix,
    epsilon: f64,
    kind: EfficiencyKind,
    budget: &mut dyn BudgetGate,
    start: &Allocation,
    remaining: &mut [f64],
) -> Allocation {
    let m = tasks.len();
    let n = users.len();
    assert_eq!(remaining.len(), n, "one remaining-capacity slot per user");

    let mut state = GreedyState::build(tasks, users, expertise, epsilon, start);
    let mut out = Allocation::new();

    // Invariant: at most one heap entry per task; an entry's eff is an
    // upper bound on the task's true efficiency, exact when !stale[j].
    // Once a task's best_pair returns None it is permanently infeasible
    // (feasibility only shrinks) and never re-enters the heap.
    let mut current: Vec<Option<(f64, usize)>> = vec![None; m];
    let mut stale = vec![false; m];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(m);
    for j in 0..m {
        current[j] = state.best_pair(j, tasks, remaining, kind);
        if let Some((eff, _)) = current[j] {
            heap.push(Entry { eff, j });
        }
    }

    while let Some(top) = heap.pop() {
        let j_star = top.j;
        if stale[j_star] {
            stale[j_star] = false;
            current[j_star] = state.best_pair(j_star, tasks, remaining, kind);
            if let Some((eff, _)) = current[j_star] {
                heap.push(Entry { eff, j: j_star });
            }
            continue;
        }
        let Some((eff, i_star)) = current[j_star] else {
            continue;
        };
        let t = &tasks[j_star];
        if !budget.admits(t.cost) {
            break;
        }
        budget.charge(t.cost);
        state.commit(tasks, users, kind, &mut out, remaining, j_star, i_star, eff);

        // The picked task's efficiency changed (its q dropped and the user
        // is spent for it); any task whose cached best user just lost
        // capacity may have too. Their old entries stay in the heap as
        // upper bounds; re-push only the picked task's (its entry was
        // consumed by this pop).
        stale[j_star] = true;
        heap.push(Entry { eff, j: j_star });
        for j in 0..m {
            if let Some((_, bi)) = current[j] {
                if bi == i_star {
                    stale[j] = true;
                }
            }
        }
    }
    out
}

/// The pre-optimization full-scan greedy core: recompute every dirty
/// task's best pair each round, then scan all cached pairs for the global
/// maximum. Kept verbatim as the parity oracle for [`greedy_with_state`]
/// and as the "before" timing of the `perf_suite` benchmark.
pub(crate) fn greedy_with_state_scan(
    tasks: &[Task],
    users: &[UserProfile],
    expertise: &ExpertiseMatrix,
    epsilon: f64,
    kind: EfficiencyKind,
    budget: &mut dyn BudgetGate,
    start: &Allocation,
    remaining: &mut [f64],
) -> Allocation {
    let m = tasks.len();
    let n = users.len();
    assert_eq!(remaining.len(), n, "one remaining-capacity slot per user");

    let mut state = GreedyState::build(tasks, users, expertise, epsilon, start);
    let mut out = Allocation::new();
    let mut best: Vec<Option<(f64, usize)>> = vec![None; m];
    let mut dirty = vec![true; m];

    loop {
        for j in 0..m {
            if dirty[j] {
                best[j] = state.best_pair(j, tasks, remaining, kind);
                dirty[j] = false;
            }
        }
        // Global best cached pair (ties: lowest task index).
        let Some((j_star, (eff, i_star))) = best
            .iter()
            .enumerate()
            .filter_map(|(j, b)| b.map(|b| (j, b)))
            .max_by(|a, b| a.1 .0.total_cmp(&b.1 .0).then(b.0.cmp(&a.0)))
        else {
            break;
        };
        if eff <= 0.0 {
            break;
        }
        if !budget.admits(tasks[j_star].cost) {
            break;
        }
        budget.charge(tasks[j_star].cost);
        state.commit(tasks, users, kind, &mut out, remaining, j_star, i_star, eff);

        dirty[j_star] = true;
        for j in 0..m {
            if let Some((_, bi)) = best[j] {
                if bi == i_star {
                    dirty[j] = true;
                }
            }
        }
    }
    out
}

/// Greedy from a blank allocation with fresh capacities.
pub(crate) fn greedy(
    tasks: &[Task],
    users: &[UserProfile],
    expertise: &ExpertiseMatrix,
    epsilon: f64,
    kind: EfficiencyKind,
    budget: &mut dyn BudgetGate,
) -> Allocation {
    let mut remaining: Vec<f64> = users.iter().map(|u| u.capacity).collect();
    greedy_with_state(
        tasks,
        users,
        expertise,
        epsilon,
        kind,
        budget,
        &Allocation::new(),
        &mut remaining,
    )
}

/// Full-scan greedy from a blank allocation with fresh capacities.
pub(crate) fn greedy_scan(
    tasks: &[Task],
    users: &[UserProfile],
    expertise: &ExpertiseMatrix,
    epsilon: f64,
    kind: EfficiencyKind,
    budget: &mut dyn BudgetGate,
) -> Allocation {
    let mut remaining: Vec<f64> = users.iter().map(|u| u.capacity).collect();
    greedy_with_state_scan(
        tasks,
        users,
        expertise,
        epsilon,
        kind,
        budget,
        &Allocation::new(),
        &mut remaining,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DomainId, TaskId, UserId};
    use proptest::prelude::*;

    fn uniform_tasks(m: u32, time: f64) -> Vec<Task> {
        (0..m)
            .map(|j| Task::new(TaskId(j), DomainId(0), time, 1.0))
            .collect()
    }

    fn users_with_capacity(caps: &[f64]) -> Vec<UserProfile> {
        caps.iter()
            .enumerate()
            .map(|(i, &c)| UserProfile::new(UserId(i as u32), c))
            .collect()
    }

    /// Random allocation instance shared by the parity property tests.
    fn random_instance(
        seed: u64,
        m: u32,
        n: usize,
    ) -> (Vec<Task>, Vec<UserProfile>, ExpertiseMatrix) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..m)
            .map(|j| {
                Task::new(
                    TaskId(j),
                    DomainId(rng.gen_range(0..3)),
                    rng.gen_range(0.2..4.0),
                    rng.gen_range(0.5..2.0),
                )
            })
            .collect();
        let users: Vec<UserProfile> = (0..n)
            .map(|i| UserProfile::new(UserId(i as u32), rng.gen_range(0.0..12.0)))
            .collect();
        let mut ex = ExpertiseMatrix::new(n);
        for i in 0..n {
            for d in 0..3 {
                ex.set(UserId(i as u32), DomainId(d), rng.gen_range(0.05..3.0));
            }
        }
        (tasks, users, ex)
    }

    #[test]
    fn prefers_high_expertise_users() {
        let tasks = uniform_tasks(1, 1.0);
        let users = users_with_capacity(&[1.0, 1.0, 1.0]);
        let mut ex = ExpertiseMatrix::new(3);
        ex.set(UserId(0), DomainId(0), 0.2);
        ex.set(UserId(1), DomainId(0), 3.0);
        ex.set(UserId(2), DomainId(0), 1.0);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert_eq!(alloc.users_for(TaskId(0))[0], UserId(1));
    }

    #[test]
    fn respects_capacity() {
        // One user with capacity for exactly 2 of 5 unit tasks.
        let tasks = uniform_tasks(5, 1.0);
        let users = users_with_capacity(&[2.0]);
        let ex = ExpertiseMatrix::new(1);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert_eq!(alloc.tasks_for(UserId(0)).len(), 2);
    }

    #[test]
    fn fills_all_capacity_when_tasks_abound() {
        let tasks = uniform_tasks(20, 1.0);
        let users = users_with_capacity(&[3.0, 5.0]);
        let ex = ExpertiseMatrix::new(2);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert_eq!(alloc.assignment_count(), 8);
    }

    #[test]
    fn no_user_fits_long_task() {
        let tasks = vec![Task::new(TaskId(0), DomainId(0), 10.0, 1.0)];
        let users = users_with_capacity(&[5.0, 9.9]);
        let ex = ExpertiseMatrix::new(2);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        assert!(alloc.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let ex = ExpertiseMatrix::new(0);
        let alloc = MaxQualityAllocator::default().allocate(&[], &[], &ex);
        assert!(alloc.is_empty());
        let ex = ExpertiseMatrix::new(1);
        let alloc = MaxQualityAllocator::default().allocate(&[], &users_with_capacity(&[5.0]), &ex);
        assert!(alloc.is_empty());
    }

    #[test]
    fn efficiency_prefers_short_tasks_at_equal_gain() {
        // Same expertise everywhere; the per-hour efficiency must fill the
        // capacity with the short tasks first.
        let tasks = vec![
            Task::new(TaskId(0), DomainId(0), 4.0, 1.0),
            Task::new(TaskId(1), DomainId(0), 1.0, 1.0),
            Task::new(TaskId(2), DomainId(0), 1.0, 1.0),
        ];
        let users = users_with_capacity(&[2.0]);
        let ex = ExpertiseMatrix::new(1);
        let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
        let mut got: Vec<TaskId> = alloc.tasks_for(UserId(0)).to_vec();
        got.sort();
        assert_eq!(got, vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn approximation_pass_rescues_pathological_durations() {
        // Classic greedy pathology: a tiny-gain, tiny-duration task has
        // higher per-hour efficiency than a huge-gain task that consumes the
        // whole capacity; taking the tiny task first locks the big one out.
        let tasks = vec![
            Task::new(TaskId(0), DomainId(0), 0.1, 1.0), // low value, high eff
            Task::new(TaskId(1), DomainId(1), 10.0, 1.0), // high value
        ];
        let users = users_with_capacity(&[10.0]);
        let mut ex = ExpertiseMatrix::new(1);
        ex.set(UserId(0), DomainId(0), 0.3);
        ex.set(UserId(0), DomainId(1), 10.0);

        let with = MaxQualityAllocator::default();
        let without = MaxQualityAllocator::new(MaxQualityConfig {
            use_approximation_pass: false,
            ..MaxQualityConfig::default()
        });
        let a_with = with.allocate(&tasks, &users, &ex);
        let a_without = without.allocate(&tasks, &users, &ex);
        let obj_with = with.objective(&tasks, &ex, &a_with);
        let obj_without = with.objective(&tasks, &ex, &a_without);
        assert!(
            obj_with >= obj_without,
            "approximation pass made things worse: {obj_with} < {obj_without}"
        );
        // The high-value task must be covered when the pass is on.
        assert!(!a_with.users_for(TaskId(1)).is_empty());
    }

    #[test]
    fn objective_matches_manual_computation() {
        let tasks = uniform_tasks(1, 1.0);
        let mut ex = ExpertiseMatrix::new(2);
        ex.set(UserId(0), DomainId(0), 2.0);
        ex.set(UserId(1), DomainId(0), 1.0);
        let mut alloc = Allocation::new();
        alloc.assign(UserId(0), TaskId(0));
        alloc.assign(UserId(1), TaskId(0));
        let a = MaxQualityAllocator::default();
        let p0 = eta2_stats::normal::accuracy_probability(0.1, 2.0);
        let p1 = eta2_stats::normal::accuracy_probability(0.1, 1.0);
        let want = 1.0 - (1.0 - p0) * (1.0 - p1);
        assert!((a.objective(&tasks, &ex, &alloc) - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "epsilon must be finite and > 0")]
    fn epsilon_validated() {
        MaxQualityAllocator::new(MaxQualityConfig {
            epsilon: 0.0,
            ..MaxQualityConfig::default()
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Capacity constraints hold on arbitrary instances, and no pair is
        /// assigned twice.
        #[test]
        fn capacity_never_exceeded(
            seed in 0u64..1000,
            m in 1u32..15,
            n in 1usize..6,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks: Vec<Task> = (0..m)
                .map(|j| Task::new(
                    TaskId(j),
                    DomainId(rng.gen_range(0..3)),
                    rng.gen_range(0.5..4.0),
                    1.0,
                ))
                .collect();
            let users: Vec<UserProfile> = (0..n)
                .map(|i| UserProfile::new(UserId(i as u32), rng.gen_range(0.0..12.0)))
                .collect();
            let mut ex = ExpertiseMatrix::new(n);
            for i in 0..n {
                for d in 0..3 {
                    ex.set(UserId(i as u32), DomainId(d), rng.gen_range(0.05..3.0));
                }
            }
            let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
            for u in &users {
                prop_assert!(alloc.load(u.id, &tasks) <= u.capacity + 1e-9);
            }
            // No duplicates: by_task lists are sets.
            for (t, us) in alloc.iter() {
                let mut v = us.to_vec();
                v.sort();
                v.dedup();
                prop_assert_eq!(v.len(), alloc.users_for(t).len());
            }
        }

        /// The lazy-greedy heap core reproduces the full-scan core's pick
        /// sequence exactly: identical allocations and bitwise-identical
        /// leftover capacities, under both efficiency kinds, with and
        /// without a budget cap, from blank and accumulated states.
        #[test]
        fn heap_matches_scan_bitwise(
            seed in 0u64..600,
            m in 1u32..16,
            n in 1usize..7,
            plain in proptest::bool::ANY,
            cap in proptest::option::of(0.0f64..8.0),
        ) {
            struct CapBudget {
                left: f64,
            }
            impl BudgetGate for CapBudget {
                fn admits(&self, _cost: f64) -> bool {
                    self.left > 0.0
                }
                fn charge(&mut self, cost: f64) {
                    self.left -= cost;
                }
            }
            let (tasks, users, ex) = random_instance(seed, m, n);
            let kind = if plain {
                EfficiencyKind::Plain
            } else {
                EfficiencyKind::PerHour
            };
            let mut rem_a: Vec<f64> = users.iter().map(|u| u.capacity).collect();
            let mut rem_b = rem_a.clone();
            let start = Allocation::new();
            let (a, b) = match cap {
                Some(c) => (
                    greedy_with_state(&tasks, &users, &ex, 0.1, kind,
                        &mut CapBudget { left: c }, &start, &mut rem_a),
                    greedy_with_state_scan(&tasks, &users, &ex, 0.1, kind,
                        &mut CapBudget { left: c }, &start, &mut rem_b),
                ),
                None => (
                    greedy_with_state(&tasks, &users, &ex, 0.1, kind,
                        &mut NoBudget, &start, &mut rem_a),
                    greedy_with_state_scan(&tasks, &users, &ex, 0.1, kind,
                        &mut NoBudget, &start, &mut rem_b),
                ),
            };
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&rem_a, &rem_b);
            // Second round from the accumulated state, as min-cost rounds
            // run it.
            let a2 = greedy_with_state(
                &tasks, &users, &ex, 0.1, kind, &mut NoBudget, &a, &mut rem_a,
            );
            let b2 = greedy_with_state_scan(
                &tasks, &users, &ex, 0.1, kind, &mut NoBudget, &b, &mut rem_b,
            );
            prop_assert_eq!(a2, b2);
            prop_assert_eq!(rem_a, rem_b);
        }

        /// The full allocator (both passes plus the objective comparison)
        /// is unchanged by the heap rewrite.
        #[test]
        fn allocator_heap_matches_scan(seed in 0u64..300, m in 1u32..14, n in 1usize..6) {
            let (tasks, users, ex) = random_instance(seed, m, n);
            let alloc = MaxQualityAllocator::default();
            prop_assert_eq!(
                alloc.allocate(&tasks, &users, &ex),
                alloc.allocate_scan(&tasks, &users, &ex)
            );
        }

        /// The greedy solution is never worse than assigning nothing and
        /// never better than the trivial upper bound (every task certain).
        #[test]
        fn objective_bounds(seed in 0u64..300) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let m = rng.gen_range(1..10u32);
            let tasks: Vec<Task> = (0..m)
                .map(|j| Task::new(TaskId(j), DomainId(0), rng.gen_range(0.5..2.0), 1.0))
                .collect();
            let users: Vec<UserProfile> = (0..4)
                .map(|i| UserProfile::new(UserId(i), rng.gen_range(1.0..8.0)))
                .collect();
            let mut ex = ExpertiseMatrix::new(4);
            for i in 0..4 {
                ex.set(UserId(i), DomainId(0), rng.gen_range(0.1..3.0));
            }
            let a = MaxQualityAllocator::default();
            let alloc = a.allocate(&tasks, &users, &ex);
            let obj = a.objective(&tasks, &ex, &alloc);
            prop_assert!(obj >= 0.0);
            prop_assert!(obj <= m as f64 + 1e-9);
        }
    }
}
