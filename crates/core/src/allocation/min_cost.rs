//! Min-cost task allocation — ETA²-mc (paper §5.2, Algorithm 2).
//!
//! The goal is to spend as little recruiting cost `Σ s_ij·c_j` as possible
//! while guaranteeing, with confidence `1 − α`, that every task's estimation
//! error stays below `ε̄` (Eq. 19/20). Because data quality cannot be
//! evaluated before data exists, allocation proceeds in rounds:
//!
//! 1. allocate greedily (the Algorithm 1 core) until the round's cost cap
//!    `c°` or the users' capacities are hit;
//! 2. collect data from the newly assigned pairs;
//! 3. run expertise-aware MLE over *all* data collected so far;
//! 4. for every task, accept if the `1 − α` confidence interval of the MLE
//!    truth (Eq. 24, via asymptotic normality) is narrower than `2·ε̄·σ_j`;
//! 5. repeat with the still-failing tasks.
//!
//! The gate in step 4 reduces to `Σ_{i assigned} (u_i^{d_j})² ≥ (Z_{α/2}/ε̄)²`
//! (see `eta2_stats::ci`).

use crate::allocation::max_quality::{greedy_with_state, BudgetGate, EfficiencyKind};
use crate::allocation::Allocation;
use crate::model::{ExpertiseMatrix, ObservationSet, Task, TaskId, UserProfile};
use crate::truth::mle::{ExpertiseAwareMle, MleConfig, TruthEstimate};
use eta2_stats::ci::required_expertise_sq;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Where the allocator gets data from once it has assigned a pair.
///
/// In the simulator this samples the observation model; in a deployment it
/// would query the actual mobile user.
pub trait DataSource {
    /// The value user `user` reports for `task`, or `None` when the user
    /// drops out (never reports). The assignment stays made — and charged —
    /// either way; a dropped task is retried with other users in later
    /// rounds, up to [`MinCostConfig::max_retries`].
    fn try_collect(&mut self, user: crate::model::UserId, task: &Task) -> Option<f64>;
}

impl<F: FnMut(crate::model::UserId, &Task) -> f64> DataSource for F {
    fn try_collect(&mut self, user: crate::model::UserId, task: &Task) -> Option<f64> {
        Some(self(user, task))
    }
}

/// Configuration of ETA²-mc.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinCostConfig {
    /// Accuracy threshold `ε` for the allocation efficiency (Eq. 11).
    pub epsilon: f64,
    /// Maximum tolerated normalized estimation error `ε̄` (the paper uses
    /// 0.5 in §6.4.3).
    pub max_error: f64,
    /// Significance level `α` of the quality confidence (0.05 → 95 %).
    pub confidence_alpha: f64,
    /// Per-round cost cap `c°`.
    pub round_budget: f64,
    /// Safety cap on rounds.
    pub max_rounds: usize,
    /// How many rounds a task whose assignment produced no usable report
    /// (dropout) is re-queued before being abandoned.
    #[serde(default = "default_max_retries")]
    pub max_retries: usize,
    /// MLE settings for the per-round truth analysis.
    pub mle: MleConfig,
}

fn default_max_retries() -> usize {
    3
}

impl Default for MinCostConfig {
    fn default() -> Self {
        MinCostConfig {
            epsilon: 0.1,
            max_error: 0.5,
            confidence_alpha: 0.05,
            round_budget: 50.0,
            max_rounds: 100,
            max_retries: default_max_retries(),
            mle: MleConfig::default(),
        }
    }
}

/// Everything a min-cost run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCostOutcome {
    /// The cumulative allocation over all rounds.
    pub allocation: Allocation,
    /// Every observation collected.
    pub observations: ObservationSet,
    /// Final truth estimates.
    pub truths: BTreeMap<TaskId, TruthEstimate>,
    /// Final expertise estimates.
    pub expertise: ExpertiseMatrix,
    /// Total recruiting cost spent.
    pub total_cost: f64,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether every task met the quality gate.
    pub all_passed: bool,
    /// Tasks given up on after `max_retries` dropout-wasted rounds.
    pub abandoned: Vec<TaskId>,
    /// MLE iterations per round (feeds the paper's Fig. 12).
    pub mle_iterations: Vec<usize>,
}

/// Budget gate capping one round's spending at `c°`.
struct RoundBudget {
    spent: f64,
    cap: f64,
}

impl BudgetGate for RoundBudget {
    fn admits(&self, _cost: f64) -> bool {
        // Algorithm 2 line 4 keeps allocating while the spent cost is below
        // c°, so the final assignment may touch the cap.
        self.spent < self.cap
    }
    fn charge(&mut self, cost: f64) {
        // Every charge must have been admitted: pre-charge spend strictly
        // below c° (the round can cross the cap by at most the final
        // task's cost, never by an unadmitted charge).
        eta2_check::invariant!(
            "alloc.round_budget",
            self.spent < self.cap && cost.is_finite() && cost >= 0.0,
            "charged {cost} with {} already spent of cap {}",
            self.spent,
            self.cap
        );
        self.spent += cost;
    }
}

/// The iterative min-cost allocator (Algorithm 2).
///
/// # Examples
///
/// ```
/// use eta2_core::allocation::{MinCostAllocator, MinCostConfig};
/// use eta2_core::model::{DomainId, ExpertiseMatrix, Task, TaskId, UserId, UserProfile};
///
/// let tasks = vec![Task::new(TaskId(0), DomainId(0), 1.0, 1.0)];
/// let users: Vec<UserProfile> = (0..8)
///     .map(|i| UserProfile::new(UserId(i), 10.0))
///     .collect();
/// let prior = ExpertiseMatrix::new(8);
/// // A perfectly clean data source: quality is reached quickly.
/// let mut source = |_u: UserId, _t: &Task| 42.0_f64;
/// let outcome = MinCostAllocator::default()
///     .allocate(&tasks, &users, &prior, &mut source);
/// assert!(outcome.all_passed);
/// assert!((outcome.truths[&TaskId(0)].mu - 42.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCostAllocator {
    config: MinCostConfig,
}

impl MinCostAllocator {
    /// Creates an allocator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon`, `max_error` and `round_budget` are finite
    /// and positive and `0 < confidence_alpha < 1`.
    pub fn new(config: MinCostConfig) -> Self {
        assert!(
            config.epsilon.is_finite() && config.epsilon > 0.0,
            "epsilon must be finite and > 0"
        );
        assert!(
            config.max_error.is_finite() && config.max_error > 0.0,
            "max_error must be finite and > 0"
        );
        assert!(
            config.confidence_alpha > 0.0 && config.confidence_alpha < 1.0,
            "confidence_alpha must be in (0, 1)"
        );
        assert!(
            config.round_budget.is_finite() && config.round_budget > 0.0,
            "round_budget must be finite and > 0"
        );
        MinCostAllocator { config }
    }

    /// The allocator configuration.
    pub fn config(&self) -> &MinCostConfig {
        &self.config
    }

    /// Runs the iterative allocation against `source`, starting from the
    /// expertise `prior` (typically the output of previous time steps).
    pub fn allocate<S: DataSource>(
        &self,
        tasks: &[Task],
        users: &[UserProfile],
        prior: &ExpertiseMatrix,
        source: &mut S,
    ) -> MinCostOutcome {
        let _span = eta2_obs::span!("alloc.min_cost");
        let cfg = &self.config;
        let need_sq =
            required_expertise_sq(cfg.confidence_alpha, cfg.max_error).expect("validated in new()");
        let mle = ExpertiseAwareMle::new(cfg.mle);

        let mut allocation = Allocation::new();
        let mut observations = ObservationSet::new();
        let mut remaining: Vec<f64> = users.iter().map(|u| u.capacity).collect();
        let mut expertise = prior.clone();
        let mut truths: BTreeMap<TaskId, TruthEstimate> = BTreeMap::new();
        let mut mle_iterations = Vec::new();

        let mut pending: Vec<Task> = tasks.to_vec();
        let mut rounds = 0;
        let mut retry_counts: BTreeMap<TaskId, usize> = BTreeMap::new();
        let mut abandoned: Vec<TaskId> = Vec::new();

        while !pending.is_empty() && rounds < cfg.max_rounds {
            rounds += 1;

            // (1) One budget-capped greedy round over the pending tasks,
            // continuing from the cumulative assignment and capacities.
            let mut budget = RoundBudget {
                spent: 0.0,
                cap: cfg.round_budget,
            };
            let round_alloc = greedy_with_state(
                &pending,
                users,
                &expertise,
                cfg.epsilon,
                EfficiencyKind::PerHour,
                &mut budget,
                &allocation,
                &mut remaining,
            );
            if round_alloc.is_empty() {
                break; // capacity exhausted: quality unreachable for the rest
            }

            // (2) Collect data for the new pairs. A dropped-out user's
            // assignment stays made (and charged), but contributes no
            // observation; the affected task is retried below.
            let by_id: BTreeMap<TaskId, &Task> = pending.iter().map(|t| (t.id, t)).collect();
            let mut dropped_this_round: Vec<TaskId> = Vec::new();
            for (task, users_assigned) in round_alloc.iter() {
                let t = by_id[&task];
                for &u in users_assigned {
                    match source.try_collect(u, t) {
                        Some(x) => {
                            observations.insert(u, task, x);
                        }
                        None => dropped_this_round.push(task),
                    }
                }
            }
            allocation.merge(&round_alloc);

            // (3) Expertise-aware truth analysis on everything so far,
            // warm-started from the current expertise.
            let result = mle.estimate_with_initial(tasks, &observations, expertise.clone());
            mle_iterations.push(result.iterations);
            expertise = result.expertise;
            truths = result.truths;

            // (4) Quality gate per pending task:
            // Σ_{i reported} u_ij² ≥ (Z_{α/2}/ε̄)².
            // Summed over the users whose finite observation actually
            // arrived — identical to summing over the assignment when no
            // user drops out or corrupts their report.
            pending.retain(|t| {
                let sq: f64 = observations
                    .for_task(t.id)
                    .map(|obs| {
                        obs.iter()
                            .filter(|&&(_, x)| x.is_finite())
                            .map(|&(u, _)| expertise.get(u, t.domain).powi(2))
                            .sum()
                    })
                    .unwrap_or(0.0);
                sq < need_sq // keep (still pending) if not yet enough
            });

            // (5) Dropout retries: a task that lost a report this round and
            // is still below the gate gets a bounded number of extra
            // chances; past the cap it is abandoned so one unreachable
            // task cannot burn the whole budget.
            dropped_this_round.sort_unstable();
            dropped_this_round.dedup();
            for task in dropped_this_round {
                if !pending.iter().any(|t| t.id == task) {
                    continue;
                }
                let attempts = retry_counts.entry(task).or_insert(0);
                *attempts += 1;
                if *attempts > cfg.max_retries {
                    pending.retain(|t| t.id != task);
                    abandoned.push(task);
                } else {
                    eta2_obs::counter("alloc.retry", 1);
                    let attempt = *attempts as u64;
                    eta2_obs::emit_with(|| eta2_obs::Event::AllocationRetry {
                        strategy: "min_cost",
                        task: task.0 as u64,
                        attempt,
                    });
                }
            }

            eta2_obs::emit_with(|| eta2_obs::Event::AllocationRound {
                round: rounds as u64,
                assigned: round_alloc.assignment_count() as u64,
                round_cost: budget.spent,
                pending_after: pending.len() as u64,
            });
        }

        let total_cost = allocation.total_cost(tasks);
        let all_passed = pending.is_empty() && abandoned.is_empty();
        eta2_obs::emit_with(|| eta2_obs::Event::AllocationOutcome {
            strategy: "min_cost",
            assignments: allocation.assignment_count() as u64,
            total_cost,
            rounds: rounds as u64,
            all_passed,
        });
        MinCostOutcome {
            all_passed,
            allocation,
            observations,
            truths,
            expertise,
            total_cost,
            rounds,
            abandoned,
            mle_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::MaxQualityAllocator;
    use crate::model::{DomainId, UserId};
    use rand::Rng;
    use rand::SeedableRng;

    /// A data source backed by the paper's observation model with known
    /// per-user expertise.
    struct ModelSource {
        rng: rand::rngs::StdRng,
        truths: BTreeMap<TaskId, f64>,
        sigma: f64,
        user_expertise: Vec<f64>,
    }

    impl DataSource for ModelSource {
        fn try_collect(&mut self, user: UserId, task: &Task) -> Option<f64> {
            let mu = self.truths[&task.id];
            let u = self.user_expertise[user.0 as usize];
            Some(mu + eta2_stats::normal::standard_sample(&mut self.rng) * self.sigma / u)
        }
    }

    fn world(
        m: u32,
        user_expertise: Vec<f64>,
        seed: u64,
    ) -> (Vec<Task>, Vec<UserProfile>, ModelSource) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..m)
            .map(|j| Task::new(TaskId(j), DomainId(0), 1.0, 1.0))
            .collect();
        let users: Vec<UserProfile> = (0..user_expertise.len())
            .map(|i| UserProfile::new(UserId(i as u32), 1e6))
            .collect();
        let truths: BTreeMap<TaskId, f64> = tasks
            .iter()
            .map(|t| (t.id, rng.gen_range(0.0..20.0)))
            .collect();
        let source = ModelSource {
            rng,
            truths,
            sigma: 1.0,
            user_expertise,
        };
        (tasks, users, source)
    }

    #[test]
    fn reaches_quality_and_stops() {
        // With leave-one-out scoring, homogeneous users learn u ≈ (k−1)/k,
        // so the ε̄ = 0.5 gate needs ≈ (Z/ε̄)²/u² ≈ 19 users per task.
        let (tasks, users, mut source) = world(5, vec![2.0; 25], 1);
        let out = MinCostAllocator::default().allocate(
            &tasks,
            &users,
            &ExpertiseMatrix::new(25),
            &mut source,
        );
        assert!(out.all_passed);
        assert!(out.rounds >= 1);
        assert!(out.total_cost > 0.0);
        assert_eq!(out.truths.len(), 5);
    }

    #[test]
    fn cheaper_than_max_quality() {
        // Max-quality fills every user's capacity; min-cost must stop at
        // the quality gate and spend less.
        let (tasks, _, mut source) = world(10, vec![2.0; 30], 2);
        let users: Vec<UserProfile> = (0..30).map(|i| UserProfile::new(UserId(i), 10.0)).collect();
        let prior = ExpertiseMatrix::new(30);

        // ε̄ = 0.7 so the gate needs well under the 30 available users.
        let mc = MinCostAllocator::new(MinCostConfig {
            max_error: 0.7,
            ..MinCostConfig::default()
        })
        .allocate(&tasks, &users, &prior, &mut source);
        let mq = MaxQualityAllocator::default().allocate(&tasks, &users, &prior);
        assert!(mc.all_passed);
        assert!(
            mc.total_cost < mq.total_cost(&tasks),
            "min-cost {} not below max-quality {}",
            mc.total_cost,
            mq.total_cost(&tasks)
        );
    }

    #[test]
    fn respects_round_budget_pacing() {
        let (tasks, users, mut source) = world(20, vec![0.8; 30], 3);
        let cfg = MinCostConfig {
            round_budget: 5.0,
            ..MinCostConfig::default()
        };
        let out = MinCostAllocator::new(cfg).allocate(
            &tasks,
            &users,
            &ExpertiseMatrix::new(30),
            &mut source,
        );
        // With c° = 5 and unit costs, rounds must be numerous: at most
        // 5 + 1 assignments fit per round (one may cross the cap).
        assert!(
            out.rounds >= (out.allocation.assignment_count() / 6).max(1),
            "rounds = {}, assignments = {}",
            out.rounds,
            out.allocation.assignment_count()
        );
    }

    #[test]
    fn capacity_exhaustion_reports_failure() {
        // Users so weak and few that the gate is unreachable.
        let (tasks, _, mut source) = world(3, vec![0.05, 0.05], 4);
        let users = vec![
            UserProfile::new(UserId(0), 2.0),
            UserProfile::new(UserId(1), 2.0),
        ];
        let out = MinCostAllocator::default().allocate(
            &tasks,
            &users,
            &ExpertiseMatrix::new(2),
            &mut source,
        );
        assert!(!out.all_passed);
        // Every user is saturated.
        for u in &users {
            assert!(out.allocation.load(u.id, &tasks) <= u.capacity + 1e-9);
        }
    }

    #[test]
    fn no_pair_collected_twice() {
        let (tasks, users, mut source) = world(8, vec![1.0; 12], 5);
        let out = MinCostAllocator::default().allocate(
            &tasks,
            &users,
            &ExpertiseMatrix::new(12),
            &mut source,
        );
        // Each (user, task) appears at most once in the allocation, and
        // observations mirror the allocation exactly.
        assert_eq!(out.observations.len(), out.allocation.assignment_count());
    }

    #[test]
    fn tighter_quality_costs_more() {
        // Uniform true expertise: the scale indeterminacy of the model
        // makes the learned u ≈ 1, so the gate needs ≈ (Z/ε̄)² users per
        // task. 50 users cover both error levels tested here.
        let mk = |max_error: f64, seed: u64| {
            let (tasks, users, mut source) = world(10, vec![1.5; 50], seed);
            MinCostAllocator::new(MinCostConfig {
                max_error,
                ..MinCostConfig::default()
            })
            .allocate(&tasks, &users, &ExpertiseMatrix::new(50), &mut source)
        };
        let loose = mk(0.8, 6);
        let tight = mk(0.35, 6);
        assert!(loose.all_passed && tight.all_passed);
        assert!(
            tight.total_cost > loose.total_cost,
            "tight {} vs loose {}",
            tight.total_cost,
            loose.total_cost
        );
    }

    #[test]
    fn dropped_task_is_retried_and_recovers() {
        // The first report for task 0 is dropped; everything afterwards
        // arrives. The allocator must re-queue the task and still pass.
        struct FirstDropSource {
            inner: ModelSource,
            dropped_once: bool,
        }
        impl DataSource for FirstDropSource {
            fn try_collect(&mut self, user: UserId, task: &Task) -> Option<f64> {
                if task.id == TaskId(0) && !self.dropped_once {
                    self.dropped_once = true;
                    return None;
                }
                self.inner.try_collect(user, task)
            }
        }
        let (tasks, users, inner) = world(3, vec![2.0; 25], 7);
        let mut source = FirstDropSource {
            inner,
            dropped_once: false,
        };
        let out = MinCostAllocator::default().allocate(
            &tasks,
            &users,
            &ExpertiseMatrix::new(25),
            &mut source,
        );
        assert!(source.dropped_once);
        assert!(out.all_passed, "abandoned: {:?}", out.abandoned);
        assert!(out.abandoned.is_empty());
        // The dropped pair was charged but yielded no observation.
        assert_eq!(
            out.observations.len() + 1,
            out.allocation.assignment_count()
        );
    }

    #[test]
    fn fully_dropped_task_is_abandoned_after_capped_retries() {
        // Nobody ever reports for task 1: after max_retries wasted rounds
        // the allocator must give up on it, while the others still pass.
        struct BlackHoleSource {
            inner: ModelSource,
        }
        impl DataSource for BlackHoleSource {
            fn try_collect(&mut self, user: UserId, task: &Task) -> Option<f64> {
                if task.id == TaskId(1) {
                    return None;
                }
                self.inner.try_collect(user, task)
            }
        }
        let (tasks, users, inner) = world(3, vec![2.0; 40], 8);
        let mut source = BlackHoleSource { inner };
        let cfg = MinCostConfig {
            max_retries: 2,
            ..MinCostConfig::default()
        };
        let out = MinCostAllocator::new(cfg).allocate(
            &tasks,
            &users,
            &ExpertiseMatrix::new(40),
            &mut source,
        );
        assert!(!out.all_passed);
        assert_eq!(out.abandoned, vec![TaskId(1)]);
        assert!(out.truths.contains_key(&TaskId(0)));
        assert!(out.truths.contains_key(&TaskId(2)));
        assert!(!out.observations.tasks().any(|t| t == TaskId(1)));
    }

    #[test]
    fn config_validation() {
        for cfg in [
            MinCostConfig {
                epsilon: 0.0,
                ..MinCostConfig::default()
            },
            MinCostConfig {
                max_error: -1.0,
                ..MinCostConfig::default()
            },
            MinCostConfig {
                confidence_alpha: 1.0,
                ..MinCostConfig::default()
            },
            MinCostConfig {
                round_budget: 0.0,
                ..MinCostConfig::default()
            },
        ] {
            assert!(
                std::panic::catch_unwind(|| MinCostAllocator::new(cfg)).is_err(),
                "{cfg:?} accepted"
            );
        }
    }

    #[test]
    fn empty_task_list_passes_trivially() {
        let users = vec![UserProfile::new(UserId(0), 5.0)];
        let mut source = |_: UserId, _: &Task| 0.0;
        let out = MinCostAllocator::default().allocate(
            &[],
            &users,
            &ExpertiseMatrix::new(1),
            &mut source,
        );
        assert!(out.all_passed);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.total_cost, 0.0);
    }
}
