//! Domain model: users, tasks, observations and the expertise matrix
//! (paper §2.4).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a mobile user (a data source).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

/// Identifier of a sensing task.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

/// Identifier of an expertise domain (a task cluster).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DomainId(pub u32);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "user#{}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain#{}", self.0)
    }
}

/// A sensing task as the allocator sees it: its expertise domain, the
/// processing time `t_j` it costs a user, and the payment `c_j` it costs the
/// server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task identifier.
    pub id: TaskId,
    /// The expertise domain `d_j` the task belongs to.
    pub domain: DomainId,
    /// Processing time `t_j` (hours) a user spends completing it.
    pub processing_time: f64,
    /// Recruiting cost `c_j` paid per user assigned to it.
    pub cost: f64,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `processing_time` is not finite and positive, or `cost` is
    /// negative or non-finite.
    pub fn new(id: TaskId, domain: DomainId, processing_time: f64, cost: f64) -> Self {
        assert!(
            processing_time.is_finite() && processing_time > 0.0,
            "processing_time must be finite and > 0, got {processing_time}"
        );
        assert!(
            cost.is_finite() && cost >= 0.0,
            "cost must be finite and >= 0, got {cost}"
        );
        Task {
            id,
            domain,
            processing_time,
            cost,
        }
    }
}

/// A user as the allocator sees it: identifier and processing capability
/// `T_i` (available hours per time step).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// User identifier.
    pub id: UserId,
    /// Processing capability `T_i` in hours per time step.
    pub capacity: f64,
}

impl UserProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is negative or non-finite.
    pub fn new(id: UserId, capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "capacity must be finite and >= 0, got {capacity}"
        );
        UserProfile { id, capacity }
    }
}

/// One collected data point: user `i` reported `value` for task `j`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Reporting user.
    pub user: UserId,
    /// Observed task.
    pub task: TaskId,
    /// Reported (numerical) value `x_ij`.
    pub value: f64,
}

/// A set of observations indexed by task — the `X = {X₁ … X_m}` of §4.1.
///
/// At most one observation per `(user, task)` pair is kept; re-inserting
/// replaces and returns the previous value.
///
/// # Examples
///
/// ```
/// use eta2_core::model::{ObservationSet, TaskId, UserId};
///
/// let mut obs = ObservationSet::new();
/// assert_eq!(obs.insert(UserId(1), TaskId(0), 3.5), None);
/// assert_eq!(obs.insert(UserId(1), TaskId(0), 4.0), Some(3.5));
/// assert_eq!(obs.for_task(TaskId(0)).unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ObservationSet {
    by_task: BTreeMap<TaskId, BTreeMap<UserId, f64>>,
}

impl ObservationSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ObservationSet::default()
    }

    /// Inserts (or replaces) an observation; returns the replaced value.
    pub fn insert(&mut self, user: UserId, task: TaskId, value: f64) -> Option<f64> {
        self.by_task.entry(task).or_default().insert(user, value)
    }

    /// Adds every observation of `other`, replacing collisions.
    pub fn merge(&mut self, other: &ObservationSet) {
        for (&task, per_user) in &other.by_task {
            for (&user, &value) in per_user {
                self.insert(user, task, value);
            }
        }
    }

    /// The observations for one task, as `(user, value)` pairs in user
    /// order, or `None` if the task has none.
    pub fn for_task(&self, task: TaskId) -> Option<Vec<(UserId, f64)>> {
        self.by_task
            .get(&task)
            .map(|m| m.iter().map(|(&u, &v)| (u, v)).collect())
    }

    /// Number of observations recorded for `task` (0 if none). Unlike
    /// [`ObservationSet::for_task`] this does not materialize the
    /// observations, so sizing pre-passes can call it per task for free.
    pub fn count_for_task(&self, task: TaskId) -> usize {
        self.by_task.get(&task).map_or(0, |m| m.len())
    }

    /// Whether user `user` has reported for `task`.
    pub fn contains(&self, user: UserId, task: TaskId) -> bool {
        self.by_task
            .get(&task)
            .is_some_and(|m| m.contains_key(&user))
    }

    /// Tasks that have at least one observation, ascending.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.by_task.keys().copied()
    }

    /// Total observation count.
    pub fn len(&self) -> usize {
        self.by_task.values().map(BTreeMap::len).sum()
    }

    /// Whether the set holds no observations.
    pub fn is_empty(&self) -> bool {
        self.by_task.is_empty()
    }

    /// Iterates over all observations in (task, user) order.
    pub fn iter(&self) -> impl Iterator<Item = Observation> + '_ {
        self.by_task.iter().flat_map(|(&task, per_user)| {
            per_user
                .iter()
                .map(move |(&user, &value)| Observation { user, task, value })
        })
    }

    /// The first non-finite observation in (task, user) order, if any —
    /// used by ingestion boundaries that reject corrupted batches outright.
    pub fn first_non_finite(&self) -> Option<(UserId, TaskId, f64)> {
        self.iter()
            .find(|o| !o.value.is_finite())
            .map(|o| (o.user, o.task, o.value))
    }
}

impl FromIterator<Observation> for ObservationSet {
    fn from_iter<I: IntoIterator<Item = Observation>>(iter: I) -> Self {
        let mut set = ObservationSet::new();
        for o in iter {
            set.insert(o.user, o.task, o.value);
        }
        set
    }
}

impl Extend<Observation> for ObservationSet {
    fn extend<I: IntoIterator<Item = Observation>>(&mut self, iter: I) {
        for o in iter {
            self.insert(o.user, o.task, o.value);
        }
    }
}

/// The per-user per-domain expertise values `u_i^k` of §2.4.
///
/// Unseen `(user, domain)` combinations read as the initial value `1.0`,
/// matching the paper's MLE initialization (`u = 1, ∀ i, k`).
///
/// # Examples
///
/// ```
/// use eta2_core::model::{DomainId, ExpertiseMatrix, UserId};
///
/// let mut m = ExpertiseMatrix::new(2);
/// assert_eq!(m.get(UserId(0), DomainId(5)), 1.0);
/// m.set(UserId(0), DomainId(5), 2.5);
/// assert_eq!(m.get(UserId(0), DomainId(5)), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertiseMatrix {
    n_users: usize,
    default: f64,
    domains: BTreeMap<DomainId, Vec<f64>>,
}

impl ExpertiseMatrix {
    /// Creates a matrix for `n_users` users with default expertise `1.0`.
    pub fn new(n_users: usize) -> Self {
        Self::with_default(n_users, 1.0)
    }

    /// Creates a matrix with an explicit default for unseen entries.
    ///
    /// # Panics
    ///
    /// Panics if `default` is not finite and positive.
    pub fn with_default(n_users: usize, default: f64) -> Self {
        assert!(
            default.is_finite() && default > 0.0,
            "default expertise must be finite and > 0, got {default}"
        );
        ExpertiseMatrix {
            n_users,
            default,
            domains: BTreeMap::new(),
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Expertise `u_i^k` of `user` in `domain` (the default if never set).
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn get(&self, user: UserId, domain: DomainId) -> f64 {
        assert!(
            (user.0 as usize) < self.n_users,
            "user {user} out of range for {} users",
            self.n_users
        );
        self.domains
            .get(&domain)
            .map_or(self.default, |v| v[user.0 as usize])
    }

    /// Sets the expertise of `user` in `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range or `value` is negative/non-finite.
    pub fn set(&mut self, user: UserId, domain: DomainId, value: f64) {
        assert!(
            (user.0 as usize) < self.n_users,
            "user {user} out of range for {} users",
            self.n_users
        );
        assert!(
            value.is_finite() && value >= 0.0,
            "expertise must be finite and >= 0, got {value}"
        );
        let n = self.n_users;
        let d = self.default;
        self.domains.entry(domain).or_insert_with(|| vec![d; n])[user.0 as usize] = value;
    }

    /// Domains with at least one explicit entry, ascending.
    pub fn domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.domains.keys().copied()
    }

    /// Removes `absorbed`, re-pointing nothing — used after a domain merge
    /// when the caller has already folded the expertise into the kept
    /// domain. Returns the absorbed column if present.
    pub fn remove_domain(&mut self, absorbed: DomainId) -> Option<Vec<f64>> {
        self.domains.remove(&absorbed)
    }

    /// The full expertise column of `domain` (default-filled if unset).
    pub fn column(&self, domain: DomainId) -> Vec<f64> {
        self.domains
            .get(&domain)
            .cloned()
            .unwrap_or_else(|| vec![self.default; self.n_users])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(UserId(3).to_string(), "user#3");
        assert_eq!(TaskId(1).to_string(), "task#1");
        assert_eq!(DomainId(0).to_string(), "domain#0");
    }

    #[test]
    fn task_validation() {
        let t = Task::new(TaskId(0), DomainId(1), 2.0, 1.0);
        assert_eq!(t.domain, DomainId(1));
        assert!(std::panic::catch_unwind(|| Task::new(TaskId(0), DomainId(0), 0.0, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| Task::new(TaskId(0), DomainId(0), 1.0, -1.0)).is_err());
    }

    #[test]
    fn user_profile_validation() {
        assert_eq!(UserProfile::new(UserId(0), 12.0).capacity, 12.0);
        assert!(std::panic::catch_unwind(|| UserProfile::new(UserId(0), f64::NAN)).is_err());
    }

    #[test]
    fn observation_set_insert_replace_iterate() {
        let mut obs = ObservationSet::new();
        assert!(obs.is_empty());
        obs.insert(UserId(0), TaskId(0), 1.0);
        obs.insert(UserId(1), TaskId(0), 2.0);
        obs.insert(UserId(0), TaskId(1), 3.0);
        assert_eq!(obs.len(), 3);
        assert!(obs.contains(UserId(0), TaskId(0)));
        assert!(!obs.contains(UserId(1), TaskId(1)));
        assert_eq!(
            obs.for_task(TaskId(0)),
            Some(vec![(UserId(0), 1.0), (UserId(1), 2.0)])
        );
        assert_eq!(obs.for_task(TaskId(9)), None);
        assert_eq!(obs.tasks().collect::<Vec<_>>(), vec![TaskId(0), TaskId(1)]);
        let all: Vec<Observation> = obs.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].task, TaskId(0));
    }

    #[test]
    fn observation_set_merge_and_collect() {
        let a: ObservationSet = [
            Observation {
                user: UserId(0),
                task: TaskId(0),
                value: 1.0,
            },
            Observation {
                user: UserId(1),
                task: TaskId(0),
                value: 2.0,
            },
        ]
        .into_iter()
        .collect();
        let mut b = ObservationSet::new();
        b.insert(UserId(0), TaskId(0), 9.0);
        b.merge(&a);
        // Merge replaces collisions with the incoming value.
        assert_eq!(b.for_task(TaskId(0)).unwrap()[0].1, 1.0);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn first_non_finite_finds_corruption() {
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 1.0);
        assert_eq!(obs.first_non_finite(), None);
        obs.insert(UserId(2), TaskId(1), f64::NAN);
        let (u, t, v) = obs.first_non_finite().unwrap();
        assert_eq!((u, t), (UserId(2), TaskId(1)));
        assert!(v.is_nan());
    }

    #[test]
    fn expertise_matrix_defaults_and_set() {
        let mut m = ExpertiseMatrix::new(3);
        assert_eq!(m.n_users(), 3);
        assert_eq!(m.get(UserId(2), DomainId(7)), 1.0);
        m.set(UserId(2), DomainId(7), 0.5);
        assert_eq!(m.get(UserId(2), DomainId(7)), 0.5);
        // Other users of the touched domain keep the default.
        assert_eq!(m.get(UserId(0), DomainId(7)), 1.0);
        assert_eq!(m.domains().collect::<Vec<_>>(), vec![DomainId(7)]);
        assert_eq!(m.column(DomainId(7)), vec![1.0, 1.0, 0.5]);
        assert_eq!(m.column(DomainId(9)), vec![1.0; 3]);
    }

    #[test]
    fn expertise_matrix_remove_domain() {
        let mut m = ExpertiseMatrix::new(1);
        m.set(UserId(0), DomainId(1), 2.0);
        assert_eq!(m.remove_domain(DomainId(1)), Some(vec![2.0]));
        assert_eq!(m.remove_domain(DomainId(1)), None);
        assert_eq!(m.get(UserId(0), DomainId(1)), 1.0);
    }

    #[test]
    fn expertise_matrix_bounds_checks() {
        let mut m = ExpertiseMatrix::new(1);
        assert!(std::panic::catch_unwind(|| m.get(UserId(1), DomainId(0))).is_err());
        assert!(std::panic::catch_unwind(move || m.set(UserId(0), DomainId(0), f64::NAN)).is_err());
        assert!(std::panic::catch_unwind(|| ExpertiseMatrix::with_default(1, 0.0)).is_err());
    }
}
