//! Error type for the ETA² core algorithms.

use std::fmt;

/// Error returned by core truth-analysis and allocation routines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was outside its valid range.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable requirement.
        requirement: &'static str,
    },
    /// A task referenced a user index at or beyond the declared user count.
    UnknownUser {
        /// The out-of-range user id.
        user: u32,
        /// The declared number of users.
        n_users: usize,
    },
    /// An observation referenced a task that is not part of the batch.
    UnknownTask {
        /// The unreferenced task id.
        task: u32,
    },
    /// The min-cost allocator exhausted all user capacity without meeting
    /// the quality requirement on every task.
    QualityUnreachable {
        /// How many tasks still fail the quality gate.
        failing_tasks: usize,
    },
    /// A report carried a non-finite value (NaN or ±Inf) where ingestion
    /// requires finite numbers.
    NonFiniteObservation {
        /// Reporting user id.
        user: u32,
        /// Reported task id.
        task: u32,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig {
                field,
                value,
                requirement,
            } => write!(f, "invalid config `{field}` = {value}: {requirement}"),
            CoreError::UnknownUser { user, n_users } => {
                write!(f, "user id {user} out of range for {n_users} users")
            }
            CoreError::UnknownTask { task } => write!(f, "task id {task} not in batch"),
            CoreError::QualityUnreachable { failing_tasks } => write!(
                f,
                "capacity exhausted with {failing_tasks} tasks below the quality requirement"
            ),
            CoreError::NonFiniteObservation { user, task, value } => write!(
                f,
                "non-finite observation {value} from user {user} for task {task}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CoreError::UnknownUser {
            user: 7,
            n_users: 3,
        };
        assert!(e.to_string().contains('7'));
        let e = CoreError::QualityUnreachable { failing_tasks: 2 };
        assert!(e.to_string().contains("2 tasks"));
        let e = CoreError::NonFiniteObservation {
            user: 1,
            task: 4,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
