//! ETA² core: expertise model, expertise-aware truth analysis and
//! expertise-aware task allocation.
//!
//! This crate implements the primary contribution of *"Expertise-Aware Truth
//! Analysis and Task Allocation in Mobile Crowdsourcing"* (Zhang et al.,
//! ICDCS 2017):
//!
//! * [`model`] — users, tasks, observations and the expertise matrix of
//!   §2.4, where a user's observation for a task is
//!   `N(μ_j, (σ_j / u_i^{d_j})²)`.
//! * [`truth`] — the expertise-aware maximum-likelihood truth analysis of
//!   §4 ([`truth::mle`]), the decayed dynamic expertise update of §4.2
//!   ([`truth::dynamic`]) and the four comparison approaches of §6.3
//!   ([`truth::baselines`]).
//! * [`allocation`] — max-quality task allocation (Algorithm 1 with the
//!   ½-approximation second pass, §5.1) in [`allocation::max_quality`], the
//!   iterative min-cost allocation (Algorithm 2, §5.2) in
//!   [`allocation::min_cost`], and the reliability-greedy / random
//!   allocators used by the baselines in [`allocation::reliability`].
//!
//! # Examples
//!
//! Estimate truth and expertise from noisy observations:
//!
//! ```
//! use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
//! use eta2_core::truth::mle::{ExpertiseAwareMle, MleConfig};
//!
//! let tasks = vec![
//!     Task::new(TaskId(0), DomainId(0), 1.0, 1.0),
//!     Task::new(TaskId(1), DomainId(0), 1.0, 1.0),
//! ];
//! let mut obs = ObservationSet::new();
//! // User 0 is accurate, user 1 noisy.
//! obs.insert(UserId(0), TaskId(0), 10.02);
//! obs.insert(UserId(1), TaskId(0), 12.5);
//! obs.insert(UserId(0), TaskId(1), 5.01);
//! obs.insert(UserId(1), TaskId(1), 3.0);
//!
//! let result = ExpertiseAwareMle::new(MleConfig::default()).estimate(&tasks, &obs, 2);
//! assert!(result.truths[&TaskId(0)].mu > 9.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod error;
pub mod model;
pub mod truth;

pub use error::CoreError;
pub use model::{
    DomainId, ExpertiseMatrix, Observation, ObservationSet, Task, TaskId, UserId, UserProfile,
};
