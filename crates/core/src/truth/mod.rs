//! Truth analysis: the paper's expertise-aware MLE (§4), the dynamic
//! expertise update (§4.2) and the comparison approaches (§6.3).

pub mod baselines;
pub mod dynamic;
pub mod mle;
pub mod reference;

pub use baselines::{
    AverageLog, BaselineResult, Crh, HubsAuthorities, MeanBaseline, TruthFinder, TruthMethod,
};
pub use dynamic::{BatchOutcome, DynamicExpertise, IngestOptions};
pub use mle::{
    results_match, ExpertiseAwareMle, MleConfig, MleResult, TruthEstimate, PARITY_REL_TOL,
};
