//! Dynamic update of user expertise across time steps (paper §4.2).
//!
//! Expertise `u_i^k = sqrt(N/D)` is maintained through two accumulators per
//! `(user, domain)` pair:
//!
//! * `N(u_i^k)` — the (decayed) count of the user's observations in the
//!   domain (paper Eq. 7), and
//! * `D(u_i^k)` — the (decayed) sum of normalized squared errors
//!   `(x_ij − μ_j)²/σ_j²` (paper Eq. 8),
//!
//! with decay factor `α ∈ [0, 1]` applied to the historical value whenever a
//! new batch contributes to the pair. Because `u` is the ratio `sqrt(N/D)`,
//! pairs untouched by a batch need no decay — `sqrt(αN/αD) = sqrt(N/D)`.
//!
//! When a batch arrives, `μ_j`/`σ_j` of the *new* tasks and the affected
//! expertise values are re-estimated jointly: truths are first computed with
//! the time-`T` expertise, then truths and the candidate `u` values iterate
//! until the 5 % truth criterion holds (the same loop as §4.1), and only
//! then are the accumulators committed.
//!
//! Domain lifecycle: a new domain simply starts accumulating from zero; when
//! the clusterer merges domain `k₂` into `k₁`, the accumulators are summed
//! (`N ← N₁+N₂`, `D ← D₁+D₂`), which is exactly "recalculate the expertise
//! in `k₁` by further including the tasks of `k₂`" under Eq. 6.

use crate::model::{DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId};
use crate::truth::mle::{relative_change, MleConfig, TruthEstimate};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of ingesting one batch of finished tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// Truth estimates for the batch's tasks.
    pub truths: BTreeMap<TaskId, TruthEstimate>,
    /// Joint re-estimation iterations executed.
    pub iterations: usize,
    /// Whether the 5 % criterion was met before the iteration cap.
    pub converged: bool,
}

/// Tuning knobs for [`DynamicExpertise::ingest_batch_with`].
///
/// The defaults reproduce [`DynamicExpertise::ingest_batch`] exactly: no
/// warm start, sparse (dirty-user) iteration.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct IngestOptions<'a> {
    /// Previous-epoch truth estimates seeding the convergence criterion.
    ///
    /// When a batch task has a finite entry here, its value becomes the
    /// task's `prev_mu` for the *first* joint iteration, so the paper's 5 %
    /// criterion is applied to the delta against the previous epoch and a
    /// batch whose truths barely moved can settle after a single iteration.
    /// Tasks without an entry converge only from their second iteration, as
    /// in a cold start. Warm starting can therefore stop the iteration one
    /// step earlier than a cold solve: results agree with the cold
    /// trajectory to within one convergence step (a bounded divergence, see
    /// DESIGN.md §13.2), not bit-exactly.
    pub warm: Option<&'a BTreeMap<TaskId, TruthEstimate>>,
    /// Iterate the per-user expertise update over every user column instead
    /// of only the batch's reporters.
    ///
    /// The dense loop writes candidate expertise values for users without
    /// observations in the batch, but those values are never read by the
    /// truth or leave-one-out updates and never committed (commit requires
    /// a batch contribution), so dense and sparse are **bit-identical** —
    /// `dense` only restores the pre-incremental cost profile, which the
    /// differential harness and `perf_suite` keep around as the
    /// full-reconvergence twin.
    pub dense: bool,
}

/// Per-`(user, domain)` accumulator pair `(N, D)`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
struct Acc {
    n: f64,
    d: f64,
}

/// One task's materialized slice of a batch (finite observations only).
struct TaskData {
    id: TaskId,
    domain: DomainId,
    obs: Vec<(UserId, f64)>,
    /// Plain observation sum, accumulated once at materialization so the
    /// divergence fallback is O(1) per task, not a rescan.
    xsum: f64,
}

/// The opaque `(N, D)` accumulator column of one domain, detached from a
/// [`DynamicExpertise`] with [`DynamicExpertise::take_domain`] so a sharded
/// owner (the `eta2-serve` engine) can move domains between shards on a
/// cluster merge or re-partition a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainAccumulators {
    acc: Vec<Acc>,
}

impl DomainAccumulators {
    /// Number of users the column covers.
    pub fn n_users(&self) -> usize {
        self.acc.len()
    }
}

/// Decayed expertise state across time steps.
///
/// # Examples
///
/// ```
/// use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
/// use eta2_core::truth::dynamic::DynamicExpertise;
/// use eta2_core::truth::mle::MleConfig;
///
/// let mut dyn_ex = DynamicExpertise::new(2, 0.5, MleConfig::default());
/// let tasks = vec![Task::new(TaskId(0), DomainId(0), 1.0, 1.0)];
/// let mut obs = ObservationSet::new();
/// obs.insert(UserId(0), TaskId(0), 10.0);
/// obs.insert(UserId(1), TaskId(0), 10.4);
/// let out = dyn_ex.ingest_batch(&tasks, &obs);
/// assert!(out.truths.contains_key(&TaskId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicExpertise {
    n_users: usize,
    alpha: f64,
    config: MleConfig,
    acc: BTreeMap<DomainId, Vec<Acc>>,
}

impl DynamicExpertise {
    /// Creates an empty expertise state.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ alpha ≤ 1`.
    pub fn new(n_users: usize, alpha: f64, config: MleConfig) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        DynamicExpertise {
            n_users,
            alpha,
            config,
            acc: BTreeMap::new(),
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// The decay factor `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The MLE configuration this state was built with.
    pub fn mle_config(&self) -> MleConfig {
        self.config
    }

    /// Current expertise `u_i^k` of `user` in `domain` (1.0 — the paper's
    /// initialization — when no data has been accumulated).
    ///
    /// # Panics
    ///
    /// Panics if `user` is out of range.
    pub fn expertise(&self, user: UserId, domain: DomainId) -> f64 {
        assert!(
            (user.0 as usize) < self.n_users,
            "user {user} out of range for {} users",
            self.n_users
        );
        match self.acc.get(&domain) {
            Some(per_user) => {
                let a = per_user[user.0 as usize];
                if a.n > 0.0 {
                    let s = self.config.prior_strength;
                    ((a.n + s) / (a.d + s).max(1e-12))
                        .sqrt()
                        .clamp(self.config.expertise_floor, self.config.expertise_cap)
                } else {
                    1.0
                }
            }
            None => 1.0,
        }
    }

    /// A snapshot of all accumulated expertise as an [`ExpertiseMatrix`].
    pub fn matrix(&self) -> ExpertiseMatrix {
        let mut m = ExpertiseMatrix::new(self.n_users);
        for (&domain, per_user) in &self.acc {
            for (i, a) in per_user.iter().enumerate() {
                if a.n > 0.0 {
                    m.set(
                        UserId(i as u32),
                        domain,
                        self.expertise(UserId(i as u32), domain),
                    );
                }
            }
        }
        m
    }

    /// Domains with accumulated data, ascending.
    pub fn domains(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.acc.keys().copied()
    }

    /// One domain's expertise as a dense per-user column (`1.0` — the
    /// paper's initialization — for users without data), or `None` when no
    /// user has accumulated data in the domain.
    ///
    /// Returns `Some` for exactly the domains [`matrix`](Self::matrix)
    /// materializes, with identical values — this is the per-domain
    /// building block the `eta2-serve` engine uses to refresh only the
    /// columns a flush dirtied instead of rebuilding the whole matrix.
    pub fn column(&self, domain: DomainId) -> Option<Vec<f64>> {
        let per_user = self.acc.get(&domain)?;
        if per_user.iter().all(|a| a.n <= 0.0) {
            return None;
        }
        Some(
            (0..self.n_users)
                .map(|i| self.expertise(UserId(i as u32), domain))
                .collect(),
        )
    }

    /// Ingests a finished batch: jointly re-estimates the batch's truths and
    /// the affected expertise values (Eqs. 5, 7–9), then commits the decayed
    /// accumulators.
    ///
    /// The batch is solved **domain by domain**: a task's truth reads only
    /// its own domain's expertise column and a user's update accumulates
    /// only into the task's domain, so the joint iteration decomposes
    /// exactly, with each domain converging on its own 5 % criterion. One
    /// call over a multi-domain batch is therefore bit-identical to any
    /// partition of that batch into per-domain (or per-domain-shard) calls
    /// — the invariant the `eta2-serve` sharded engine relies on.
    pub fn ingest_batch(&mut self, tasks: &[Task], obs: &ObservationSet) -> BatchOutcome {
        self.ingest_batch_with(tasks, obs, IngestOptions::default())
    }

    /// [`ingest_batch`](Self::ingest_batch) with explicit [`IngestOptions`]:
    /// an optional warm start from previous-epoch estimates and a dense
    /// cost-profile toggle. The default options reproduce `ingest_batch`
    /// bit-exactly; see the option docs for the exact semantics of each
    /// knob. The per-domain decomposition invariant documented on
    /// `ingest_batch` holds for every option combination.
    pub fn ingest_batch_with(
        &mut self,
        tasks: &[Task],
        obs: &ObservationSet,
        opts: IngestOptions<'_>,
    ) -> BatchOutcome {
        let _span = eta2_obs::span!("mle.ingest_batch");
        // Non-finite observations (corrupted reports) are rejected at the
        // boundary, mirroring `ExpertiseAwareMle::estimate_with_initial`.
        let mut batch: Vec<TaskData> = Vec::new();
        for t in tasks {
            let Some(raw) = obs.for_task(t.id) else {
                continue;
            };
            let n_raw = raw.len();
            let finite: Vec<(UserId, f64)> =
                raw.into_iter().filter(|&(_, x)| x.is_finite()).collect();
            if finite.len() < n_raw {
                eta2_obs::counter("mle.rejected_observations", (n_raw - finite.len()) as u64);
            }
            if finite.is_empty() {
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: 0,
                    reason: "no_finite_observations",
                });
                continue;
            }
            let xsum = finite.iter().map(|&(_, x)| x).sum();
            batch.push(TaskData {
                id: t.id,
                domain: t.domain,
                obs: finite,
                xsum,
            });
        }
        if batch.is_empty() {
            return BatchOutcome {
                truths: BTreeMap::new(),
                iterations: 0,
                converged: true,
            };
        }

        // Partition by domain, preserving the batch's task order within
        // each group, and solve the independent groups in ascending domain
        // order (a fixed order keeps trace streams reproducible).
        let mut by_domain: BTreeMap<DomainId, Vec<TaskData>> = BTreeMap::new();
        for t in batch {
            by_domain.entry(t.domain).or_default().push(t);
        }

        let mut truths: BTreeMap<TaskId, TruthEstimate> = BTreeMap::new();
        let mut iterations = 0;
        let mut converged = true;
        let mut tasks_solved = 0u64;
        for (domain, group) in &by_domain {
            tasks_solved += group.len() as u64;
            let solved = self.solve_domain(*domain, group, opts);
            // Per-domain convergence series (labeled, so the dashboard can
            // surface slow domains individually). The name is only built
            // when metrics are on.
            if eta2_obs::metrics_enabled() {
                eta2_obs::observe(
                    &format!("mle.domain_iterations|domain={}", domain.0),
                    solved.iterations as f64,
                );
            }
            iterations = iterations.max(solved.iterations);
            converged &= solved.converged;
            truths.extend(solved.truths);
        }

        eta2_obs::emit_with(|| eta2_obs::Event::MleOutcome {
            source: "dynamic",
            iterations: iterations as u64,
            converged,
            tasks: tasks_solved,
        });

        BatchOutcome {
            truths,
            iterations,
            converged,
        }
    }

    /// Runs the §4 joint truth/expertise iteration for one domain's slice
    /// of a batch, then commits the decayed accumulators for that domain.
    ///
    /// The iteration state is kept per **dirty user** — the batch's
    /// distinct reporters — because they are the only users whose candidate
    /// expertise the truth and leave-one-out updates can read, and the only
    /// users whose accumulators the commit can touch. `opts.dense` widens
    /// the working set to every user (the historical cost profile) without
    /// changing a single bit of the result; `opts.warm` seeds the
    /// convergence criterion from previous-epoch estimates.
    fn solve_domain(
        &mut self,
        domain: DomainId,
        batch: &[TaskData],
        opts: IngestOptions<'_>,
    ) -> BatchOutcome {
        let cfg = self.config;
        // Dirty users of this domain slice, ascending; `slot_of` maps a
        // user id onto its compact slot in `work`/`delta`.
        let dirty: Vec<u32> = if opts.dense {
            (0..self.n_users as u32).collect()
        } else {
            let set: std::collections::BTreeSet<u32> = batch
                .iter()
                .flat_map(|t| t.obs.iter().map(|&(user, _)| user.0))
                .collect();
            set.into_iter().collect()
        };
        let slot_of: BTreeMap<u32, usize> =
            dirty.iter().enumerate().map(|(s, &u)| (u, s)).collect();
        // Each task's observations, remapped onto compact slots once so the
        // joint iteration is O(dirty users + observations) per pass.
        let obs_slots: Vec<Vec<(usize, f64)>> = batch
            .iter()
            .map(|t| {
                t.obs
                    .iter()
                    .map(|&(user, x)| (slot_of[&user.0], x))
                    .collect()
            })
            .collect();

        // Working expertise per dirty slot: starts from the time-T values;
        // updated through candidate accumulators during the joint iteration.
        let mut work: Vec<f64> = dirty
            .iter()
            .map(|&u| self.expertise(UserId(u), domain))
            .collect();

        let mut truths: BTreeMap<TaskId, TruthEstimate> = BTreeMap::new();
        // Previous-iteration truths driving the 5 % criterion. A warm start
        // pre-seeds it from the caller's previous-epoch estimates, making
        // the criterion live from the first iteration.
        let mut prev_mu: BTreeMap<TaskId, f64> = BTreeMap::new();
        if let Some(warm) = opts.warm {
            for t in batch {
                if let Some(est) = warm.get(&t.id) {
                    if est.mu.is_finite() {
                        prev_mu.insert(t.id, est.mu);
                    }
                }
            }
        }
        let mut delta: Vec<Acc> = Vec::new();
        let mut iterations = 0;
        let mut converged = false;

        while iterations < cfg.max_iterations.max(1) {
            iterations += 1;

            // (1) Truths of the new tasks from the working expertise.
            for (t, slots) in batch.iter().zip(&obs_slots) {
                let mut wsum = 0.0;
                let mut wxsum = 0.0;
                for &(slot, x) in slots {
                    let u = work[slot].max(cfg.expertise_floor);
                    wsum += u * u;
                    wxsum += u * u * x;
                }
                let mu = wxsum / wsum;
                let mut ss = 0.0;
                for &(slot, x) in slots {
                    let u = work[slot].max(cfg.expertise_floor);
                    ss += u * u * (x - mu) * (x - mu);
                }
                let denom = if cfg.sigma_weighted_denominator {
                    wsum
                } else {
                    slots.len() as f64
                };
                let sigma = (ss / denom).sqrt().max(cfg.sigma_floor);
                truths.insert(
                    t.id,
                    TruthEstimate {
                        mu,
                        sigma,
                        fallback: false,
                    },
                );
            }

            // (2) Batch contributions ΔN/ΔD per dirty slot, then candidate
            // expertise u = sqrt((αN + ΔN)/(αD + ΔD)) per Eq. 9.
            delta = vec![Acc::default(); dirty.len()];
            for (t, slots) in batch.iter().zip(&obs_slots) {
                let est = truths[&t.id];
                // Weighted sums for the leave-one-out truth (see
                // `MleConfig::leave_one_out`).
                let (mut wsum, mut wxsum) = (0.0, 0.0);
                if cfg.leave_one_out {
                    for &(slot, x) in slots {
                        let u = work[slot].max(cfg.expertise_floor);
                        wsum += u * u;
                        wxsum += u * u * x;
                    }
                }
                for &(slot, x) in slots {
                    let reference = if cfg.leave_one_out && slots.len() > 1 {
                        let u = work[slot].max(cfg.expertise_floor);
                        (wxsum - u * u * x) / (wsum - u * u)
                    } else {
                        est.mu
                    };
                    let e = (x - reference) / est.sigma;
                    let acc = &mut delta[slot];
                    acc.n += 1.0;
                    acc.d += e * e;
                }
            }
            let hist = self.acc.get(&domain);
            for (s, col) in work.iter_mut().enumerate() {
                let h = hist.map_or(Acc::default(), |v| v[dirty[s] as usize]);
                let n = self.alpha * h.n + delta[s].n;
                let den = self.alpha * h.d + delta[s].d;
                if n > 0.0 {
                    let prior = cfg.prior_strength;
                    let raw = ((n + prior) / (den + prior).max(1e-12)).sqrt();
                    // NaN only arises when gross (finite but enormous)
                    // observations overflow the error accumulator.
                    *col = if raw.is_finite() {
                        raw.clamp(cfg.expertise_floor, cfg.expertise_cap)
                    } else {
                        cfg.expertise_floor
                    };
                }
            }

            eta2_obs::emit_with(|| eta2_obs::Event::MleIteration {
                source: "dynamic",
                iteration: iterations as u64,
                tasks: batch.len() as u64,
                max_rel_delta: if prev_mu.is_empty() {
                    None
                } else {
                    // A warm map can cover only part of the batch; tasks
                    // without a previous value contribute nothing here.
                    Some(
                        truths
                            .iter()
                            .filter_map(|(id, est)| {
                                prev_mu.get(id).map(|&p| relative_change(p, est.mu))
                            })
                            .fold(0.0, f64::max),
                    )
                },
            });

            // (3) Convergence on this domain's batch truths: every task
            // needs a previous-iteration (or warm-seeded) value inside the
            // threshold; a task with no previous value cannot converge yet.
            if !prev_mu.is_empty() {
                let all_small = truths.iter().all(|(id, est)| {
                    prev_mu
                        .get(id)
                        .is_some_and(|&p| relative_change(p, est.mu) < cfg.convergence_threshold)
                });
                if all_small {
                    converged = true;
                    break;
                }
            }
            prev_mu = truths.iter().map(|(&id, est)| (id, est.mu)).collect();
        }

        // Degradation provenance on the batch truths: repair non-finite
        // estimates with the plain mean, flag single-observation tasks.
        for t in batch {
            let Some(est) = truths.get_mut(&t.id) else {
                continue;
            };
            if !est.mu.is_finite() || !est.sigma.is_finite() {
                est.mu = t.xsum / t.obs.len() as f64;
                est.sigma = cfg.sigma_floor;
                est.fallback = true;
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: t.obs.len() as u64,
                    reason: "diverged",
                });
            } else if t.obs.len() == 1 {
                est.fallback = true;
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: 1,
                    reason: "single_observation",
                });
            }
        }

        // Commit: decay history once, add the batch contribution — but only
        // for (user, domain) pairs this batch touched (untouched pairs keep
        // an unchanged N/D ratio, so skipping their decay is equivalent).
        // A pair whose batch error diverged (mean squared normalized error
        // above the quarantine threshold — gross corruption or collusion)
        // is quarantined: its contribution is dropped so one poisoned batch
        // cannot destroy a user's accumulated standing in the domain.
        if !self.acc.contains_key(&domain) {
            eta2_obs::emit_with(|| eta2_obs::Event::DomainCreated {
                domain: domain.0 as u64,
            });
        }
        let per_user = self
            .acc
            .entry(domain)
            .or_insert_with(|| vec![Acc::default(); self.n_users]);
        for (s, dd) in delta.iter().enumerate() {
            let i = dirty[s] as usize;
            if dd.n > 0.0 {
                let mean_sq = dd.d / dd.n;
                if !mean_sq.is_finite() || mean_sq > cfg.quarantine_threshold {
                    eta2_obs::counter("dynamic.quarantined", 1);
                    eta2_obs::emit_with(|| eta2_obs::Event::UserQuarantined {
                        user: i as u64,
                        domain: domain.0 as u64,
                        mean_sq_error: mean_sq,
                    });
                    continue;
                }
                per_user[i].n = self.alpha * per_user[i].n + dd.n;
                per_user[i].d = self.alpha * per_user[i].d + dd.d;
            }
        }

        // Gated invariants (ETA2_CHECK): committed accumulators stay finite
        // and non-negative (quarantine must have caught anything else), so
        // every expertise value derived from them is finite and lands inside
        // the configured [floor, cap] clamp; and the batch truths handed to
        // the caller are finite after the provenance repair above.
        if eta2_check::enabled() {
            for (id, est) in &truths {
                eta2_check::invariant!(
                    "dynamic.truth_finite",
                    est.mu.is_finite() && est.sigma.is_finite() && est.sigma >= cfg.sigma_floor,
                    "task {id:?}: mu {} sigma {} (floor {})",
                    est.mu,
                    est.sigma,
                    cfg.sigma_floor
                );
            }
            for (i, a) in per_user.iter().enumerate() {
                eta2_check::invariant!(
                    "dynamic.accumulators_valid",
                    a.n.is_finite() && a.d.is_finite() && a.n >= 0.0 && a.d >= 0.0,
                    "user {i} in {domain:?}: N {} D {}",
                    a.n,
                    a.d
                );
                if a.n > 0.0 {
                    let s = cfg.prior_strength;
                    let u = ((a.n + s) / (a.d + s).max(1e-12))
                        .sqrt()
                        .clamp(cfg.expertise_floor, cfg.expertise_cap);
                    eta2_check::invariant!(
                        "dynamic.expertise_bounds",
                        u.is_finite() && u >= cfg.expertise_floor && u <= cfg.expertise_cap,
                        "user {i} in {domain:?}: expertise {u} outside [{}, {}]",
                        cfg.expertise_floor,
                        cfg.expertise_cap
                    );
                }
            }
        }

        BatchOutcome {
            truths,
            iterations,
            converged,
        }
    }

    /// Folds domain `absorbed` into `kept` after a cluster merge (paper
    /// §4.2, second special case): accumulators are summed and `absorbed`
    /// is deleted.
    ///
    /// # Panics
    ///
    /// Panics if `kept == absorbed`.
    pub fn merge_domains(&mut self, kept: DomainId, absorbed: DomainId) {
        assert_ne!(kept, absorbed, "cannot merge a domain into itself");
        let Some(old) = self.take_domain(absorbed) else {
            return;
        };
        eta2_obs::emit_with(|| eta2_obs::Event::DomainMerged {
            kept: kept.0 as u64,
            absorbed: absorbed.0 as u64,
        });
        self.merge_in(kept, old);
    }

    /// Detaches and returns `domain`'s accumulator column, or `None` if the
    /// domain has never accumulated data. The domain then reads as fresh
    /// (`u = 1`) until re-inserted.
    pub fn take_domain(&mut self, domain: DomainId) -> Option<DomainAccumulators> {
        self.acc
            .remove(&domain)
            .map(|acc| DomainAccumulators { acc })
    }

    /// Re-attaches a column detached by [`DynamicExpertise::take_domain`]
    /// (possibly from a sibling shard's instance with identical parameters).
    ///
    /// # Panics
    ///
    /// Panics if `domain` already has accumulators here, or the column's
    /// user count differs.
    pub fn insert_domain(&mut self, domain: DomainId, column: DomainAccumulators) {
        assert_eq!(
            column.acc.len(),
            self.n_users,
            "column covers {} users, this state has {}",
            column.acc.len(),
            self.n_users
        );
        let prev = self.acc.insert(domain, column.acc);
        assert!(prev.is_none(), "{domain} already has accumulators");
    }

    /// Sums a detached column into `kept` (creating it when absent) — the
    /// cross-shard half of a domain merge, equivalent to
    /// [`DynamicExpertise::merge_domains`] when both domains live in the
    /// same instance.
    ///
    /// # Panics
    ///
    /// Panics if the column's user count differs.
    pub fn merge_in(&mut self, kept: DomainId, column: DomainAccumulators) {
        assert_eq!(
            column.acc.len(),
            self.n_users,
            "column covers {} users, this state has {}",
            column.acc.len(),
            self.n_users
        );
        let per_user = self
            .acc
            .entry(kept)
            .or_insert_with(|| vec![Acc::default(); self.n_users]);
        for (slot, o) in per_user.iter_mut().zip(column.acc) {
            slot.n += o.n;
            slot.d += o.d;
        }
    }

    /// Moves every domain of `other` into `self`. Used to fold per-shard
    /// expertise states back into one for checkpointing.
    ///
    /// # Panics
    ///
    /// Panics if the two states disagree on `n_users`, `alpha` or the MLE
    /// configuration, or if any domain is present in both.
    pub fn absorb_disjoint(&mut self, other: DynamicExpertise) {
        assert_eq!(self.n_users, other.n_users, "user counts differ");
        assert_eq!(self.alpha, other.alpha, "decay factors differ");
        assert_eq!(self.config, other.config, "MLE configurations differ");
        for (domain, acc) in other.acc {
            let prev = self.acc.insert(domain, acc);
            assert!(prev.is_none(), "{domain} present in both states");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn batch(domain: u32, first_task: u32, m: u32) -> Vec<Task> {
        (first_task..first_task + m)
            .map(|j| Task::new(TaskId(j), DomainId(domain), 1.0, 1.0))
            .collect()
    }

    fn observe(
        tasks: &[Task],
        expertise: &[f64],
        rng: &mut impl Rng,
    ) -> (ObservationSet, Vec<f64>) {
        let mut obs = ObservationSet::new();
        let mut truths = Vec::new();
        for t in tasks {
            let mu: f64 = rng.gen_range(0.0..20.0);
            truths.push(mu);
            for (i, &u) in expertise.iter().enumerate() {
                let z = eta2_stats::normal::standard_sample(rng);
                obs.insert(UserId(i as u32), t.id, mu + z / u);
            }
        }
        (obs, truths)
    }

    #[test]
    fn first_batch_learns_expertise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut de = DynamicExpertise::new(3, 0.5, MleConfig::default());
        let tasks = batch(0, 0, 30);
        let (obs, _) = observe(&tasks, &[3.0, 1.0, 0.3], &mut rng);
        let out = de.ingest_batch(&tasks, &obs);
        assert!(out.converged);
        let d = DomainId(0);
        assert!(de.expertise(UserId(0), d) > de.expertise(UserId(1), d));
        assert!(de.expertise(UserId(1), d) > de.expertise(UserId(2), d));
    }

    #[test]
    fn unseen_domain_reads_one() {
        let de = DynamicExpertise::new(2, 0.5, MleConfig::default());
        assert_eq!(de.expertise(UserId(0), DomainId(9)), 1.0);
        assert_eq!(de.matrix().get(UserId(0), DomainId(9)), 1.0);
    }

    #[test]
    fn decay_forgets_old_behaviour() {
        // User 0 starts accurate, becomes awful. With strong decay (α
        // small) the expertise estimate must track the recent behaviour.
        // (Several users per task: with exactly two observations the MLE
        // update is provably data-independent, and with very few users the
        // expertise²-weighted mean lets a dominant user mask their own
        // errors.)
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut fast = DynamicExpertise::new(8, 0.1, MleConfig::default());
        let mut slow = DynamicExpertise::new(8, 1.0, MleConfig::default());
        let mut good_skills = vec![1.0; 8];
        good_skills[0] = 3.0;
        let mut bad_skills = vec![1.0; 8];
        bad_skills[0] = 0.3;

        let good = batch(0, 0, 25);
        let (obs_good, _) = observe(&good, &good_skills, &mut rng);
        fast.ingest_batch(&good, &obs_good);
        slow.ingest_batch(&good, &obs_good);

        for step in 0..2 {
            let bad = batch(0, 100 + step * 25, 25);
            let (obs_bad, _) = observe(&bad, &bad_skills, &mut rng);
            fast.ingest_batch(&bad, &obs_bad);
            slow.ingest_batch(&bad, &obs_bad);
        }
        let d = DomainId(0);
        assert!(
            fast.expertise(UserId(0), d) < slow.expertise(UserId(0), d),
            "fast = {:.3}, slow = {:.3}",
            fast.expertise(UserId(0), d),
            slow.expertise(UserId(0), d)
        );
    }

    #[test]
    fn new_domain_starts_fresh() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut de = DynamicExpertise::new(4, 0.5, MleConfig::default());
        let t0 = batch(0, 0, 20);
        let (o0, _) = observe(&t0, &[3.0, 0.4, 1.0, 1.0], &mut rng);
        de.ingest_batch(&t0, &o0);
        // Same users, opposite skill in a new domain.
        let t1 = batch(1, 100, 20);
        let (o1, _) = observe(&t1, &[0.4, 3.0, 1.0, 1.0], &mut rng);
        de.ingest_batch(&t1, &o1);
        assert!(de.expertise(UserId(0), DomainId(0)) > de.expertise(UserId(0), DomainId(1)));
        assert!(de.expertise(UserId(1), DomainId(1)) > de.expertise(UserId(1), DomainId(0)));
        assert_eq!(de.domains().count(), 2);
    }

    #[test]
    fn merge_domains_sums_accumulators() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut de = DynamicExpertise::new(2, 1.0, MleConfig::default());
        let t0 = batch(0, 0, 15);
        let (o0, _) = observe(&t0, &[2.0, 0.5], &mut rng);
        de.ingest_batch(&t0, &o0);
        let t1 = batch(1, 100, 15);
        let (o1, _) = observe(&t1, &[2.0, 0.5], &mut rng);
        de.ingest_batch(&t1, &o1);

        let before = de.expertise(UserId(0), DomainId(0));
        de.merge_domains(DomainId(0), DomainId(1));
        assert_eq!(de.domains().count(), 1);
        let after = de.expertise(UserId(0), DomainId(0));
        // Both domains had the same behaviour, so the merged estimate stays
        // in the same ballpark.
        assert!(
            (after - before).abs() < 1.0,
            "before {before}, after {after}"
        );
        // Absorbed domain reads as fresh again.
        assert_eq!(de.expertise(UserId(0), DomainId(1)), 1.0);
    }

    #[test]
    fn merge_missing_absorbed_is_noop() {
        let mut de = DynamicExpertise::new(1, 0.5, MleConfig::default());
        de.merge_domains(DomainId(0), DomainId(7));
        assert_eq!(de.domains().count(), 0);
    }

    #[test]
    #[should_panic(expected = "cannot merge a domain into itself")]
    fn merge_self_panics() {
        let mut de = DynamicExpertise::new(1, 0.5, MleConfig::default());
        de.merge_domains(DomainId(0), DomainId(0));
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0, 1]")]
    fn alpha_validated() {
        DynamicExpertise::new(1, 1.5, MleConfig::default());
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut de = DynamicExpertise::new(2, 0.5, MleConfig::default());
        let out = de.ingest_batch(&[], &ObservationSet::new());
        assert!(out.truths.is_empty());
        assert!(out.converged);
        assert_eq!(de.domains().count(), 0);
    }

    #[test]
    fn quarantine_discards_diverging_update() {
        // Users 0–3 agree closely; user 4 reports gross outliers. With a
        // low quarantine threshold the outlier's batch contribution is
        // dropped, leaving their expertise at the unseen-pair default.
        let cfg = MleConfig {
            quarantine_threshold: 2.0,
            ..MleConfig::default()
        };
        let mut de = DynamicExpertise::new(5, 0.5, cfg);
        let tasks = batch(0, 0, 20);
        let mut obs = ObservationSet::new();
        for t in &tasks {
            for i in 0..4u32 {
                obs.insert(UserId(i), t.id, 10.0 + 0.05 * i as f64);
            }
            obs.insert(UserId(4), t.id, 10_000.0);
        }
        de.ingest_batch(&tasks, &obs);
        let d = DomainId(0);
        assert_eq!(
            de.expertise(UserId(4), d),
            1.0,
            "quarantined user must keep the fresh-pair default"
        );
        // Honest users' updates commit normally.
        for i in 0..4u32 {
            assert!(de.expertise(UserId(i), d) > 1.0, "user {i}");
        }
    }

    #[test]
    fn non_finite_reports_do_not_poison_expertise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut clean = DynamicExpertise::new(4, 0.5, MleConfig::default());
        let mut dirty = DynamicExpertise::new(4, 0.5, MleConfig::default());
        let tasks = batch(0, 0, 25);
        let (obs, _) = observe(&tasks, &[3.0, 1.0, 1.0, 0.4], &mut rng);
        let mut corrupted = obs.clone();
        // An extra all-garbage task plus NaN reports on a fresh task id
        // must leave the shared tasks' outcome identical.
        corrupted.insert(UserId(0), TaskId(900), f64::NAN);
        corrupted.insert(UserId(1), TaskId(900), f64::INFINITY);
        let mut tasks_plus = tasks.clone();
        tasks_plus.push(Task::new(TaskId(900), DomainId(0), 1.0, 1.0));

        let a = clean.ingest_batch(&tasks, &obs);
        let b = dirty.ingest_batch(&tasks_plus, &corrupted);
        assert!(!b.truths.contains_key(&TaskId(900)));
        for t in &tasks {
            assert_eq!(a.truths[&t.id], b.truths[&t.id]);
        }
        let d = DomainId(0);
        for i in 0..4u32 {
            assert_eq!(clean.expertise(UserId(i), d), dirty.expertise(UserId(i), d));
        }
    }

    #[test]
    fn multi_domain_batch_equals_per_domain_calls() {
        // The documented decomposition invariant: one ingest over a batch
        // spanning several domains is bit-identical to ingesting each
        // domain's slice separately — in any order.
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut joint = DynamicExpertise::new(5, 0.5, MleConfig::default());
        let mut split = DynamicExpertise::new(5, 0.5, MleConfig::default());
        let skills = [3.0, 1.5, 1.0, 0.7, 0.3];

        let mut all_tasks = Vec::new();
        let mut all_obs = ObservationSet::new();
        let mut per_domain: Vec<(Vec<Task>, ObservationSet)> = Vec::new();
        for d in 0..3u32 {
            let tasks = batch(d, 100 * d, 10);
            let (obs, _) = observe(&tasks, &skills, &mut rng);
            all_tasks.extend(tasks.iter().copied());
            all_obs.merge(&obs);
            per_domain.push((tasks, obs));
        }

        let out_joint = joint.ingest_batch(&all_tasks, &all_obs);
        // Ingest the slices in *reverse* domain order to prove order
        // independence of the committed state.
        let mut split_truths = BTreeMap::new();
        for (tasks, obs) in per_domain.iter().rev() {
            let out = split.ingest_batch(tasks, obs);
            split_truths.extend(out.truths);
        }

        assert_eq!(out_joint.truths, split_truths);
        assert_eq!(joint, split);
    }

    #[test]
    fn take_insert_and_merge_in_move_columns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut a = DynamicExpertise::new(3, 0.5, MleConfig::default());
        let tasks = batch(4, 0, 15);
        let (obs, _) = observe(&tasks, &[2.0, 1.0, 0.5], &mut rng);
        a.ingest_batch(&tasks, &obs);
        let before = a.expertise(UserId(0), DomainId(4));
        assert!(before != 1.0);

        // Detach, observe the fresh default, re-attach elsewhere.
        let col = a.take_domain(DomainId(4)).unwrap();
        assert_eq!(col.n_users(), 3);
        assert_eq!(a.expertise(UserId(0), DomainId(4)), 1.0);
        assert!(a.take_domain(DomainId(4)).is_none());

        let mut b = DynamicExpertise::new(3, 0.5, MleConfig::default());
        b.insert_domain(DomainId(4), col.clone());
        assert_eq!(b.expertise(UserId(0), DomainId(4)), before);

        // merge_in into an empty target behaves like insert; into a loaded
        // target it sums — mirroring merge_domains within one instance.
        let mut c = DynamicExpertise::new(3, 0.5, MleConfig::default());
        c.merge_in(DomainId(9), col.clone());
        assert_eq!(c.expertise(UserId(0), DomainId(9)), before);
        let mut d1 = b.clone();
        d1.insert_domain(DomainId(9), col.clone());
        d1.merge_domains(DomainId(4), DomainId(9));
        let mut d2 = b;
        d2.merge_in(DomainId(4), col);
        assert_eq!(
            d1.expertise(UserId(0), DomainId(4)),
            d2.expertise(UserId(0), DomainId(4))
        );
    }

    #[test]
    fn absorb_disjoint_folds_shards() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut whole = DynamicExpertise::new(2, 0.5, MleConfig::default());
        let mut shard_a = DynamicExpertise::new(2, 0.5, MleConfig::default());
        let mut shard_b = DynamicExpertise::new(2, 0.5, MleConfig::default());
        for (d, shard) in [(0u32, &mut shard_a), (1u32, &mut shard_b)] {
            let tasks = batch(d, 100 * d, 10);
            let (obs, _) = observe(&tasks, &[2.0, 0.5], &mut rng);
            whole.ingest_batch(&tasks, &obs);
            shard.ingest_batch(&tasks, &obs);
        }
        shard_a.absorb_disjoint(shard_b);
        assert_eq!(shard_a, whole);
    }

    #[test]
    #[should_panic(expected = "present in both")]
    fn absorb_disjoint_rejects_overlap() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(24);
        let mut a = DynamicExpertise::new(2, 0.5, MleConfig::default());
        let mut b = DynamicExpertise::new(2, 0.5, MleConfig::default());
        let tasks = batch(0, 0, 5);
        let (obs, _) = observe(&tasks, &[2.0, 0.5], &mut rng);
        a.ingest_batch(&tasks, &obs);
        b.ingest_batch(&tasks, &obs);
        a.absorb_disjoint(b);
    }

    #[test]
    fn batch_truths_are_reasonable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut de = DynamicExpertise::new(4, 0.5, MleConfig::default());
        // Warm the expertise.
        let warm = batch(0, 0, 30);
        let skills = [3.0, 2.0, 0.5, 0.4];
        let (o, _) = observe(&warm, &skills, &mut rng);
        de.ingest_batch(&warm, &o);
        // New tasks: truth recovery should beat the plain mean.
        let new = batch(0, 100, 30);
        let (o2, truths) = observe(&new, &skills, &mut rng);
        let out = de.ingest_batch(&new, &o2);
        let mut err_dyn = 0.0;
        let mut err_mean = 0.0;
        for (j, t) in new.iter().enumerate() {
            let o = o2.for_task(t.id).unwrap();
            let mean = o.iter().map(|&(_, x)| x).sum::<f64>() / o.len() as f64;
            err_dyn += (out.truths[&t.id].mu - truths[j]).abs();
            err_mean += (mean - truths[j]).abs();
        }
        assert!(err_dyn < err_mean, "dyn {err_dyn:.3} vs mean {err_mean:.3}");
    }

    /// Observations from only the listed `(user, skill)` pairs — the other
    /// users never report, which is what makes a dirty set sparse.
    fn observe_subset(tasks: &[Task], users: &[(u32, f64)], rng: &mut impl Rng) -> ObservationSet {
        let mut obs = ObservationSet::new();
        for t in tasks {
            let mu: f64 = rng.gen_range(0.0..20.0);
            for &(i, u) in users {
                let z = eta2_stats::normal::standard_sample(rng);
                obs.insert(UserId(i), t.id, mu + z / u);
            }
        }
        obs
    }

    #[test]
    fn sparse_dirty_set_is_bit_identical_to_dense() {
        // The incremental solver compacts its work vectors to the batch's
        // dirty users; `dense: true` restores the historical full-width
        // sweep. A non-reporter's candidate expertise is never read by the
        // truth or leave-one-out updates and never committed (commit
        // requires delta mass), so the two paths must agree bit for bit —
        // not approximately.
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut sparse = DynamicExpertise::new(12, 0.5, MleConfig::default());
        let mut dense = DynamicExpertise::new(12, 0.5, MleConfig::default());
        let mut dense_opts = IngestOptions::default();
        dense_opts.dense = true;
        for round in 0..4u32 {
            // Each round a different 3-user slice of the 12 reports.
            let tasks = batch(round % 2, round * 50, 10);
            let first = (round * 3) % 12;
            let users: Vec<(u32, f64)> =
                (0..3u32).map(|i| (first + i, 0.5 + f64::from(i))).collect();
            let obs = observe_subset(&tasks, &users, &mut rng);
            let a = sparse.ingest_batch(&tasks, &obs);
            let b = dense.ingest_batch_with(&tasks, &obs, dense_opts);
            assert_eq!(a, b, "outcome diverged on round {round}");
        }
        assert_eq!(sparse, dense, "committed state diverged");
    }

    #[test]
    fn warm_start_settles_replayed_batch_in_one_iteration() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut cold = DynamicExpertise::new(5, 0.5, MleConfig::default());
        let skills = [3.0, 1.5, 1.0, 0.7, 0.3];
        let tasks = batch(0, 0, 20);
        let (obs, _) = observe(&tasks, &skills, &mut rng);
        let first = cold.ingest_batch(&tasks, &obs);
        assert!(first.converged);
        let mut warmed = cold.clone();

        // Replaying the same batch cold needs at least two iterations (the
        // first pass has no previous estimate to compare against); seeded
        // with the previous epoch's truths it settles in one.
        let cold_again = cold.ingest_batch(&tasks, &obs);
        let mut opts = IngestOptions::default();
        opts.warm = Some(&first.truths);
        let warm_again = warmed.ingest_batch_with(&tasks, &obs, opts);
        assert!(warm_again.converged);
        assert!(cold_again.iterations >= 2, "{}", cold_again.iterations);
        assert_eq!(warm_again.iterations, 1, "warm start did not short-cut");
        // Bounded divergence: stopping one step earlier keeps every truth
        // within the convergence tolerance of the cold trajectory.
        for (id, est) in &warm_again.truths {
            let c = cold_again.truths[id];
            assert!(
                relative_change(c.mu, est.mu) < 0.1,
                "{id:?}: warm {} vs cold {}",
                est.mu,
                c.mu
            );
        }
    }

    #[test]
    fn partial_or_nonfinite_warm_seeds_are_safe() {
        // A warm map covering only some of the batch (tasks first seen this
        // flush have no previous estimate) must neither panic nor change
        // the unseeded tasks' cold behaviour; non-finite seeds are ignored.
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut de = DynamicExpertise::new(4, 0.5, MleConfig::default());
        let skills = [2.0, 1.0, 0.8, 0.5];
        let old = batch(0, 0, 10);
        let (old_obs, _) = observe(&old, &skills, &mut rng);
        let first = de.ingest_batch(&old, &old_obs);

        let mut warm = first.truths.clone();
        warm.insert(
            TaskId(0),
            TruthEstimate {
                mu: f64::NAN,
                sigma: 1.0,
                fallback: false,
            },
        );
        // Re-flush the old tasks alongside brand-new ones.
        let mut tasks = old.clone();
        tasks.extend(batch(0, 100, 10));
        let (new_obs, _) = observe(&tasks[10..], &skills, &mut rng);
        let mut obs = old_obs.clone();
        obs.merge(&new_obs);
        let mut opts = IngestOptions::default();
        opts.warm = Some(&warm);
        let out = de.ingest_batch_with(&tasks, &obs, opts);
        assert!(out.converged);
        assert_eq!(out.truths.len(), 20);
        assert!(out.truths.values().all(|e| e.mu.is_finite()));
    }

    #[test]
    fn column_matches_matrix_materialization() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let mut de = DynamicExpertise::new(4, 0.5, MleConfig::default());
        for d in [0u32, 7] {
            let tasks = batch(d, 100 * d, 10);
            let (obs, _) = observe(&tasks, &[2.0, 1.0, 0.7, 0.4], &mut rng);
            de.ingest_batch(&tasks, &obs);
        }
        let m = de.matrix();
        // column() is Some for exactly the domains matrix() materializes,
        // with identical (default-filled) values — the serve layer's
        // per-domain cache depends on this equivalence.
        let materialized: Vec<DomainId> = m.domains().collect();
        for &d in &materialized {
            assert_eq!(de.column(d).as_deref(), Some(&m.column(d)[..]), "{d:?}");
        }
        assert!(de.column(DomainId(99)).is_none(), "unseen domain");
    }
}
