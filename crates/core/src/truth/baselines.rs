//! The comparison truth-discovery approaches of the paper's §6.3.
//!
//! All four methods infer one *global* reliability per user (no expertise
//! domains) and estimate truth as a reliability-weighted mean. Hubs &
//! Authorities, Average·Log and TruthFinder were originally defined over
//! categorical claims; §6.3 applies them to numerical crowdsourcing data,
//! and we use the standard numerical adaptation (as in the CRH line of
//! work): the *credibility* of an observation is a Gaussian kernel of its
//! normalized distance to the current truth estimate,
//! `c_ij = exp(−((x_ij − μ̂_j)/std_j)²/2)`, with each method's own
//! source-weight recurrence on top, iterated to a fixed point.

use crate::model::{ObservationSet, TaskId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of one baseline truth-discovery run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineResult {
    /// Estimated truth per task.
    pub truths: BTreeMap<TaskId, f64>,
    /// Per-user reliability, normalized to mean 1 over users that provided
    /// data (users without data keep 1.0).
    pub reliability: Vec<f64>,
    /// Fixed-point iterations executed.
    pub iterations: usize,
}

/// A truth-discovery method that infers per-user reliability.
///
/// This trait is object-safe so the evaluation harness can iterate over a
/// `Vec<Box<dyn TruthMethod>>` of approaches.
pub trait TruthMethod {
    /// Short display name (matches the paper's legend).
    fn name(&self) -> &'static str;

    /// Estimates truths and user reliability from `obs` over `n_users`
    /// users.
    fn estimate(&self, obs: &ObservationSet, n_users: usize) -> BaselineResult;
}

/// Shared state for the iterative baselines.
struct IterState {
    /// Task order (stable).
    tasks: Vec<TaskId>,
    /// Observations per task, parallel to `tasks`.
    obs: Vec<Vec<(UserId, f64)>>,
    /// Per-task unweighted std (floored) for error normalization.
    std: Vec<f64>,
    /// Per-user number of provided observations.
    provided: Vec<usize>,
}

impl IterState {
    fn build(obs: &ObservationSet, n_users: usize) -> Self {
        let tasks: Vec<TaskId> = obs.tasks().collect();
        let per_task: Vec<Vec<(UserId, f64)>> = tasks
            .iter()
            .map(|&t| obs.for_task(t).expect("task listed"))
            .collect();
        let std: Vec<f64> = per_task
            .iter()
            .map(|o| {
                let vals: Vec<f64> = o.iter().map(|&(_, x)| x).collect();
                eta2_stats::descriptive::population_std(&vals)
                    .unwrap_or(0.0)
                    .max(1e-6)
            })
            .collect();
        let mut provided = vec![0usize; n_users];
        for o in &per_task {
            for &(u, _) in o {
                provided[u.0 as usize] += 1;
            }
        }
        IterState {
            tasks,
            obs: per_task,
            std,
            provided,
        }
    }

    /// Weighted truth estimates given per-user weights.
    fn weighted_truths(&self, weights: &[f64]) -> Vec<f64> {
        self.obs
            .iter()
            .map(|o| {
                let mut wsum = 0.0;
                let mut wxsum = 0.0;
                for &(u, x) in o {
                    let w = weights[u.0 as usize].max(1e-9);
                    wsum += w;
                    wxsum += w * x;
                }
                wxsum / wsum
            })
            .collect()
    }

    /// Gaussian credibility of observation `x` for task index `j` given the
    /// current truth.
    fn credibility(&self, j: usize, x: f64, truth: f64) -> f64 {
        let e = (x - truth) / self.std[j];
        (-0.5 * e * e).exp()
    }

    fn finish(&self, truths: Vec<f64>, mut weights: Vec<f64>, iterations: usize) -> BaselineResult {
        // Normalize reliability to mean 1 over contributing users.
        let contributors: Vec<usize> = (0..weights.len())
            .filter(|&i| self.provided[i] > 0)
            .collect();
        if !contributors.is_empty() {
            let mean: f64 =
                contributors.iter().map(|&i| weights[i]).sum::<f64>() / contributors.len() as f64;
            if mean > 0.0 {
                for &i in &contributors {
                    weights[i] /= mean;
                }
            }
        }
        for (i, w) in weights.iter_mut().enumerate() {
            if self.provided[i] == 0 {
                *w = 1.0;
            }
        }
        BaselineResult {
            truths: self.tasks.iter().copied().zip(truths).collect(),
            reliability: weights,
            iterations,
        }
    }
}

/// Maximum relative movement between two truth vectors.
fn max_rel_change(old: &[f64], new: &[f64]) -> f64 {
    old.iter()
        .zip(new)
        .map(|(&a, &b)| (b - a).abs() / a.abs().max(1e-9))
        .fold(0.0, f64::max)
}

/// The lower-bound baseline: the truth is the plain mean of the observed
/// data, every user equally reliable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanBaseline;

impl TruthMethod for MeanBaseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn estimate(&self, obs: &ObservationSet, n_users: usize) -> BaselineResult {
        let st = IterState::build(obs, n_users);
        let weights = vec![1.0; n_users];
        let truths = st.weighted_truths(&weights);
        st.finish(truths, weights, 1)
    }
}

/// Hubs & Authorities (Kleinberg 1999, as adapted by the truth-discovery
/// literature): a source's reliability is the *sum* of the credibility of
/// the data it provides; a datum's credibility derives from the reliability
/// of its sources (here, through the weighted truth estimate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HubsAuthorities {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Relative truth-change tolerance for the fixed point.
    pub tolerance: f64,
}

impl Default for HubsAuthorities {
    fn default() -> Self {
        HubsAuthorities {
            max_iterations: 50,
            tolerance: 1e-4,
        }
    }
}

impl TruthMethod for HubsAuthorities {
    fn name(&self) -> &'static str {
        "Hubs and Authorities"
    }

    fn estimate(&self, obs: &ObservationSet, n_users: usize) -> BaselineResult {
        let st = IterState::build(obs, n_users);
        let mut weights = vec![1.0; n_users];
        let mut truths = st.weighted_truths(&weights);
        let mut iterations = 0;
        while iterations < self.max_iterations {
            iterations += 1;
            // Reliability: sum of credibilities of provided data.
            let mut next = vec![0.0; n_users];
            for (j, o) in st.obs.iter().enumerate() {
                for &(u, x) in o {
                    next[u.0 as usize] += st.credibility(j, x, truths[j]);
                }
            }
            // L1-normalize to keep the scale bounded (as Hubs & Authorities
            // normalizes its score vectors each round).
            let sum: f64 = next.iter().sum();
            if sum > 0.0 {
                for w in &mut next {
                    *w = *w / sum * n_users as f64;
                }
            }
            weights = next;
            let new_truths = st.weighted_truths(&weights);
            let delta = max_rel_change(&truths, &new_truths);
            truths = new_truths;
            if delta < self.tolerance {
                break;
            }
        }
        st.finish(truths, weights, iterations)
    }
}

/// Average·Log (Pasternack & Roth 2010): reliability is the *average*
/// credibility of a source's data multiplied by the logarithm of how much
/// data it provides — rewarding prolific, consistent sources.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AverageLog {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Relative truth-change tolerance.
    pub tolerance: f64,
}

impl Default for AverageLog {
    fn default() -> Self {
        AverageLog {
            max_iterations: 50,
            tolerance: 1e-4,
        }
    }
}

impl TruthMethod for AverageLog {
    fn name(&self) -> &'static str {
        "Average-Log"
    }

    fn estimate(&self, obs: &ObservationSet, n_users: usize) -> BaselineResult {
        let st = IterState::build(obs, n_users);
        let mut weights = vec![1.0; n_users];
        let mut truths = st.weighted_truths(&weights);
        let mut iterations = 0;
        while iterations < self.max_iterations {
            iterations += 1;
            let mut cred_sum = vec![0.0; n_users];
            for (j, o) in st.obs.iter().enumerate() {
                for &(u, x) in o {
                    cred_sum[u.0 as usize] += st.credibility(j, x, truths[j]);
                }
            }
            for i in 0..n_users {
                let n = st.provided[i];
                weights[i] = if n > 0 {
                    (cred_sum[i] / n as f64) * (1.0 + n as f64).ln()
                } else {
                    0.0
                };
            }
            let new_truths = st.weighted_truths(&weights);
            let delta = max_rel_change(&truths, &new_truths);
            truths = new_truths;
            if delta < self.tolerance {
                break;
            }
        }
        st.finish(truths, weights, iterations)
    }
}

/// TruthFinder (Yin, Han & Yu 2008), continuous adaptation: observation
/// confidences combine the trustworthiness scores `τ = −ln(1 − t)` of all
/// sources whose values *imply* it (Gaussian implication kernel), squashed
/// through a dampened logistic; a source's trustworthiness is the average
/// confidence of its observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TruthFinder {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Absolute trustworthiness-change tolerance.
    pub tolerance: f64,
    /// Dampening factor γ of the logistic (0.3 in the original paper).
    pub dampening: f64,
    /// Initial source trustworthiness (0.9 in the original paper).
    pub initial_trust: f64,
}

impl Default for TruthFinder {
    fn default() -> Self {
        TruthFinder {
            max_iterations: 50,
            tolerance: 1e-4,
            dampening: 0.3,
            initial_trust: 0.9,
        }
    }
}

impl TruthMethod for TruthFinder {
    fn name(&self) -> &'static str {
        "TruthFinder"
    }

    fn estimate(&self, obs: &ObservationSet, n_users: usize) -> BaselineResult {
        let st = IterState::build(obs, n_users);
        let mut trust = vec![self.initial_trust; n_users];
        let mut truths = st.weighted_truths(&vec![1.0; n_users]);
        let mut iterations = 0;
        while iterations < self.max_iterations {
            iterations += 1;
            let tau: Vec<f64> = trust
                .iter()
                .map(|&t| -(1.0 - t.clamp(0.0, 1.0 - 1e-9)).ln())
                .collect();

            let mut conf_sum = vec![0.0; n_users];
            for (j, o) in st.obs.iter().enumerate() {
                // Confidence score of each observation: trustworthiness of
                // all sources, weighted by how strongly their value implies
                // this one.
                let mut confs = Vec::with_capacity(o.len());
                for &(_, x) in o {
                    let mut score = 0.0;
                    for &(u2, x2) in o {
                        let imp = (-((x - x2) / st.std[j]).abs()).exp();
                        score += tau[u2.0 as usize] * imp;
                    }
                    let conf = 1.0 / (1.0 + (-self.dampening * score).exp());
                    confs.push(conf);
                }
                // Truth: confidence-weighted mean.
                let wsum: f64 = confs.iter().sum();
                truths[j] =
                    o.iter().zip(&confs).map(|(&(_, x), &c)| c * x).sum::<f64>() / wsum.max(1e-12);
                for (&(u, _), &c) in o.iter().zip(&confs) {
                    conf_sum[u.0 as usize] += c;
                }
            }

            let mut delta = 0.0f64;
            for i in 0..n_users {
                if st.provided[i] > 0 {
                    let new_t = (conf_sum[i] / st.provided[i] as f64).clamp(0.0, 1.0 - 1e-9);
                    delta = delta.max((new_t - trust[i]).abs());
                    trust[i] = new_t;
                }
            }
            if delta < self.tolerance {
                break;
            }
        }
        st.finish(truths, trust, iterations)
    }
}

/// CRH — Conflict Resolution on Heterogeneous data (Li et al., SIGMOD
/// 2014) — the de-facto standard numeric truth-discovery method. Not one of
/// the paper's comparison approaches; included as an extension because it
/// is the method most reproduction users ask to compare against.
///
/// Iterates: truths are weight-weighted means; source weights are
/// `w_i = −ln(L_i / Σ_{i'} L_{i'})` where `L_i` is the source's total
/// normalized squared loss against the current truths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crh {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Relative truth-change tolerance.
    pub tolerance: f64,
}

impl Default for Crh {
    fn default() -> Self {
        Crh {
            max_iterations: 50,
            tolerance: 1e-4,
        }
    }
}

impl TruthMethod for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn estimate(&self, obs: &ObservationSet, n_users: usize) -> BaselineResult {
        let st = IterState::build(obs, n_users);
        let mut weights = vec![1.0; n_users];
        let mut truths = st.weighted_truths(&weights);
        let mut iterations = 0;
        while iterations < self.max_iterations {
            iterations += 1;
            // Per-source total loss against the current truths.
            let mut loss = vec![0.0f64; n_users];
            for (j, o) in st.obs.iter().enumerate() {
                for &(u, x) in o {
                    let e = (x - truths[j]) / st.std[j];
                    loss[u.0 as usize] += e * e;
                }
            }
            let total: f64 = loss.iter().sum::<f64>().max(1e-12);
            for i in 0..n_users {
                weights[i] = if st.provided[i] > 0 {
                    // Floor the ratio so a perfect source gets a large but
                    // finite weight.
                    (-((loss[i] / total).max(1e-12)).ln()).max(1e-6)
                } else {
                    0.0
                };
            }
            let new_truths = st.weighted_truths(&weights);
            let delta = max_rel_change(&truths, &new_truths);
            truths = new_truths;
            if delta < self.tolerance {
                break;
            }
        }
        st.finish(truths, weights, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    /// Observations where user 0 is accurate and the rest are noisy.
    fn skewed_world(seed: u64, m: u32) -> (ObservationSet, Vec<f64>) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut obs = ObservationSet::new();
        let mut truths = Vec::new();
        for j in 0..m {
            let mu: f64 = rng.gen_range(0.0..20.0);
            truths.push(mu);
            let z = eta2_stats::normal::standard_sample(&mut rng);
            obs.insert(UserId(0), TaskId(j), mu + 0.2 * z);
            for i in 1..5u32 {
                let z = eta2_stats::normal::standard_sample(&mut rng);
                obs.insert(UserId(i), TaskId(j), mu + 3.0 * z);
            }
        }
        (obs, truths)
    }

    fn methods() -> Vec<Box<dyn TruthMethod>> {
        vec![
            Box::new(MeanBaseline),
            Box::new(HubsAuthorities::default()),
            Box::new(AverageLog::default()),
            Box::new(TruthFinder::default()),
            Box::new(Crh::default()),
        ]
    }

    #[test]
    fn names_match_paper_legend_plus_crh_extension() {
        let names: Vec<&str> = methods().iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec![
                "Baseline",
                "Hubs and Authorities",
                "Average-Log",
                "TruthFinder",
                "CRH"
            ]
        );
    }

    #[test]
    fn all_methods_produce_truth_per_task() {
        let (obs, _) = skewed_world(1, 10);
        for m in methods() {
            let r = m.estimate(&obs, 5);
            assert_eq!(r.truths.len(), 10, "{}", m.name());
            assert!(r.truths.values().all(|v| v.is_finite()), "{}", m.name());
            assert_eq!(r.reliability.len(), 5);
        }
    }

    #[test]
    fn reliability_methods_identify_the_accurate_user() {
        let (obs, _) = skewed_world(2, 60);
        for m in methods().into_iter().skip(1) {
            let r = m.estimate(&obs, 5);
            let best = r
                .reliability
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            assert_eq!(best, 0, "{} picked user {best}", m.name());
        }
    }

    #[test]
    fn weighted_methods_beat_the_mean() {
        let (obs, truths) = skewed_world(3, 80);
        let mean_err = total_error(&MeanBaseline.estimate(&obs, 5), &truths);
        for m in methods().into_iter().skip(1) {
            let err = total_error(&m.estimate(&obs, 5), &truths);
            assert!(
                err < mean_err,
                "{}: {err:.3} not below mean {mean_err:.3}",
                m.name()
            );
        }
    }

    fn total_error(r: &BaselineResult, truths: &[f64]) -> f64 {
        r.truths
            .values()
            .zip(truths)
            .map(|(&est, &t)| (est - t).abs())
            .sum()
    }

    #[test]
    fn reliability_normalized_to_mean_one() {
        let (obs, _) = skewed_world(4, 30);
        for m in methods() {
            let r = m.estimate(&obs, 5);
            let mean: f64 = r.reliability.iter().sum::<f64>() / 5.0;
            assert!((mean - 1.0).abs() < 1e-9, "{}: mean = {mean}", m.name());
        }
    }

    #[test]
    fn users_without_data_default_to_one() {
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 1.0);
        obs.insert(UserId(1), TaskId(0), 1.1);
        for m in methods() {
            let r = m.estimate(&obs, 4);
            assert_eq!(r.reliability[2], 1.0, "{}", m.name());
            assert_eq!(r.reliability[3], 1.0, "{}", m.name());
        }
    }

    #[test]
    fn empty_observations_yield_empty_truths() {
        for m in methods() {
            let r = m.estimate(&ObservationSet::new(), 3);
            assert!(r.truths.is_empty(), "{}", m.name());
            assert_eq!(r.reliability, vec![1.0; 3]);
        }
    }

    #[test]
    fn identical_observations_give_exact_truth() {
        let mut obs = ObservationSet::new();
        for i in 0..4u32 {
            obs.insert(UserId(i), TaskId(0), 42.0);
        }
        for m in methods() {
            let r = m.estimate(&obs, 4);
            assert!(
                (r.truths[&TaskId(0)] - 42.0).abs() < 1e-9,
                "{}: {}",
                m.name(),
                r.truths[&TaskId(0)]
            );
        }
    }

    #[test]
    fn iteration_counts_bounded() {
        let (obs, _) = skewed_world(5, 20);
        for m in methods() {
            let r = m.estimate(&obs, 5);
            assert!(r.iterations <= 50, "{}", m.name());
            assert!(r.iterations >= 1, "{}", m.name());
        }
    }
}
