//! Expertise-aware truth analysis by maximum-likelihood estimation
//! (paper §4.1).
//!
//! The observation model is `x_ij ~ N(μ_j, (σ_j / u_i^{d_j})²)` (§2.4).
//! Setting the derivatives of the log-likelihood (paper Eq. 4) to zero gives
//! the coordinate updates iterated here:
//!
//! ```text
//! μ_j  = Σ_i ω_ij u_ij² x_ij   /  Σ_i ω_ij u_ij²
//! σ_j² = Σ_i ω_ij u_ij² (x_ij − μ_j)²  /  Σ_i ω_ij
//! u_i^k = sqrt( Σ_j 1[d_j=k] ω_ij  /  Σ_j 1[d_j=k] ω_ij (x_ij − μ_j)²/σ_j² )
//! ```
//!
//! (the camera-ready's typeset Eq. 5/6 are OCR-damaged in our source; these
//! forms are re-derived from Eq. 4 and are consistent with the incremental
//! N/D update the paper gives in Eqs. 7–9 — see DESIGN.md §2).
//!
//! Iteration starts from `u = 1` for every user and domain and stops when
//! every task's truth estimate changes by less than 5 % between successive
//! iterations (§4.1), with a hard iteration cap as a safety net.
//!
//! # Performance architecture
//!
//! The solver remaps the batch once into dense per-domain shards in
//! structure-of-arrays form: contiguous observation arrays (`obs_slot`,
//! `obs_x`) plus flat per-reporter accumulator columns indexed by *compact
//! slot* — users are renumbered per shard to the batch's distinct
//! reporters, so per-batch scratch is sized to who actually reported, not
//! to the total user space (see DESIGN.md §15). The inner loops are
//! branch-free: the `expertise_floor` clamp is hoisted into a pre-clamped,
//! pre-squared weight column recomputed once per iteration, the
//! leave-one-out decision is made per task (two loop bodies, no
//! per-observation branch), and the σ-normalized error multiplies by a
//! precomputed `1/σ_j` instead of dividing. The μ/σ reductions accumulate
//! in four independent f64 lanes so the adds pipeline (and autovectorize)
//! instead of serializing on the FP-add latency; each leave-one-out
//! reference is still a constant-time subtraction from the task's weighted
//! sums, and the divergence fallback reuses the plain observation sums
//! accumulated at batch build. All buffers persist across iterations.
//!
//! The batch build itself is kept off the critical path's back: a sizing
//! pre-pass reserves every shard column up front (no mid-batch doubling
//! copies) and the user→slot renumbering runs through a flat
//! open-addressing [`SlotMap`] rather than an ordered map, so the
//! one-lookup-per-observation build costs a few ns per report.
//!
//! Because the expertise update touches only its own domain, shards are
//! independent within an iteration and can run on worker threads
//! ([`MleConfig::threads`]) with results **bit-identical** to sequential
//! execution. The pre-optimization solver is preserved verbatim in
//! [`crate::truth::reference`]; lane reassociation and the `1/σ` multiply
//! change the floating-point rounding, so agreement with it is within the
//! documented [`PARITY_REL_TOL`] (checked by [`results_match`] and the
//! property tests here), not bit-exact.

use crate::model::{DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the MLE iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MleConfig {
    /// Relative truth-change threshold below which the iteration is
    /// considered converged (the paper uses 5 %).
    pub convergence_threshold: f64,
    /// Hard cap on coordinate-update iterations.
    pub max_iterations: usize,
    /// Lower clamp on expertise: `u = 0` would mean infinite observation
    /// variance, which the likelihood cannot represent.
    pub expertise_floor: f64,
    /// Upper clamp on expertise, guarding the degenerate "single
    /// observation fits exactly" blow-up.
    pub expertise_cap: f64,
    /// Lower clamp on the base number `σ_j`.
    pub sigma_floor: f64,
    /// Score each user's error against the *leave-one-out* truth estimate
    /// (their own observation excluded) in the expertise update.
    ///
    /// The paper's Eq. 6 uses the plain estimate, which is self-fulfilling:
    /// once a user's weight dominates the expertise²-weighted mean, their
    /// error is measured against (almost) their own value, collapses to
    /// zero, and their expertise diverges regardless of actual quality.
    /// Leave-one-out scoring removes the self-term and is the default; set
    /// to `false` for the paper-exact update (the
    /// `ablation_loo_expertise` bench quantifies the difference).
    pub leave_one_out: bool,
    /// Pseudo-count prior pulling small-sample expertise toward the
    /// initialization `u = 1`: the estimate becomes
    /// `u = sqrt((N + s)/(D + s))` with `s = prior_strength`.
    ///
    /// A user's expertise in a domain is often estimated from one or two
    /// observations per time step; the raw ratio `sqrt(N/D)` is then wildly
    /// noisy, and the expertise²-weighted mean amplifies that noise. The
    /// prior (a MAP estimate under a Gamma prior on `u²`) vanishes as data
    /// accumulates. `0` disables it (the paper-exact update).
    pub prior_strength: f64,
    /// Mean squared normalized error above which a user's batch expertise
    /// update is quarantined (discarded) by the dynamic update instead of
    /// committed — see `truth::dynamic`. The default is far above anything
    /// honest noise produces (clean-data errors are a few σ², i.e. ≲ 10²),
    /// so only gross corruption or collusion trips it. Must be finite so
    /// configs survive a JSON round trip.
    #[serde(default = "default_quarantine_threshold")]
    pub quarantine_threshold: f64,
    /// Divide the σ_j² sum of squares by the weight sum `Σ ω u²` instead
    /// of the observation count.
    ///
    /// The paper's Eq. 5 (as re-derived from Eq. 4 — see the module docs)
    /// normalizes the expertise-weighted sum of squares by `Σ_i ω_ij`,
    /// the plain observation count, which is what the default computes.
    /// The weighted-truth literature instead matches the denominator to
    /// the weighting scheme (a weighted mean of squared residuals, i.e.
    /// divide by `Σ ω u²`), which keeps σ comparable when expertise is
    /// far from 1. Both are supported; the default stays paper-as-written
    /// so published baselines and the dynamic update are unchanged. See
    /// DESIGN.md §15.4.
    #[serde(default)]
    pub sigma_weighted_denominator: bool,
    /// Worker threads for the per-domain coordinate updates: `1` runs
    /// sequentially (the default), `0` uses one worker per available core,
    /// `n` uses exactly `n`. Domains are independent within an iteration,
    /// so parallel execution is bit-identical to sequential — this is a
    /// throughput knob, never an accuracy trade-off.
    #[serde(default = "default_mle_threads")]
    pub threads: usize,
}

fn default_quarantine_threshold() -> f64 {
    1e9
}

fn default_mle_threads() -> usize {
    1
}

impl Default for MleConfig {
    fn default() -> Self {
        MleConfig {
            convergence_threshold: 0.05,
            max_iterations: 100,
            expertise_floor: 1e-3,
            expertise_cap: 50.0,
            sigma_floor: 1e-6,
            leave_one_out: true,
            prior_strength: 1.0,
            quarantine_threshold: default_quarantine_threshold(),
            sigma_weighted_denominator: false,
            threads: default_mle_threads(),
        }
    }
}

/// Estimated truth `μ̂_j` and base number `σ̂_j` for one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthEstimate {
    /// Estimated ground truth.
    pub mu: f64,
    /// Estimated base number (the normalization scale of the task).
    pub sigma: f64,
    /// Degradation provenance: `true` when this estimate did not come from
    /// the full expertise-weighted MLE — the task was under-observed (a
    /// single usable report) or the iteration diverged and the estimate
    /// fell back to the plain mean of the finite observations.
    #[serde(default)]
    pub fallback: bool,
}

/// The output of one MLE run.
#[derive(Debug, Clone, PartialEq)]
pub struct MleResult {
    /// Truth estimate per task (only tasks that had observations).
    pub truths: BTreeMap<TaskId, TruthEstimate>,
    /// Learned expertise for every user and every domain seen in the batch.
    pub expertise: ExpertiseMatrix,
    /// Coordinate-update iterations executed.
    pub iterations: usize,
    /// Whether the 5 % criterion was met before the iteration cap.
    pub converged: bool,
}

/// Minimal open-addressing map from global user id to compact shard slot.
///
/// The batch build does one lookup per observation, so this sits on the
/// ingest hot path: a Fibonacci-hashed linear probe over a flat
/// `(key, slot + 1)` table costs a few ns where `BTreeMap`'s pointer
/// chases cost tens — enough to dominate the whole solve once the
/// iteration passes are vectorized. Capacity is a power of two and grows
/// at 3/4 load; memory stays `O(distinct reporters)`.
struct SlotMap {
    /// `(key, slot + 1)`; `slot + 1 == 0` marks an empty bucket.
    table: Vec<(u32, u32)>,
    mask: usize,
    len: usize,
}

impl SlotMap {
    fn new() -> Self {
        SlotMap {
            table: vec![(0, 0); 16],
            mask: 15,
            len: 0,
        }
    }

    #[inline]
    fn bucket(key: u32, mask: usize) -> usize {
        (key.wrapping_mul(0x9e37_79b9) as usize) & mask
    }

    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        let mask = cap - 1;
        let mut table = vec![(0u32, 0u32); cap];
        for &(k, sp1) in &self.table {
            if sp1 != 0 {
                let mut i = Self::bucket(k, mask);
                while table[i].1 != 0 {
                    i = (i + 1) & mask;
                }
                table[i] = (k, sp1);
            }
        }
        self.table = table;
        self.mask = mask;
    }

    /// Slot of `key`, assigning `next` on first sight; the bool reports
    /// whether the assignment happened.
    #[inline]
    fn get_or_insert(&mut self, key: u32, next: u32) -> (u32, bool) {
        if (self.len + 1) * 4 > self.table.len() * 3 {
            self.grow();
        }
        let mut i = Self::bucket(key, self.mask);
        loop {
            let (k, sp1) = self.table[i];
            if sp1 == 0 {
                self.table[i] = (key, next + 1);
                self.len += 1;
                return (next, true);
            }
            if k == key {
                return (sp1 - 1, false);
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// One domain's dense slice of the batch, in structure-of-arrays form.
///
/// Tasks are grouped by domain with their original relative order
/// preserved, so every per-(domain, user) accumulation runs in exactly the
/// order the pre-optimization solver used — the grouping is a pure
/// reordering of independent work. Reporters are renumbered into compact
/// per-shard *slots* (first-report order), so every per-reporter column is
/// sized to the batch's distinct reporters rather than the total user
/// space.
struct Shard {
    domain: DomainId,
    /// Task ids, in original batch order restricted to this domain.
    ids: Vec<TaskId>,
    /// Observation offsets: task `j` owns `obs_*[task_off[j]..task_off[j+1]]`.
    task_off: Vec<usize>,
    /// Compact reporter slot of each observation (index into `slot_user`).
    obs_slot: Vec<u32>,
    obs_x: Vec<f64>,
    /// Plain per-task observation sums, accumulated once at batch build and
    /// reused by the divergence fallback (O(1) per repaired task).
    xsum: Vec<f64>,
    /// Slot → global user id, in first-report order.
    slot_user: Vec<u32>,
    /// User id → slot, used only during batch build.
    slot_of: SlotMap,
    /// Per-slot observation count — Eq. 6's N. Constant across iterations,
    /// so it is accumulated once at batch build, not per iteration.
    slot_n: Vec<f64>,
    mu: Vec<f64>,
    sigma: Vec<f64>,
    wsum: Vec<f64>,
    wxsum: Vec<f64>,
    prev_mu: Vec<f64>,
    /// Compact expertise column for this domain, indexed by slot.
    expertise: Vec<f64>,
    /// Pre-clamped, pre-squared weight `max(u, floor)²` per slot, refreshed
    /// once per iteration so the observation loops are branch-free gathers.
    w_col: Vec<f64>,
    /// Per-slot D (squared normalized error) accumulator for Eq. 6.
    acc_d: Vec<f64>,
}

impl Shard {
    fn new(domain: DomainId) -> Self {
        Shard {
            domain,
            ids: Vec::new(),
            task_off: vec![0],
            obs_slot: Vec::new(),
            obs_x: Vec::new(),
            xsum: Vec::new(),
            slot_user: Vec::new(),
            slot_of: SlotMap::new(),
            slot_n: Vec::new(),
            mu: Vec::new(),
            sigma: Vec::new(),
            wsum: Vec::new(),
            wxsum: Vec::new(),
            prev_mu: Vec::new(),
            expertise: Vec::new(),
            w_col: Vec::new(),
            acc_d: Vec::new(),
        }
    }

    /// Compact slot of `user`, assigning the next one on first report.
    fn slot_for(&mut self, user: u32) -> u32 {
        let next = self.slot_user.len() as u32;
        let (slot, inserted) = self.slot_of.get_or_insert(user, next);
        if inserted {
            self.slot_user.push(user);
            self.slot_n.push(0.0);
        }
        slot
    }

    /// Sizes the per-iteration buffers (allocated once, reused every
    /// iteration) and materializes the compact expertise column. Every
    /// per-reporter buffer is `O(distinct reporters)`, never
    /// `O(total users)`.
    fn finish(&mut self, initial: &ExpertiseMatrix) {
        let nt = self.ids.len();
        let ns = self.slot_user.len();
        self.mu = vec![0.0; nt];
        self.sigma = vec![0.0; nt];
        self.wsum = vec![0.0; nt];
        self.wxsum = vec![0.0; nt];
        self.prev_mu = vec![0.0; nt];
        self.expertise = self
            .slot_user
            .iter()
            .map(|&u| initial.get(UserId(u), self.domain))
            .collect();
        self.w_col = vec![0.0; ns];
        self.acc_d = vec![0.0; ns];
        #[cfg(test)]
        tests::note_user_column_alloc(ns);
    }

    /// One coordinate-update iteration over this domain's tasks. Reads and
    /// writes nothing outside the shard, which is what makes per-domain
    /// parallelism bit-identical to sequential execution.
    fn iterate(&mut self, cfg: &MleConfig) {
        // One relaxed load when metrics are off; when on, concurrent
        // shards bump the registry's lock-free counter cell in parallel.
        eta2_obs::counter("mle.shard_iterations", 1);
        // (0) Hoist the expertise floor out of the observation loops: one
        // clamp+square per reporter, then the hot loops are pure gathers.
        for s in 0..self.expertise.len() {
            let u = self.expertise[s].max(cfg.expertise_floor);
            self.w_col[s] = u * u;
        }

        // (1) μ_j and σ_j given current expertise. Both reductions run in
        // four independent f64 lanes (combined pairwise at the end) so the
        // adds pipeline instead of serializing on FP-add latency — this
        // reassociation is why agreement with `truth::reference` is within
        // [`PARITY_REL_TOL`] rather than bit-exact.
        for j in 0..self.ids.len() {
            let (lo, hi) = (self.task_off[j], self.task_off[j + 1]);
            let slots = &self.obs_slot[lo..hi];
            let xs = &self.obs_x[lo..hi];

            let mut lw = [0.0f64; 4];
            let mut lwx = [0.0f64; 4];
            let mut cs = slots.chunks_exact(4);
            let mut cx = xs.chunks_exact(4);
            for (s4, x4) in (&mut cs).zip(&mut cx) {
                for k in 0..4 {
                    let w = self.w_col[s4[k] as usize];
                    lw[k] += w;
                    lwx[k] += w * x4[k];
                }
            }
            for (&s1, &x1) in cs.remainder().iter().zip(cx.remainder()) {
                let w = self.w_col[s1 as usize];
                lw[0] += w;
                lwx[0] += w * x1;
            }
            let wsum = (lw[0] + lw[1]) + (lw[2] + lw[3]);
            let wxsum = (lwx[0] + lwx[1]) + (lwx[2] + lwx[3]);
            let mu = wxsum / wsum;

            let mut lss = [0.0f64; 4];
            let mut cs = slots.chunks_exact(4);
            let mut cx = xs.chunks_exact(4);
            for (s4, x4) in (&mut cs).zip(&mut cx) {
                for k in 0..4 {
                    let w = self.w_col[s4[k] as usize];
                    let d = x4[k] - mu;
                    lss[k] += w * d * d;
                }
            }
            for (&s1, &x1) in cs.remainder().iter().zip(cx.remainder()) {
                let w = self.w_col[s1 as usize];
                let d = x1 - mu;
                lss[0] += w * d * d;
            }
            let ss = (lss[0] + lss[1]) + (lss[2] + lss[3]);
            let denom = if cfg.sigma_weighted_denominator {
                wsum
            } else {
                (hi - lo) as f64
            };

            self.mu[j] = mu;
            self.sigma[j] = (ss / denom).sqrt().max(cfg.sigma_floor);
            self.wsum[j] = wsum;
            self.wxsum[j] = wxsum;
        }

        // (2) u_i^k given current truths: accumulate the D half of the N/D
        // ratio (N is constant and precomputed at build). The leave-one-out
        // truth is the task's weighted sums minus this observation's own
        // contribution — O(1), no per-user rescan. The LOO decision and the
        // σ division are hoisted per task, so the observation bodies are
        // branch- and divide-free.
        self.acc_d.fill(0.0);
        for j in 0..self.ids.len() {
            let (lo, hi) = (self.task_off[j], self.task_off[j + 1]);
            let slots = &self.obs_slot[lo..hi];
            let xs = &self.obs_x[lo..hi];
            let inv_sigma = 1.0 / self.sigma[j];
            if cfg.leave_one_out && hi - lo > 1 {
                let (wsum, wxsum) = (self.wsum[j], self.wxsum[j]);
                for (&s1, &xv) in slots.iter().zip(xs) {
                    let s = s1 as usize;
                    let w = self.w_col[s];
                    let reference = (wxsum - w * xv) / (wsum - w);
                    let e = (xv - reference) * inv_sigma;
                    self.acc_d[s] += e * e;
                }
            } else {
                let mu = self.mu[j];
                for (&s1, &xv) in slots.iter().zip(xs) {
                    let e = (xv - mu) * inv_sigma;
                    self.acc_d[s1 as usize] += e * e;
                }
            }
        }
        // (3) Expertise per slot. Every slot has at least one observation,
        // so there is no occupancy branch in this pass either.
        let prior = cfg.prior_strength;
        for i in 0..self.expertise.len() {
            let raw = ((self.slot_n[i] + prior) / (self.acc_d[i] + prior).max(1e-12)).sqrt();
            // NaN only arises when gross (finite but enormous)
            // observations overflow the error accumulator;
            // treat that as "no demonstrated expertise".
            self.expertise[i] = if raw.is_finite() {
                raw.clamp(cfg.expertise_floor, cfg.expertise_cap)
            } else {
                cfg.expertise_floor
            };
        }
    }
}

/// The expertise-aware MLE estimator of §4.1.
///
/// # Examples
///
/// ```
/// use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
/// use eta2_core::truth::mle::ExpertiseAwareMle;
///
/// let tasks: Vec<Task> = (0..4)
///     .map(|j| Task::new(TaskId(j), DomainId(0), 1.0, 1.0))
///     .collect();
/// let mut obs = ObservationSet::new();
/// for j in 0..4 {
///     obs.insert(UserId(0), TaskId(j), 10.0 + 0.01 * j as f64); // expert
///     obs.insert(UserId(1), TaskId(j), 10.0 + 3.0 * (j as f64 - 1.5)); // noisy
///     obs.insert(UserId(2), TaskId(j), 10.0 - 2.0 * (j as f64 - 1.5)); // noisy
/// }
/// let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 3);
/// let u0 = r.expertise.get(UserId(0), DomainId(0));
/// let u1 = r.expertise.get(UserId(1), DomainId(0));
/// assert!(u0 > u1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpertiseAwareMle {
    config: MleConfig,
}

impl ExpertiseAwareMle {
    /// Creates an estimator with the given configuration.
    pub fn new(config: MleConfig) -> Self {
        ExpertiseAwareMle { config }
    }

    /// The estimator configuration.
    pub fn config(&self) -> &MleConfig {
        &self.config
    }

    /// Runs the MLE from the paper's cold-start initialization
    /// (`u_i^k = 1` for all users and domains).
    pub fn estimate(&self, tasks: &[Task], obs: &ObservationSet, n_users: usize) -> MleResult {
        self.estimate_with_initial(tasks, obs, ExpertiseMatrix::new(n_users))
    }

    /// Runs the MLE starting from `initial` expertise — used by the dynamic
    /// update (§4.2), which warm-starts from the time-`T` values.
    ///
    /// Tasks without observations are skipped; observations for tasks not
    /// in `tasks` are ignored.
    pub fn estimate_with_initial(
        &self,
        tasks: &[Task],
        obs: &ObservationSet,
        initial: ExpertiseMatrix,
    ) -> MleResult {
        let _span = eta2_obs::span!("mle.solve");
        let cfg = &self.config;

        // Materialize the batch once into dense per-domain shards.
        // Non-finite observations (corrupted reports) are rejected here so
        // the coordinate updates only ever see finite data; a task left
        // with no usable observation is skipped entirely. Rejection events
        // fire in original task order, exactly as before the remap.
        let mut shards: Vec<Shard> = Vec::new();
        let mut shard_of: BTreeMap<DomainId, usize> = BTreeMap::new();
        // Original batch order as (shard, local index), for the provenance
        // pass at the end.
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut scratch: Vec<(u32, f64)> = Vec::new();

        // Sizing pre-pass: per-domain task and (unfiltered) observation
        // counts, so each shard reserves its columns once at creation and
        // the build loop below never reallocates mid-batch. The
        // observation columns dominate the build, and letting them
        // double-and-copy measurably dents solve throughput.
        let mut sizes: BTreeMap<DomainId, (usize, usize)> = BTreeMap::new();
        for t in tasks {
            let n_raw = obs.count_for_task(t.id);
            if n_raw > 0 {
                let e = sizes.entry(t.domain).or_insert((0, 0));
                e.0 += 1;
                e.1 += n_raw;
            }
        }

        for t in tasks {
            let Some(raw) = obs.for_task(t.id) else {
                continue;
            };
            let n_raw = raw.len();
            scratch.clear();
            scratch.extend(
                raw.into_iter()
                    .filter(|&(_, x)| x.is_finite())
                    .map(|(u, x)| (u.0, x)),
            );
            if scratch.len() < n_raw {
                eta2_obs::counter("mle.rejected_observations", (n_raw - scratch.len()) as u64);
            }
            if scratch.is_empty() {
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "mle",
                    task: t.id.0 as u64,
                    observations: 0,
                    reason: "no_finite_observations",
                });
                continue;
            }
            let si = *shard_of.entry(t.domain).or_insert_with(|| {
                let mut s = Shard::new(t.domain);
                if let Some(&(nt, no)) = sizes.get(&t.domain) {
                    s.ids.reserve(nt);
                    s.task_off.reserve(nt + 1);
                    s.xsum.reserve(nt);
                    s.obs_slot.reserve(no);
                    s.obs_x.reserve(no);
                }
                shards.push(s);
                shards.len() - 1
            });
            let s = &mut shards[si];
            order.push((si, s.ids.len()));
            s.ids.push(t.id);
            let mut xsum = 0.0;
            for &(u, x) in &scratch {
                let slot = s.slot_for(u);
                s.obs_slot.push(slot);
                s.slot_n[slot as usize] += 1.0;
                s.obs_x.push(x);
                xsum += x;
            }
            s.xsum.push(xsum);
            s.task_off.push(s.obs_x.len());
        }
        for s in &mut shards {
            s.finish(&initial);
        }

        let n_tasks = order.len();
        let threads = eta2_par::Parallelism::from_threads(cfg.threads)
            .resolve()
            .min(shards.len().max(1));

        let mut have_prev = false;
        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iterations.max(1) {
            iterations += 1;

            // Each shard's iteration touches only its own domain, so the
            // parallel schedule cannot change any floating-point result.
            eta2_par::for_each_shard(&mut shards, threads, |_, shard| shard.iterate(cfg));

            // Trace the iteration. The closure only runs with tracing on,
            // so the delta scan costs nothing in normal operation.
            eta2_obs::emit_with(|| eta2_obs::Event::MleIteration {
                source: "mle",
                iteration: iterations as u64,
                tasks: n_tasks as u64,
                max_rel_delta: if !have_prev || n_tasks == 0 {
                    None
                } else {
                    Some(
                        shards
                            .iter()
                            .flat_map(|s| s.prev_mu.iter().zip(&s.mu))
                            .map(|(&p, &m)| relative_change(p, m))
                            .fold(0.0, f64::max),
                    )
                },
            });

            // (3) Convergence: every truth estimate moved < threshold
            // relative to its previous value.
            if have_prev && n_tasks > 0 {
                let all_small = shards.iter().all(|s| {
                    s.prev_mu
                        .iter()
                        .zip(&s.mu)
                        .all(|(&p, &m)| relative_change(p, m) < cfg.convergence_threshold)
                });
                if all_small {
                    converged = true;
                    break;
                }
            }
            for s in &mut shards {
                s.prev_mu.copy_from_slice(&s.mu);
            }
            have_prev = true;
        }

        // Degradation provenance, in original batch order. A single-
        // observation task's "MLE" is just that observation echoed back
        // (mu = x, sigma = floor) — mark it as the mean-baseline fallback
        // it effectively is. And if the iteration somehow produced a
        // non-finite estimate, repair it with the plain mean using the
        // observation sums accumulated at batch build — O(1) per task, no
        // rescan of the observations.
        let mut fallback: Vec<Vec<bool>> =
            shards.iter().map(|s| vec![false; s.ids.len()]).collect();
        for &(si, j) in &order {
            let s = &mut shards[si];
            let len = s.task_off[j + 1] - s.task_off[j];
            if !s.mu[j].is_finite() || !s.sigma[j].is_finite() {
                s.mu[j] = s.xsum[j] / len as f64;
                s.sigma[j] = cfg.sigma_floor;
                fallback[si][j] = true;
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "mle",
                    task: s.ids[j].0 as u64,
                    observations: len as u64,
                    reason: "diverged",
                });
            } else if len == 1 {
                fallback[si][j] = true;
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "mle",
                    task: s.ids[j].0 as u64,
                    observations: 1,
                    reason: "single_observation",
                });
            }
        }

        let mut truths: BTreeMap<TaskId, TruthEstimate> = BTreeMap::new();
        for (si, s) in shards.iter().enumerate() {
            for j in 0..s.ids.len() {
                truths.insert(
                    s.ids[j],
                    TruthEstimate {
                        mu: s.mu[j],
                        sigma: s.sigma[j],
                        fallback: fallback[si][j],
                    },
                );
            }
        }

        // Write the compact columns back. Slots exist exactly for the
        // (domain, user) pairs with at least one observation, so this
        // touches the same set the original per-slot update wrote.
        let mut expertise = initial;
        for s in &shards {
            for (slot, &u) in s.slot_user.iter().enumerate() {
                expertise.set(UserId(u), s.domain, s.expertise[slot]);
            }
        }

        // Gated invariants (ETA2_CHECK): every published estimate is finite
        // with sigma at or above the floor; every expertise value the run
        // touched is finite and clamped into [floor, cap]; and a `converged`
        // claim really means the paper's 5 % criterion held on the last
        // iteration (fallback-repaired tasks excluded — their mu was
        // replaced after the loop).
        if eta2_check::enabled() {
            for (id, est) in &truths {
                eta2_check::invariant!(
                    "mle.truth_finite",
                    est.mu.is_finite() && est.sigma.is_finite() && est.sigma >= cfg.sigma_floor,
                    "task {id:?}: mu {} sigma {} (floor {})",
                    est.mu,
                    est.sigma,
                    cfg.sigma_floor
                );
            }
            for s in &shards {
                for &i in &s.slot_user {
                    let u = expertise.get(UserId(i), s.domain);
                    eta2_check::invariant!(
                        "mle.expertise_bounds",
                        u.is_finite() && u >= cfg.expertise_floor && u <= cfg.expertise_cap,
                        "user {i} in {:?}: expertise {u} outside [{}, {}]",
                        s.domain,
                        cfg.expertise_floor,
                        cfg.expertise_cap
                    );
                }
            }
            if converged {
                for (si, s) in shards.iter().enumerate() {
                    for j in 0..s.ids.len() {
                        if !fallback[si][j] {
                            let d = relative_change(s.prev_mu[j], s.mu[j]);
                            eta2_check::invariant!(
                                "mle.five_pct_criterion",
                                d < cfg.convergence_threshold,
                                "task {:?}: converged claimed but last delta {d} >= {}",
                                s.ids[j],
                                cfg.convergence_threshold
                            );
                        }
                    }
                }
            }
        }

        eta2_obs::emit_with(|| eta2_obs::Event::MleOutcome {
            source: "mle",
            iterations: iterations as u64,
            converged,
            tasks: n_tasks as u64,
        });

        MleResult {
            truths,
            expertise,
            iterations,
            converged,
        }
    }

    /// Single-pass truth estimation with *fixed* expertise: just Eq. 5,
    /// no expertise update. Used to bootstrap the dynamic update (§4.2,
    /// "μ_j and σ_j are first estimated using Equations 5, in which the
    /// user expertise is initialized to the original values at time T").
    pub fn truths_given_expertise(
        &self,
        tasks: &[Task],
        obs: &ObservationSet,
        expertise: &ExpertiseMatrix,
    ) -> BTreeMap<TaskId, TruthEstimate> {
        let cfg = &self.config;
        let mut truths = BTreeMap::new();
        for t in tasks {
            let Some(raw) = obs.for_task(t.id) else {
                continue;
            };
            let observations: Vec<(UserId, f64)> =
                raw.into_iter().filter(|&(_, x)| x.is_finite()).collect();
            if observations.is_empty() {
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: 0,
                    reason: "no_finite_observations",
                });
                continue;
            }
            let mut wsum = 0.0;
            let mut wxsum = 0.0;
            let mut xsum = 0.0;
            for &(user, x) in &observations {
                let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                wsum += u * u;
                wxsum += u * u * x;
                xsum += x;
            }
            let mu = wxsum / wsum;
            let mut ss = 0.0;
            for &(user, x) in &observations {
                let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                ss += u * u * (x - mu) * (x - mu);
            }
            let denom = if cfg.sigma_weighted_denominator {
                wsum
            } else {
                observations.len() as f64
            };
            let sigma = (ss / denom).sqrt().max(cfg.sigma_floor);
            let est = if mu.is_finite() && sigma.is_finite() {
                TruthEstimate {
                    mu,
                    sigma,
                    fallback: observations.len() == 1,
                }
            } else {
                // Enormous-but-finite observations can overflow the
                // weighted sums; degrade to the plain mean (already
                // accumulated above — no rescan).
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: observations.len() as u64,
                    reason: "diverged",
                });
                TruthEstimate {
                    mu: xsum / observations.len() as f64,
                    sigma: cfg.sigma_floor,
                    fallback: true,
                }
            };
            truths.insert(t.id, est);
        }
        truths
    }
}

/// Relative change `|new − old| / max(|old|, 1e-9)`.
pub(crate) fn relative_change(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.abs().max(1e-9)
}

/// Documented numerical tolerance between the vectorized solver and the
/// frozen [`crate::truth::reference`] implementation.
///
/// The 4-lane accumulators reassociate floating-point additions and the
/// N/D pass multiplies by a precomputed `1/σ_j` instead of dividing, so
/// the optimized solver is no longer bit-identical to the reference; per
/// coordinate update the rounding differences are a few ULP, and the 5 %
/// convergence criterion keeps them from compounding across iterations.
/// [`results_match`] at this tolerance is the parity contract checked by
/// the property suites, `perf_suite`, and the `mle_vs_reference`
/// differential oracle. Per-domain *parallelism*, by contrast, remains
/// bit-identical to sequential execution (shards are independent), and is
/// still asserted with `==`.
pub const PARITY_REL_TOL: f64 = 1e-9;

/// Compares two MLE results structurally and numerically.
///
/// Structure must match exactly: the same task set, the same per-task
/// fallback provenance, the same iteration count and convergence verdict,
/// and the same expertise domain set. Every numeric value (truth μ, base
/// number σ, expertise u) must satisfy `|a − b| ≤ tol · max(|a|, |b|, 1)`
/// — a mixed relative/absolute criterion so near-zero truths don't demand
/// absurd absolute precision. Returns a description of the first mismatch.
pub fn results_match(a: &MleResult, b: &MleResult, tol: f64) -> Result<(), String> {
    fn close(a: f64, b: f64, tol: f64) -> bool {
        a == b || (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
    }
    if a.iterations != b.iterations {
        return Err(format!("iterations {} vs {}", a.iterations, b.iterations));
    }
    if a.converged != b.converged {
        return Err(format!("converged {} vs {}", a.converged, b.converged));
    }
    if a.truths.len() != b.truths.len() {
        return Err(format!("{} tasks vs {}", a.truths.len(), b.truths.len()));
    }
    for (id, ea) in &a.truths {
        let Some(eb) = b.truths.get(id) else {
            return Err(format!("task {id:?} missing on one side"));
        };
        if ea.fallback != eb.fallback {
            return Err(format!(
                "task {id:?}: fallback {} vs {}",
                ea.fallback, eb.fallback
            ));
        }
        if !close(ea.mu, eb.mu, tol) {
            return Err(format!("task {id:?}: mu {} vs {}", ea.mu, eb.mu));
        }
        if !close(ea.sigma, eb.sigma, tol) {
            return Err(format!("task {id:?}: sigma {} vs {}", ea.sigma, eb.sigma));
        }
    }
    let da: Vec<DomainId> = a.expertise.domains().collect();
    let db: Vec<DomainId> = b.expertise.domains().collect();
    if da != db {
        return Err(format!("expertise domains {da:?} vs {db:?}"));
    }
    if a.expertise.n_users() != b.expertise.n_users() {
        return Err(format!(
            "n_users {} vs {}",
            a.expertise.n_users(),
            b.expertise.n_users()
        ));
    }
    for &d in &da {
        for i in 0..a.expertise.n_users() {
            let ua = a.expertise.get(UserId(i as u32), d);
            let ub = b.expertise.get(UserId(i as u32), d);
            if !close(ua, ub, tol) {
                return Err(format!("user {i} in {d:?}: expertise {ua} vs {ub}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::reference;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use std::cell::Cell;

    thread_local! {
        /// Largest per-reporter column allocated by `Shard::finish` on this
        /// thread — the allocation-churn tripwire. `finish` always runs on
        /// the thread that called `estimate*`, so the counter is race-free.
        static MAX_USER_COLUMN_ALLOC: Cell<usize> = const { Cell::new(0) };
    }

    pub(super) fn note_user_column_alloc(n_slots: usize) {
        MAX_USER_COLUMN_ALLOC.with(|c| c.set(c.get().max(n_slots)));
    }

    fn reset_user_column_alloc() {
        MAX_USER_COLUMN_ALLOC.with(|c| c.set(0));
    }

    fn max_user_column_alloc() -> usize {
        MAX_USER_COLUMN_ALLOC.with(|c| c.get())
    }

    fn make_tasks(m: u32, domain: u32) -> Vec<Task> {
        (0..m)
            .map(|j| Task::new(TaskId(j), DomainId(domain), 1.0, 1.0))
            .collect()
    }

    /// Synthetic world with known expertise; observations drawn from the
    /// paper's model.
    fn synth_world(
        n_users: usize,
        m_tasks: u32,
        user_expertise: &[f64],
        seed: u64,
    ) -> (Vec<Task>, ObservationSet, Vec<f64>) {
        assert_eq!(user_expertise.len(), n_users);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tasks = make_tasks(m_tasks, 0);
        let mut obs = ObservationSet::new();
        let mut truths = Vec::new();
        for t in &tasks {
            let mu: f64 = rng.gen_range(0.0..20.0);
            let sigma: f64 = rng.gen_range(0.5..2.0);
            truths.push(mu);
            for (i, &u) in user_expertise.iter().enumerate() {
                let noise = eta2_stats::normal::standard_sample(&mut rng);
                obs.insert(UserId(i as u32), t.id, mu + noise * sigma / u);
            }
        }
        (tasks, obs, truths)
    }

    #[test]
    fn recovers_truth_on_clean_data() {
        // All users perfectly accurate: truth must equal the common value.
        let tasks = make_tasks(3, 0);
        let mut obs = ObservationSet::new();
        for t in &tasks {
            for i in 0..4 {
                obs.insert(UserId(i), t.id, 7.5 + t.id.0 as f64);
            }
        }
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        for t in &tasks {
            assert!((r.truths[&t.id].mu - (7.5 + t.id.0 as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn expert_users_get_higher_expertise() {
        let expertise = [2.5, 2.5, 0.4, 0.4];
        let (tasks, obs, _) = synth_world(4, 40, &expertise, 1);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let d = DomainId(0);
        let hi = (r.expertise.get(UserId(0), d) + r.expertise.get(UserId(1), d)) / 2.0;
        let lo = (r.expertise.get(UserId(2), d) + r.expertise.get(UserId(3), d)) / 2.0;
        assert!(hi > 1.5 * lo, "hi = {hi:.2}, lo = {lo:.2}");
    }

    #[test]
    fn weighting_beats_plain_mean() {
        let expertise = [3.0, 0.3, 0.3, 0.3, 0.3];
        let (tasks, obs, truths) = synth_world(5, 60, &expertise, 2);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 5);
        let mut err_mle = 0.0;
        let mut err_mean = 0.0;
        for (j, t) in tasks.iter().enumerate() {
            let o = obs.for_task(t.id).unwrap();
            let mean = o.iter().map(|&(_, x)| x).sum::<f64>() / o.len() as f64;
            err_mle += (r.truths[&t.id].mu - truths[j]).abs();
            err_mean += (mean - truths[j]).abs();
        }
        assert!(
            err_mle < err_mean,
            "MLE {err_mle:.3} not better than mean {err_mean:.3}"
        );
    }

    #[test]
    fn iteration_terminates_and_reports() {
        let (tasks, obs, _) = synth_world(4, 10, &[1.0, 1.0, 1.0, 1.0], 3);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        assert!(r.iterations <= MleConfig::default().max_iterations);
        assert!(r.iterations >= 1);
        assert!(r.converged);
    }

    #[test]
    fn tasks_without_observations_are_skipped() {
        let tasks = make_tasks(2, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 1.0);
        obs.insert(UserId(1), TaskId(0), 1.2);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 2);
        assert!(r.truths.contains_key(&TaskId(0)));
        assert!(!r.truths.contains_key(&TaskId(1)));
    }

    #[test]
    fn empty_batch_returns_empty_result() {
        let r = ExpertiseAwareMle::default().estimate(&[], &ObservationSet::new(), 3);
        assert!(r.truths.is_empty());
        assert!(r.converged || r.iterations == MleConfig::default().max_iterations);
    }

    #[test]
    fn single_observation_task_does_not_blow_up() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 5.0);
        let cfg = MleConfig::default();
        let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, 1);
        let est = r.truths[&TaskId(0)];
        assert_eq!(est.mu, 5.0);
        assert!(est.sigma >= cfg.sigma_floor);
        let u = r.expertise.get(UserId(0), DomainId(0));
        assert!(u <= cfg.expertise_cap);
    }

    #[test]
    fn expertise_is_per_domain() {
        // User 0 accurate in domain 0, awful in domain 1.
        let mut tasks = make_tasks(10, 0);
        tasks.extend((10..20).map(|j| Task::new(TaskId(j), DomainId(1), 1.0, 1.0)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut obs = ObservationSet::new();
        for t in &tasks {
            let mu = 10.0;
            let u0: f64 = if t.domain == DomainId(0) { 3.0 } else { 0.3 };
            let n0 = eta2_stats::normal::standard_sample(&mut rng);
            obs.insert(UserId(0), t.id, mu + n0 / u0);
            for i in 1..4u32 {
                let n = eta2_stats::normal::standard_sample(&mut rng);
                obs.insert(UserId(i), t.id, mu + n);
            }
        }
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let u_good = r.expertise.get(UserId(0), DomainId(0));
        let u_bad = r.expertise.get(UserId(0), DomainId(1));
        assert!(u_good > u_bad, "u_good = {u_good:.2}, u_bad = {u_bad:.2}");
    }

    #[test]
    fn truths_given_expertise_is_weighted_mean() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 0.0);
        obs.insert(UserId(1), TaskId(0), 10.0);
        let mut ex = ExpertiseMatrix::new(2);
        ex.set(UserId(0), DomainId(0), 3.0);
        ex.set(UserId(1), DomainId(0), 1.0);
        let truths = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        // Weighted mean with weights 9:1 → 1.0.
        assert!((truths[&TaskId(0)].mu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_change_handles_zero_old() {
        assert!(relative_change(0.0, 1.0) > 1.0);
        assert_eq!(relative_change(2.0, 2.0), 0.0);
    }

    #[test]
    fn non_finite_observations_are_rejected() {
        let tasks = make_tasks(2, 0);
        let mut obs = ObservationSet::new();
        // Task 0: two finite observations plus garbage — estimate must use
        // only the finite pair and stay unflagged.
        obs.insert(UserId(0), TaskId(0), 4.0);
        obs.insert(UserId(1), TaskId(0), 6.0);
        obs.insert(UserId(2), TaskId(0), f64::NAN);
        obs.insert(UserId(3), TaskId(0), f64::INFINITY);
        // Task 1: nothing but garbage — skipped entirely.
        obs.insert(UserId(0), TaskId(1), f64::NEG_INFINITY);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let est = r.truths[&TaskId(0)];
        assert!(est.mu.is_finite());
        assert!((4.0..=6.0).contains(&est.mu));
        assert!(!est.fallback);
        assert!(!r.truths.contains_key(&TaskId(1)));
    }

    #[test]
    fn single_observation_estimate_is_flagged_as_fallback() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 5.0);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 1);
        assert!(r.truths[&TaskId(0)].fallback);

        let ex = ExpertiseMatrix::new(1);
        let truths = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        assert!(truths[&TaskId(0)].fallback);
    }

    #[test]
    fn truths_given_expertise_rejects_non_finite() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), f64::NAN);
        obs.insert(UserId(1), TaskId(0), 3.0);
        obs.insert(UserId(2), TaskId(0), 5.0);
        let ex = ExpertiseMatrix::new(3);
        let truths = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        let est = truths[&TaskId(0)];
        assert!((est.mu - 4.0).abs() < 1e-12);
        assert!(!est.fallback);
    }

    #[test]
    fn mle_config_without_threads_field_still_deserializes() {
        let mut v = serde_json::to_value(MleConfig::default()).unwrap();
        v.as_object_mut().unwrap().remove("threads");
        v.as_object_mut()
            .unwrap()
            .remove("sigma_weighted_denominator");
        let cfg: MleConfig = serde_json::from_value(v).unwrap();
        assert_eq!(cfg, MleConfig::default());
    }

    /// The per-batch scratch is sized to the batch's distinct reporters,
    /// not to the total user space: a 5-reporter batch against a 100 000
    /// user population must not allocate any 100 000-wide column.
    #[test]
    fn scratch_is_sized_to_distinct_reporters_not_user_space() {
        let tasks = make_tasks(6, 0);
        let mut obs = ObservationSet::new();
        for t in &tasks {
            for i in 0..5u32 {
                obs.insert(UserId(i * 1000), t.id, 10.0 + i as f64);
            }
        }
        reset_user_column_alloc();
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 100_000);
        assert_eq!(r.truths.len(), 6);
        let max = max_user_column_alloc();
        assert!(
            (1..=5).contains(&max),
            "per-batch reporter scratch sized {max} for 5 distinct reporters"
        );
    }

    /// With all expertise at the initialization value 1, the weighted and
    /// unweighted σ denominators coincide; with unequal expertise the
    /// weighted denominator normalizes by Σu² instead of the count.
    #[test]
    fn sigma_weighted_denominator_changes_only_sigma() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 0.0);
        obs.insert(UserId(1), TaskId(0), 10.0);
        let mut ex = ExpertiseMatrix::new(2);
        ex.set(UserId(0), DomainId(0), 3.0);
        ex.set(UserId(1), DomainId(0), 1.0);
        let plain = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        let weighted = ExpertiseAwareMle::new(MleConfig {
            sigma_weighted_denominator: true,
            ..MleConfig::default()
        })
        .truths_given_expertise(&tasks, &obs, &ex);
        // Weighted mean with weights 9:1 → μ = 1; ss = 9·1 + 1·81 = 90.
        let (p, w) = (plain[&TaskId(0)], weighted[&TaskId(0)]);
        assert_eq!(p.mu, w.mu);
        assert!((p.sigma - (90.0f64 / 2.0).sqrt()).abs() < 1e-12);
        assert!((w.sigma - (90.0f64 / 10.0).sqrt()).abs() < 1e-12);
    }

    /// The σ-denominator knob flows through the full iterated solver too,
    /// and the optimized path still matches the reference under it.
    #[test]
    fn sigma_weighted_denominator_parity_with_reference() {
        let (tasks, obs) = parity_world(7, 5, 18, 3, 10);
        let cfg = MleConfig {
            sigma_weighted_denominator: true,
            ..MleConfig::default()
        };
        let a = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, 5);
        let b = reference::estimate_with_initial(&cfg, &tasks, &obs, ExpertiseMatrix::new(5));
        results_match(&a, &b, PARITY_REL_TOL).unwrap();
    }

    #[test]
    fn auto_thread_count_is_accepted() {
        let (tasks, obs, _) = synth_world(4, 10, &[1.0, 2.0, 0.5, 1.0], 11);
        let seq = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let auto = ExpertiseAwareMle::new(MleConfig {
            threads: 0,
            ..MleConfig::default()
        })
        .estimate(&tasks, &obs, 4);
        assert_eq!(seq, auto);
    }

    /// Counters bumped inside concurrently-running shards all land in the
    /// global registry, whose hot path is a shared read lock plus an
    /// atomic add (so parallel shards never serialize against each other).
    #[test]
    fn parallel_mle_shard_counters_land_in_global_registry() {
        let (tasks, obs) = parity_world(23, 6, 24, 4, 10);
        eta2_obs::set_metrics(true);
        let read = || {
            eta2_obs::registry::global()
                .snapshot()
                .counters
                .get("mle.shard_iterations")
                .copied()
                .unwrap_or(0)
        };
        let before = read();
        let r = ExpertiseAwareMle::new(MleConfig {
            threads: 4,
            ..MleConfig::default()
        })
        .estimate(&tasks, &obs, 6);
        let after = read();
        eta2_obs::set_metrics(false);
        assert!(r.iterations >= 1);
        // 4 domains × ≥1 iteration each ⇒ at least 4 bumps from this run;
        // other tests in this binary may add more concurrently, so only a
        // lower bound is meaningful.
        assert!(
            after >= before + 4,
            "shard counters lost: before {before}, after {after}"
        );
    }

    /// Random multi-domain world, optionally laced with corrupted
    /// observations, shared by the parity property tests below.
    fn parity_world(
        seed: u64,
        n_users: usize,
        m: u32,
        n_domains: u32,
        corrupt_pct: u32,
    ) -> (Vec<Task>, ObservationSet) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..m)
            .map(|j| Task::new(TaskId(j), DomainId(j % n_domains), 1.0, 1.0))
            .collect();
        let mut obs = ObservationSet::new();
        for t in &tasks {
            for i in 0..n_users {
                if !rng.gen_bool(0.8) {
                    continue;
                }
                let x = if rng.gen_range(0..100) < corrupt_pct {
                    *[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300]
                        .iter()
                        .nth(rng.gen_range(0..4))
                        .unwrap()
                } else {
                    rng.gen_range(-100.0..100.0)
                };
                obs.insert(UserId(i as u32), t.id, x);
            }
        }
        (tasks, obs)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The MLE never diverges: finite truths, clamped expertise,
        /// bounded iterations — on arbitrary observation patterns.
        #[test]
        fn never_diverges(seed in 0u64..500, n_users in 1usize..6, m in 1u32..12) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks = make_tasks(m, 0);
            let mut obs = ObservationSet::new();
            for t in &tasks {
                for i in 0..n_users {
                    if rng.gen_bool(0.7) {
                        obs.insert(UserId(i as u32), t.id, rng.gen_range(-100.0..100.0));
                    }
                }
            }
            let cfg = MleConfig::default();
            let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, n_users);
            for est in r.truths.values() {
                prop_assert!(est.mu.is_finite());
                prop_assert!(est.sigma >= cfg.sigma_floor);
            }
            for d in r.expertise.domains() {
                for i in 0..n_users {
                    let u = r.expertise.get(UserId(i as u32), d);
                    prop_assert!((cfg.expertise_floor..=cfg.expertise_cap.max(1.0)).contains(&u));
                }
            }
            prop_assert!(r.iterations <= cfg.max_iterations);
        }

        /// Corrupted crowds never panic the solver: observation sets laced
        /// with NaN/±Inf (and tasks left with no usable report) yield
        /// finite estimates for every estimated task, or no estimate at
        /// all — never a crash, never a non-finite truth.
        #[test]
        fn corrupted_observations_never_panic(
            seed in 0u64..300,
            n_users in 1usize..6,
            m in 1u32..10,
            corrupt_pct in 0u32..=100,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks = make_tasks(m, 0);
            let mut obs = ObservationSet::new();
            for t in &tasks {
                for i in 0..n_users {
                    if !rng.gen_bool(0.8) {
                        continue; // some tasks end up empty
                    }
                    let x = if rng.gen_range(0..100) < corrupt_pct {
                        *[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300]
                            .iter()
                            .nth(rng.gen_range(0..4))
                            .unwrap()
                    } else {
                        rng.gen_range(-100.0..100.0)
                    };
                    obs.insert(UserId(i as u32), t.id, x);
                }
            }
            let cfg = MleConfig::default();
            let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, n_users);
            for est in r.truths.values() {
                prop_assert!(est.mu.is_finite());
                prop_assert!(est.sigma.is_finite() && est.sigma >= cfg.sigma_floor);
            }
            for d in r.expertise.domains() {
                for i in 0..n_users {
                    let u = r.expertise.get(UserId(i as u32), d);
                    prop_assert!(u.is_finite());
                }
            }
            let truths = ExpertiseAwareMle::new(cfg)
                .truths_given_expertise(&tasks, &obs, &ExpertiseMatrix::new(n_users));
            for est in truths.values() {
                prop_assert!(est.mu.is_finite());
                prop_assert!(est.sigma.is_finite());
            }
        }

        /// Truth estimates always lie within the observed range (they are
        /// convex combinations of the observations).
        #[test]
        fn truth_within_observation_hull(seed in 0u64..200) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks = make_tasks(5, 0);
            let mut obs = ObservationSet::new();
            for t in &tasks {
                for i in 0..4u32 {
                    obs.insert(UserId(i), t.id, rng.gen_range(-50.0..50.0));
                }
            }
            let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
            for t in &tasks {
                let o = obs.for_task(t.id).unwrap();
                let lo = o.iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
                let hi = o.iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
                let mu = r.truths[&t.id].mu;
                prop_assert!(mu >= lo - 1e-9 && mu <= hi + 1e-9);
            }
        }

        /// The optimized solver matches the frozen pre-optimization
        /// implementation within the documented [`PARITY_REL_TOL`]: same
        /// task set, fallback provenance, iteration count and convergence
        /// verdict, and every numeric value within tolerance — across
        /// multi-domain worlds, both leave-one-out settings, both σ
        /// denominators, and corrupted inputs. (Bit-exactness ended with
        /// the 4-lane reassociated accumulators; see the module docs.)
        #[test]
        fn optimized_matches_reference_within_tolerance(
            seed in 0u64..400,
            n_users in 1usize..6,
            m in 1u32..14,
            n_domains in 1u32..4,
            loo in proptest::bool::ANY,
            weighted_sigma in proptest::bool::ANY,
            corrupt_pct in 0u32..=40,
        ) {
            let (tasks, obs) = parity_world(seed, n_users, m, n_domains, corrupt_pct);
            let cfg = MleConfig {
                leave_one_out: loo,
                sigma_weighted_denominator: weighted_sigma,
                ..MleConfig::default()
            };
            let a = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, n_users);
            let b = reference::estimate_with_initial(
                &cfg, &tasks, &obs, ExpertiseMatrix::new(n_users),
            );
            prop_assert!(
                results_match(&a, &b, PARITY_REL_TOL).is_ok(),
                "{}", results_match(&a, &b, PARITY_REL_TOL).unwrap_err()
            );
        }

        /// Per-domain parallelism is a pure throughput knob: four worker
        /// threads produce exactly the bits one thread does.
        #[test]
        fn parallel_matches_sequential_bitwise(
            seed in 0u64..400,
            n_users in 2usize..6,
            m in 1u32..20,
            corrupt_pct in 0u32..=30,
        ) {
            let (tasks, obs) = parity_world(seed, n_users, m, 4, corrupt_pct);
            let seq = ExpertiseAwareMle::new(MleConfig { threads: 1, ..MleConfig::default() })
                .estimate(&tasks, &obs, n_users);
            let par = ExpertiseAwareMle::new(MleConfig { threads: 4, ..MleConfig::default() })
                .estimate(&tasks, &obs, n_users);
            prop_assert_eq!(seq, par);
        }
    }
}
