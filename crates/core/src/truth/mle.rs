//! Expertise-aware truth analysis by maximum-likelihood estimation
//! (paper §4.1).
//!
//! The observation model is `x_ij ~ N(μ_j, (σ_j / u_i^{d_j})²)` (§2.4).
//! Setting the derivatives of the log-likelihood (paper Eq. 4) to zero gives
//! the coordinate updates iterated here:
//!
//! ```text
//! μ_j  = Σ_i ω_ij u_ij² x_ij   /  Σ_i ω_ij u_ij²
//! σ_j² = Σ_i ω_ij u_ij² (x_ij − μ_j)²  /  Σ_i ω_ij
//! u_i^k = sqrt( Σ_j 1[d_j=k] ω_ij  /  Σ_j 1[d_j=k] ω_ij (x_ij − μ_j)²/σ_j² )
//! ```
//!
//! (the camera-ready's typeset Eq. 5/6 are OCR-damaged in our source; these
//! forms are re-derived from Eq. 4 and are consistent with the incremental
//! N/D update the paper gives in Eqs. 7–9 — see DESIGN.md §2).
//!
//! Iteration starts from `u = 1` for every user and domain and stops when
//! every task's truth estimate changes by less than 5 % between successive
//! iterations (§4.1), with a hard iteration cap as a safety net.

use crate::model::{DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of the MLE iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MleConfig {
    /// Relative truth-change threshold below which the iteration is
    /// considered converged (the paper uses 5 %).
    pub convergence_threshold: f64,
    /// Hard cap on coordinate-update iterations.
    pub max_iterations: usize,
    /// Lower clamp on expertise: `u = 0` would mean infinite observation
    /// variance, which the likelihood cannot represent.
    pub expertise_floor: f64,
    /// Upper clamp on expertise, guarding the degenerate "single
    /// observation fits exactly" blow-up.
    pub expertise_cap: f64,
    /// Lower clamp on the base number `σ_j`.
    pub sigma_floor: f64,
    /// Score each user's error against the *leave-one-out* truth estimate
    /// (their own observation excluded) in the expertise update.
    ///
    /// The paper's Eq. 6 uses the plain estimate, which is self-fulfilling:
    /// once a user's weight dominates the expertise²-weighted mean, their
    /// error is measured against (almost) their own value, collapses to
    /// zero, and their expertise diverges regardless of actual quality.
    /// Leave-one-out scoring removes the self-term and is the default; set
    /// to `false` for the paper-exact update (the
    /// `ablation_loo_expertise` bench quantifies the difference).
    pub leave_one_out: bool,
    /// Pseudo-count prior pulling small-sample expertise toward the
    /// initialization `u = 1`: the estimate becomes
    /// `u = sqrt((N + s)/(D + s))` with `s = prior_strength`.
    ///
    /// A user's expertise in a domain is often estimated from one or two
    /// observations per time step; the raw ratio `sqrt(N/D)` is then wildly
    /// noisy, and the expertise²-weighted mean amplifies that noise. The
    /// prior (a MAP estimate under a Gamma prior on `u²`) vanishes as data
    /// accumulates. `0` disables it (the paper-exact update).
    pub prior_strength: f64,
    /// Mean squared normalized error above which a user's batch expertise
    /// update is quarantined (discarded) by the dynamic update instead of
    /// committed — see `truth::dynamic`. The default is far above anything
    /// honest noise produces (clean-data errors are a few σ², i.e. ≲ 10²),
    /// so only gross corruption or collusion trips it. Must be finite so
    /// configs survive a JSON round trip.
    #[serde(default = "default_quarantine_threshold")]
    pub quarantine_threshold: f64,
}

fn default_quarantine_threshold() -> f64 {
    1e9
}

impl Default for MleConfig {
    fn default() -> Self {
        MleConfig {
            convergence_threshold: 0.05,
            max_iterations: 100,
            expertise_floor: 1e-3,
            expertise_cap: 50.0,
            sigma_floor: 1e-6,
            leave_one_out: true,
            prior_strength: 1.0,
            quarantine_threshold: default_quarantine_threshold(),
        }
    }
}

/// Estimated truth `μ̂_j` and base number `σ̂_j` for one task.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruthEstimate {
    /// Estimated ground truth.
    pub mu: f64,
    /// Estimated base number (the normalization scale of the task).
    pub sigma: f64,
    /// Degradation provenance: `true` when this estimate did not come from
    /// the full expertise-weighted MLE — the task was under-observed (a
    /// single usable report) or the iteration diverged and the estimate
    /// fell back to the plain mean of the finite observations.
    #[serde(default)]
    pub fallback: bool,
}

/// The output of one MLE run.
#[derive(Debug, Clone, PartialEq)]
pub struct MleResult {
    /// Truth estimate per task (only tasks that had observations).
    pub truths: BTreeMap<TaskId, TruthEstimate>,
    /// Learned expertise for every user and every domain seen in the batch.
    pub expertise: ExpertiseMatrix,
    /// Coordinate-update iterations executed.
    pub iterations: usize,
    /// Whether the 5 % criterion was met before the iteration cap.
    pub converged: bool,
}

/// The expertise-aware MLE estimator of §4.1.
///
/// # Examples
///
/// ```
/// use eta2_core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
/// use eta2_core::truth::mle::ExpertiseAwareMle;
///
/// let tasks: Vec<Task> = (0..4)
///     .map(|j| Task::new(TaskId(j), DomainId(0), 1.0, 1.0))
///     .collect();
/// let mut obs = ObservationSet::new();
/// for j in 0..4 {
///     obs.insert(UserId(0), TaskId(j), 10.0 + 0.01 * j as f64); // expert
///     obs.insert(UserId(1), TaskId(j), 10.0 + 3.0 * (j as f64 - 1.5)); // noisy
///     obs.insert(UserId(2), TaskId(j), 10.0 - 2.0 * (j as f64 - 1.5)); // noisy
/// }
/// let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 3);
/// let u0 = r.expertise.get(UserId(0), DomainId(0));
/// let u1 = r.expertise.get(UserId(1), DomainId(0));
/// assert!(u0 > u1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpertiseAwareMle {
    config: MleConfig,
}

impl ExpertiseAwareMle {
    /// Creates an estimator with the given configuration.
    pub fn new(config: MleConfig) -> Self {
        ExpertiseAwareMle { config }
    }

    /// The estimator configuration.
    pub fn config(&self) -> &MleConfig {
        &self.config
    }

    /// Runs the MLE from the paper's cold-start initialization
    /// (`u_i^k = 1` for all users and domains).
    pub fn estimate(&self, tasks: &[Task], obs: &ObservationSet, n_users: usize) -> MleResult {
        self.estimate_with_initial(tasks, obs, ExpertiseMatrix::new(n_users))
    }

    /// Runs the MLE starting from `initial` expertise — used by the dynamic
    /// update (§4.2), which warm-starts from the time-`T` values.
    ///
    /// Tasks without observations are skipped; observations for tasks not
    /// in `tasks` are ignored.
    pub fn estimate_with_initial(
        &self,
        tasks: &[Task],
        obs: &ObservationSet,
        initial: ExpertiseMatrix,
    ) -> MleResult {
        let _span = eta2_obs::span!("mle.solve");
        let cfg = &self.config;
        let n_users = initial.n_users();

        // Materialize the batch: per task, its domain and observations.
        // Non-finite observations (corrupted reports) are rejected here so
        // the coordinate updates only ever see finite data; a task left
        // with no usable observation is skipped entirely.
        struct TaskData {
            id: TaskId,
            domain: DomainId,
            obs: Vec<(UserId, f64)>,
        }
        let mut batch: Vec<TaskData> = Vec::new();
        for t in tasks {
            let Some(raw) = obs.for_task(t.id) else {
                continue;
            };
            let n_raw = raw.len();
            let finite: Vec<(UserId, f64)> =
                raw.into_iter().filter(|&(_, x)| x.is_finite()).collect();
            if finite.len() < n_raw {
                eta2_obs::counter("mle.rejected_observations", (n_raw - finite.len()) as u64);
            }
            if finite.is_empty() {
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "mle",
                    task: t.id.0 as u64,
                    observations: 0,
                    reason: "no_finite_observations",
                });
                continue;
            }
            batch.push(TaskData {
                id: t.id,
                domain: t.domain,
                obs: finite,
            });
        }

        let mut expertise = initial;
        let mut truths: BTreeMap<TaskId, TruthEstimate> = BTreeMap::new();
        let mut prev_mu: BTreeMap<TaskId, f64> = BTreeMap::new();

        let mut iterations = 0;
        let mut converged = false;
        while iterations < cfg.max_iterations.max(1) {
            iterations += 1;

            // (1) μ_j and σ_j given current expertise.
            for t in &batch {
                let mut wsum = 0.0;
                let mut wxsum = 0.0;
                for &(user, x) in &t.obs {
                    let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                    let w = u * u;
                    wsum += w;
                    wxsum += w * x;
                }
                let mu = wxsum / wsum;
                let mut ss = 0.0;
                for &(user, x) in &t.obs {
                    let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                    ss += u * u * (x - mu) * (x - mu);
                }
                let sigma = (ss / t.obs.len() as f64).sqrt().max(cfg.sigma_floor);
                truths.insert(
                    t.id,
                    TruthEstimate {
                        mu,
                        sigma,
                        fallback: false,
                    },
                );
            }

            // (2) u_i^k given current truths: accumulate the N/D ratio.
            let mut acc: BTreeMap<DomainId, Vec<(f64, f64)>> = BTreeMap::new();
            for t in &batch {
                let est = truths[&t.id];
                // Weighted sums for the leave-one-out truth.
                let (mut wsum, mut wxsum) = (0.0, 0.0);
                if cfg.leave_one_out {
                    for &(user, x) in &t.obs {
                        let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                        wsum += u * u;
                        wxsum += u * u * x;
                    }
                }
                let per_user = acc
                    .entry(t.domain)
                    .or_insert_with(|| vec![(0.0, 0.0); n_users]);
                for &(user, x) in &t.obs {
                    let reference = if cfg.leave_one_out && t.obs.len() > 1 {
                        let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                        (wxsum - u * u * x) / (wsum - u * u)
                    } else {
                        est.mu
                    };
                    let e = (x - reference) / est.sigma;
                    let slot = &mut per_user[user.0 as usize];
                    slot.0 += 1.0;
                    slot.1 += e * e;
                }
            }
            for (&domain, per_user) in &acc {
                for (i, &(n, d)) in per_user.iter().enumerate() {
                    if n > 0.0 {
                        let s = cfg.prior_strength;
                        let raw = ((n + s) / (d + s).max(1e-12)).sqrt();
                        // NaN only arises when gross (finite but enormous)
                        // observations overflow the error accumulator;
                        // treat that as "no demonstrated expertise".
                        let u = if raw.is_finite() {
                            raw.clamp(cfg.expertise_floor, cfg.expertise_cap)
                        } else {
                            cfg.expertise_floor
                        };
                        expertise.set(UserId(i as u32), domain, u);
                    }
                }
            }

            // Trace the iteration. The closure only runs with tracing on,
            // so the delta scan costs nothing in normal operation.
            eta2_obs::emit_with(|| eta2_obs::Event::MleIteration {
                source: "mle",
                iteration: iterations as u64,
                tasks: batch.len() as u64,
                max_rel_delta: if prev_mu.is_empty() {
                    None
                } else {
                    Some(
                        truths
                            .iter()
                            .map(|(id, est)| relative_change(prev_mu[id], est.mu))
                            .fold(0.0, f64::max),
                    )
                },
            });

            // (3) Convergence: every truth estimate moved < threshold
            // relative to its previous value.
            if !prev_mu.is_empty() {
                let all_small = truths.iter().all(|(id, est)| {
                    let prev = prev_mu[id];
                    relative_change(prev, est.mu) < cfg.convergence_threshold
                });
                if all_small {
                    converged = true;
                    break;
                }
            }
            prev_mu = truths.iter().map(|(&id, est)| (id, est.mu)).collect();
        }

        // Degradation provenance. A single-observation task's "MLE" is
        // just that observation echoed back (mu = x, sigma = floor) — mark
        // it as the mean-baseline fallback it effectively is. And if the
        // iteration somehow produced a non-finite estimate, repair it with
        // the plain mean of the task's finite observations.
        for t in &batch {
            let Some(est) = truths.get_mut(&t.id) else {
                continue;
            };
            if !est.mu.is_finite() || !est.sigma.is_finite() {
                let mean = t.obs.iter().map(|&(_, x)| x).sum::<f64>() / t.obs.len() as f64;
                est.mu = mean;
                est.sigma = cfg.sigma_floor;
                est.fallback = true;
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "mle",
                    task: t.id.0 as u64,
                    observations: t.obs.len() as u64,
                    reason: "diverged",
                });
            } else if t.obs.len() == 1 {
                est.fallback = true;
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "mle",
                    task: t.id.0 as u64,
                    observations: 1,
                    reason: "single_observation",
                });
            }
        }

        eta2_obs::emit_with(|| eta2_obs::Event::MleOutcome {
            source: "mle",
            iterations: iterations as u64,
            converged,
            tasks: batch.len() as u64,
        });

        MleResult {
            truths,
            expertise,
            iterations,
            converged,
        }
    }

    /// Single-pass truth estimation with *fixed* expertise: just Eq. 5,
    /// no expertise update. Used to bootstrap the dynamic update (§4.2,
    /// "μ_j and σ_j are first estimated using Equations 5, in which the
    /// user expertise is initialized to the original values at time T").
    pub fn truths_given_expertise(
        &self,
        tasks: &[Task],
        obs: &ObservationSet,
        expertise: &ExpertiseMatrix,
    ) -> BTreeMap<TaskId, TruthEstimate> {
        let cfg = &self.config;
        let mut truths = BTreeMap::new();
        for t in tasks {
            let Some(raw) = obs.for_task(t.id) else {
                continue;
            };
            let observations: Vec<(UserId, f64)> =
                raw.into_iter().filter(|&(_, x)| x.is_finite()).collect();
            if observations.is_empty() {
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: 0,
                    reason: "no_finite_observations",
                });
                continue;
            }
            let mut wsum = 0.0;
            let mut wxsum = 0.0;
            for &(user, x) in &observations {
                let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                wsum += u * u;
                wxsum += u * u * x;
            }
            let mu = wxsum / wsum;
            let mut ss = 0.0;
            for &(user, x) in &observations {
                let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                ss += u * u * (x - mu) * (x - mu);
            }
            let sigma = (ss / observations.len() as f64).sqrt().max(cfg.sigma_floor);
            let est = if mu.is_finite() && sigma.is_finite() {
                TruthEstimate {
                    mu,
                    sigma,
                    fallback: observations.len() == 1,
                }
            } else {
                // Enormous-but-finite observations can overflow the
                // weighted sums; degrade to the plain mean.
                eta2_obs::counter("mle.fallback", 1);
                eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                    source: "dynamic",
                    task: t.id.0 as u64,
                    observations: observations.len() as u64,
                    reason: "diverged",
                });
                let mean =
                    observations.iter().map(|&(_, x)| x).sum::<f64>() / observations.len() as f64;
                TruthEstimate {
                    mu: mean,
                    sigma: cfg.sigma_floor,
                    fallback: true,
                }
            };
            truths.insert(t.id, est);
        }
        truths
    }
}

/// Relative change `|new − old| / max(|old|, 1e-9)`.
pub(crate) fn relative_change(old: f64, new: f64) -> f64 {
    (new - old).abs() / old.abs().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;

    fn make_tasks(m: u32, domain: u32) -> Vec<Task> {
        (0..m)
            .map(|j| Task::new(TaskId(j), DomainId(domain), 1.0, 1.0))
            .collect()
    }

    /// Synthetic world with known expertise; observations drawn from the
    /// paper's model.
    fn synth_world(
        n_users: usize,
        m_tasks: u32,
        user_expertise: &[f64],
        seed: u64,
    ) -> (Vec<Task>, ObservationSet, Vec<f64>) {
        assert_eq!(user_expertise.len(), n_users);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tasks = make_tasks(m_tasks, 0);
        let mut obs = ObservationSet::new();
        let mut truths = Vec::new();
        for t in &tasks {
            let mu: f64 = rng.gen_range(0.0..20.0);
            let sigma: f64 = rng.gen_range(0.5..2.0);
            truths.push(mu);
            for (i, &u) in user_expertise.iter().enumerate() {
                let noise = eta2_stats::normal::standard_sample(&mut rng);
                obs.insert(UserId(i as u32), t.id, mu + noise * sigma / u);
            }
        }
        (tasks, obs, truths)
    }

    #[test]
    fn recovers_truth_on_clean_data() {
        // All users perfectly accurate: truth must equal the common value.
        let tasks = make_tasks(3, 0);
        let mut obs = ObservationSet::new();
        for t in &tasks {
            for i in 0..4 {
                obs.insert(UserId(i), t.id, 7.5 + t.id.0 as f64);
            }
        }
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        for t in &tasks {
            assert!((r.truths[&t.id].mu - (7.5 + t.id.0 as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn expert_users_get_higher_expertise() {
        let expertise = [2.5, 2.5, 0.4, 0.4];
        let (tasks, obs, _) = synth_world(4, 40, &expertise, 1);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let d = DomainId(0);
        let hi = (r.expertise.get(UserId(0), d) + r.expertise.get(UserId(1), d)) / 2.0;
        let lo = (r.expertise.get(UserId(2), d) + r.expertise.get(UserId(3), d)) / 2.0;
        assert!(hi > 1.5 * lo, "hi = {hi:.2}, lo = {lo:.2}");
    }

    #[test]
    fn weighting_beats_plain_mean() {
        let expertise = [3.0, 0.3, 0.3, 0.3, 0.3];
        let (tasks, obs, truths) = synth_world(5, 60, &expertise, 2);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 5);
        let mut err_mle = 0.0;
        let mut err_mean = 0.0;
        for (j, t) in tasks.iter().enumerate() {
            let o = obs.for_task(t.id).unwrap();
            let mean = o.iter().map(|&(_, x)| x).sum::<f64>() / o.len() as f64;
            err_mle += (r.truths[&t.id].mu - truths[j]).abs();
            err_mean += (mean - truths[j]).abs();
        }
        assert!(
            err_mle < err_mean,
            "MLE {err_mle:.3} not better than mean {err_mean:.3}"
        );
    }

    #[test]
    fn iteration_terminates_and_reports() {
        let (tasks, obs, _) = synth_world(4, 10, &[1.0, 1.0, 1.0, 1.0], 3);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        assert!(r.iterations <= MleConfig::default().max_iterations);
        assert!(r.iterations >= 1);
        assert!(r.converged);
    }

    #[test]
    fn tasks_without_observations_are_skipped() {
        let tasks = make_tasks(2, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 1.0);
        obs.insert(UserId(1), TaskId(0), 1.2);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 2);
        assert!(r.truths.contains_key(&TaskId(0)));
        assert!(!r.truths.contains_key(&TaskId(1)));
    }

    #[test]
    fn empty_batch_returns_empty_result() {
        let r = ExpertiseAwareMle::default().estimate(&[], &ObservationSet::new(), 3);
        assert!(r.truths.is_empty());
        assert!(r.converged || r.iterations == MleConfig::default().max_iterations);
    }

    #[test]
    fn single_observation_task_does_not_blow_up() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 5.0);
        let cfg = MleConfig::default();
        let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, 1);
        let est = r.truths[&TaskId(0)];
        assert_eq!(est.mu, 5.0);
        assert!(est.sigma >= cfg.sigma_floor);
        let u = r.expertise.get(UserId(0), DomainId(0));
        assert!(u <= cfg.expertise_cap);
    }

    #[test]
    fn expertise_is_per_domain() {
        // User 0 accurate in domain 0, awful in domain 1.
        let mut tasks = make_tasks(10, 0);
        tasks.extend((10..20).map(|j| Task::new(TaskId(j), DomainId(1), 1.0, 1.0)));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut obs = ObservationSet::new();
        for t in &tasks {
            let mu = 10.0;
            let u0: f64 = if t.domain == DomainId(0) { 3.0 } else { 0.3 };
            let n0 = eta2_stats::normal::standard_sample(&mut rng);
            obs.insert(UserId(0), t.id, mu + n0 / u0);
            for i in 1..4u32 {
                let n = eta2_stats::normal::standard_sample(&mut rng);
                obs.insert(UserId(i), t.id, mu + n);
            }
        }
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let u_good = r.expertise.get(UserId(0), DomainId(0));
        let u_bad = r.expertise.get(UserId(0), DomainId(1));
        assert!(u_good > u_bad, "u_good = {u_good:.2}, u_bad = {u_bad:.2}");
    }

    #[test]
    fn truths_given_expertise_is_weighted_mean() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 0.0);
        obs.insert(UserId(1), TaskId(0), 10.0);
        let mut ex = ExpertiseMatrix::new(2);
        ex.set(UserId(0), DomainId(0), 3.0);
        ex.set(UserId(1), DomainId(0), 1.0);
        let truths = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        // Weighted mean with weights 9:1 → 1.0.
        assert!((truths[&TaskId(0)].mu - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relative_change_handles_zero_old() {
        assert!(relative_change(0.0, 1.0) > 1.0);
        assert_eq!(relative_change(2.0, 2.0), 0.0);
    }

    #[test]
    fn non_finite_observations_are_rejected() {
        let tasks = make_tasks(2, 0);
        let mut obs = ObservationSet::new();
        // Task 0: two finite observations plus garbage — estimate must use
        // only the finite pair and stay unflagged.
        obs.insert(UserId(0), TaskId(0), 4.0);
        obs.insert(UserId(1), TaskId(0), 6.0);
        obs.insert(UserId(2), TaskId(0), f64::NAN);
        obs.insert(UserId(3), TaskId(0), f64::INFINITY);
        // Task 1: nothing but garbage — skipped entirely.
        obs.insert(UserId(0), TaskId(1), f64::NEG_INFINITY);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
        let est = r.truths[&TaskId(0)];
        assert!(est.mu.is_finite());
        assert!((4.0..=6.0).contains(&est.mu));
        assert!(!est.fallback);
        assert!(!r.truths.contains_key(&TaskId(1)));
    }

    #[test]
    fn single_observation_estimate_is_flagged_as_fallback() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), 5.0);
        let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 1);
        assert!(r.truths[&TaskId(0)].fallback);

        let ex = ExpertiseMatrix::new(1);
        let truths = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        assert!(truths[&TaskId(0)].fallback);
    }

    #[test]
    fn truths_given_expertise_rejects_non_finite() {
        let tasks = make_tasks(1, 0);
        let mut obs = ObservationSet::new();
        obs.insert(UserId(0), TaskId(0), f64::NAN);
        obs.insert(UserId(1), TaskId(0), 3.0);
        obs.insert(UserId(2), TaskId(0), 5.0);
        let ex = ExpertiseMatrix::new(3);
        let truths = ExpertiseAwareMle::default().truths_given_expertise(&tasks, &obs, &ex);
        let est = truths[&TaskId(0)];
        assert!((est.mu - 4.0).abs() < 1e-12);
        assert!(!est.fallback);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The MLE never diverges: finite truths, clamped expertise,
        /// bounded iterations — on arbitrary observation patterns.
        #[test]
        fn never_diverges(seed in 0u64..500, n_users in 1usize..6, m in 1u32..12) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks = make_tasks(m, 0);
            let mut obs = ObservationSet::new();
            for t in &tasks {
                for i in 0..n_users {
                    if rng.gen_bool(0.7) {
                        obs.insert(UserId(i as u32), t.id, rng.gen_range(-100.0..100.0));
                    }
                }
            }
            let cfg = MleConfig::default();
            let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, n_users);
            for est in r.truths.values() {
                prop_assert!(est.mu.is_finite());
                prop_assert!(est.sigma >= cfg.sigma_floor);
            }
            for d in r.expertise.domains() {
                for i in 0..n_users {
                    let u = r.expertise.get(UserId(i as u32), d);
                    prop_assert!((cfg.expertise_floor..=cfg.expertise_cap.max(1.0)).contains(&u));
                }
            }
            prop_assert!(r.iterations <= cfg.max_iterations);
        }

        /// Corrupted crowds never panic the solver: observation sets laced
        /// with NaN/±Inf (and tasks left with no usable report) yield
        /// finite estimates for every estimated task, or no estimate at
        /// all — never a crash, never a non-finite truth.
        #[test]
        fn corrupted_observations_never_panic(
            seed in 0u64..300,
            n_users in 1usize..6,
            m in 1u32..10,
            corrupt_pct in 0u32..=100,
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks = make_tasks(m, 0);
            let mut obs = ObservationSet::new();
            for t in &tasks {
                for i in 0..n_users {
                    if !rng.gen_bool(0.8) {
                        continue; // some tasks end up empty
                    }
                    let x = if rng.gen_range(0..100) < corrupt_pct {
                        *[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1e300]
                            .iter()
                            .nth(rng.gen_range(0..4))
                            .unwrap()
                    } else {
                        rng.gen_range(-100.0..100.0)
                    };
                    obs.insert(UserId(i as u32), t.id, x);
                }
            }
            let cfg = MleConfig::default();
            let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, n_users);
            for est in r.truths.values() {
                prop_assert!(est.mu.is_finite());
                prop_assert!(est.sigma.is_finite() && est.sigma >= cfg.sigma_floor);
            }
            for d in r.expertise.domains() {
                for i in 0..n_users {
                    let u = r.expertise.get(UserId(i as u32), d);
                    prop_assert!(u.is_finite());
                }
            }
            let truths = ExpertiseAwareMle::new(cfg)
                .truths_given_expertise(&tasks, &obs, &ExpertiseMatrix::new(n_users));
            for est in truths.values() {
                prop_assert!(est.mu.is_finite());
                prop_assert!(est.sigma.is_finite());
            }
        }

        /// Truth estimates always lie within the observed range (they are
        /// convex combinations of the observations).
        #[test]
        fn truth_within_observation_hull(seed in 0u64..200) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let tasks = make_tasks(5, 0);
            let mut obs = ObservationSet::new();
            for t in &tasks {
                for i in 0..4u32 {
                    obs.insert(UserId(i), t.id, rng.gen_range(-50.0..50.0));
                }
            }
            let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
            for t in &tasks {
                let o = obs.for_task(t.id).unwrap();
                let lo = o.iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
                let hi = o.iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
                let mu = r.truths[&t.id].mu;
                prop_assert!(mu >= lo - 1e-9 && mu <= hi + 1e-9);
            }
        }
    }
}
