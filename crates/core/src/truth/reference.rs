//! Frozen reference implementation of the §4.1 MLE coordinate updates.
//!
//! This is the pre-optimization solver, kept verbatim (nested-map
//! accumulators, per-task leave-one-out rescans) for two purposes:
//!
//! * **Parity testing** — the optimized solver in [`crate::truth::mle`]
//!   must agree with this implementation on every input within the
//!   documented [`crate::truth::mle::PARITY_REL_TOL`] (bit-exactness ended
//!   with the vectorized 4-lane accumulators); the property tests there
//!   compare against this implementation directly via
//!   [`crate::truth::mle::results_match`].
//! * **Benchmark baseline** — the `perf_suite` binary in `eta2-bench` times
//!   this path as the "before" column of `BENCH_perf.json`.
//!
//! It is not part of the supported API surface and may be removed once the
//! recorded perf trajectory no longer needs the pre-optimization baseline.

use crate::model::{DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId};
use crate::truth::mle::{relative_change, MleConfig, MleResult, TruthEstimate};
use std::collections::BTreeMap;

/// Runs the reference MLE from `initial` expertise — the exact pre-
/// optimization control flow and floating-point expression order.
///
/// `cfg.threads` is ignored: this path is inherently sequential.
pub fn estimate_with_initial(
    cfg: &MleConfig,
    tasks: &[Task],
    obs: &ObservationSet,
    initial: ExpertiseMatrix,
) -> MleResult {
    let n_users = initial.n_users();

    // Materialize the batch: per task, its domain and observations.
    // Non-finite observations (corrupted reports) are rejected here so
    // the coordinate updates only ever see finite data; a task left
    // with no usable observation is skipped entirely.
    struct TaskData {
        id: TaskId,
        domain: DomainId,
        obs: Vec<(UserId, f64)>,
    }
    let mut batch: Vec<TaskData> = Vec::new();
    for t in tasks {
        let Some(raw) = obs.for_task(t.id) else {
            continue;
        };
        let n_raw = raw.len();
        let finite: Vec<(UserId, f64)> = raw.into_iter().filter(|&(_, x)| x.is_finite()).collect();
        if finite.len() < n_raw {
            eta2_obs::counter("mle.rejected_observations", (n_raw - finite.len()) as u64);
        }
        if finite.is_empty() {
            eta2_obs::counter("mle.fallback", 1);
            eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                source: "mle",
                task: t.id.0 as u64,
                observations: 0,
                reason: "no_finite_observations",
            });
            continue;
        }
        batch.push(TaskData {
            id: t.id,
            domain: t.domain,
            obs: finite,
        });
    }

    let mut expertise = initial;
    let mut truths: BTreeMap<TaskId, TruthEstimate> = BTreeMap::new();
    let mut prev_mu: BTreeMap<TaskId, f64> = BTreeMap::new();

    let mut iterations = 0;
    let mut converged = false;
    while iterations < cfg.max_iterations.max(1) {
        iterations += 1;

        // (1) μ_j and σ_j given current expertise.
        for t in &batch {
            let mut wsum = 0.0;
            let mut wxsum = 0.0;
            for &(user, x) in &t.obs {
                let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                let w = u * u;
                wsum += w;
                wxsum += w * x;
            }
            let mu = wxsum / wsum;
            let mut ss = 0.0;
            for &(user, x) in &t.obs {
                let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                ss += u * u * (x - mu) * (x - mu);
            }
            let denom = if cfg.sigma_weighted_denominator {
                wsum
            } else {
                t.obs.len() as f64
            };
            let sigma = (ss / denom).sqrt().max(cfg.sigma_floor);
            truths.insert(
                t.id,
                TruthEstimate {
                    mu,
                    sigma,
                    fallback: false,
                },
            );
        }

        // (2) u_i^k given current truths: accumulate the N/D ratio.
        let mut acc: BTreeMap<DomainId, Vec<(f64, f64)>> = BTreeMap::new();
        for t in &batch {
            let est = truths[&t.id];
            // Weighted sums for the leave-one-out truth.
            let (mut wsum, mut wxsum) = (0.0, 0.0);
            if cfg.leave_one_out {
                for &(user, x) in &t.obs {
                    let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                    wsum += u * u;
                    wxsum += u * u * x;
                }
            }
            let per_user = acc
                .entry(t.domain)
                .or_insert_with(|| vec![(0.0, 0.0); n_users]);
            for &(user, x) in &t.obs {
                let reference = if cfg.leave_one_out && t.obs.len() > 1 {
                    let u = expertise.get(user, t.domain).max(cfg.expertise_floor);
                    (wxsum - u * u * x) / (wsum - u * u)
                } else {
                    est.mu
                };
                let e = (x - reference) / est.sigma;
                let slot = &mut per_user[user.0 as usize];
                slot.0 += 1.0;
                slot.1 += e * e;
            }
        }
        for (&domain, per_user) in &acc {
            for (i, &(n, d)) in per_user.iter().enumerate() {
                if n > 0.0 {
                    let s = cfg.prior_strength;
                    let raw = ((n + s) / (d + s).max(1e-12)).sqrt();
                    // NaN only arises when gross (finite but enormous)
                    // observations overflow the error accumulator;
                    // treat that as "no demonstrated expertise".
                    let u = if raw.is_finite() {
                        raw.clamp(cfg.expertise_floor, cfg.expertise_cap)
                    } else {
                        cfg.expertise_floor
                    };
                    expertise.set(UserId(i as u32), domain, u);
                }
            }
        }

        eta2_obs::emit_with(|| eta2_obs::Event::MleIteration {
            source: "mle",
            iteration: iterations as u64,
            tasks: batch.len() as u64,
            max_rel_delta: if prev_mu.is_empty() {
                None
            } else {
                Some(
                    truths
                        .iter()
                        .map(|(id, est)| relative_change(prev_mu[id], est.mu))
                        .fold(0.0, f64::max),
                )
            },
        });

        // (3) Convergence: every truth estimate moved < threshold
        // relative to its previous value.
        if !prev_mu.is_empty() {
            let all_small = truths.iter().all(|(id, est)| {
                let prev = prev_mu[id];
                relative_change(prev, est.mu) < cfg.convergence_threshold
            });
            if all_small {
                converged = true;
                break;
            }
        }
        prev_mu = truths.iter().map(|(&id, est)| (id, est.mu)).collect();
    }

    // Degradation provenance, exactly as in the optimized solver.
    for t in &batch {
        let Some(est) = truths.get_mut(&t.id) else {
            continue;
        };
        if !est.mu.is_finite() || !est.sigma.is_finite() {
            let mean = t.obs.iter().map(|&(_, x)| x).sum::<f64>() / t.obs.len() as f64;
            est.mu = mean;
            est.sigma = cfg.sigma_floor;
            est.fallback = true;
            eta2_obs::counter("mle.fallback", 1);
            eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                source: "mle",
                task: t.id.0 as u64,
                observations: t.obs.len() as u64,
                reason: "diverged",
            });
        } else if t.obs.len() == 1 {
            est.fallback = true;
            eta2_obs::counter("mle.fallback", 1);
            eta2_obs::emit_with(|| eta2_obs::Event::MleFallback {
                source: "mle",
                task: t.id.0 as u64,
                observations: 1,
                reason: "single_observation",
            });
        }
    }

    eta2_obs::emit_with(|| eta2_obs::Event::MleOutcome {
        source: "mle",
        iterations: iterations as u64,
        converged,
        tasks: batch.len() as u64,
    });

    MleResult {
        truths,
        expertise,
        iterations,
        converged,
    }
}
