//! Property-based tests across the core algorithms.

use eta2_core::allocation::{
    Allocation, MaxQualityAllocator, MinCostAllocator, MinCostConfig, RandomAllocator,
    ReliabilityGreedyAllocator,
};
use eta2_core::model::{
    DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId, UserProfile,
};
use eta2_core::truth::baselines::{
    AverageLog, HubsAuthorities, MeanBaseline, TruthFinder, TruthMethod,
};
use eta2_core::truth::mle::ExpertiseAwareMle;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

fn arb_instance(
    seed: u64,
    m: u32,
    n: usize,
) -> (Vec<Task>, Vec<UserProfile>, ExpertiseMatrix, ObservationSet) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..m)
        .map(|j| {
            Task::new(
                TaskId(j),
                DomainId(rng.gen_range(0..3)),
                rng.gen_range(0.3..3.0),
                rng.gen_range(0.5..2.0),
            )
        })
        .collect();
    let users: Vec<UserProfile> = (0..n)
        .map(|i| UserProfile::new(UserId(i as u32), rng.gen_range(0.0..15.0)))
        .collect();
    let mut ex = ExpertiseMatrix::new(n);
    for i in 0..n {
        for d in 0..3 {
            ex.set(UserId(i as u32), DomainId(d), rng.gen_range(0.05..3.0));
        }
    }
    let mut obs = ObservationSet::new();
    for t in &tasks {
        for i in 0..n {
            if rng.gen_bool(0.8) {
                obs.insert(UserId(i as u32), t.id, rng.gen_range(-20.0..20.0));
            }
        }
    }
    (tasks, users, ex, obs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every allocator respects capacity and never duplicates a pair.
    #[test]
    fn all_allocators_respect_capacity(seed in 0u64..500, m in 1u32..15, n in 1usize..8) {
        let (tasks, users, ex, _) = arb_instance(seed, m, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reliability: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..3.0)).collect();

        let allocations: Vec<Allocation> = vec![
            MaxQualityAllocator::default().allocate(&tasks, &users, &ex),
            ReliabilityGreedyAllocator::new().allocate(&tasks, &users, &reliability),
            RandomAllocator::new().allocate(&tasks, &users, &mut rng),
        ];
        for alloc in allocations {
            for u in &users {
                prop_assert!(alloc.load(u.id, &tasks) <= u.capacity + 1e-9);
            }
            for (t, us) in alloc.iter() {
                let mut v = us.to_vec();
                v.sort();
                v.dedup();
                prop_assert_eq!(v.len(), alloc.users_for(t).len());
            }
        }
    }

    /// The min-cost allocator's observations mirror its allocation exactly,
    /// its cost equals the assignment-weighted task costs, and capacity
    /// holds.
    #[test]
    fn min_cost_bookkeeping(seed in 0u64..200, m in 1u32..8, n in 2usize..10) {
        let (tasks, users, ex, _) = arb_instance(seed, m, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xdead);
        let mut source = |_u: UserId, _t: &Task| rng.gen_range(-5.0..5.0f64);
        let out = MinCostAllocator::new(MinCostConfig {
            max_rounds: 10,
            ..MinCostConfig::default()
        })
        .allocate(&tasks, &users, &ex, &mut source);

        prop_assert_eq!(out.observations.len(), out.allocation.assignment_count());
        let expected_cost: f64 = tasks
            .iter()
            .map(|t| t.cost * out.allocation.users_for(t.id).len() as f64)
            .sum();
        prop_assert!((out.total_cost - expected_cost).abs() < 1e-9);
        for u in &users {
            prop_assert!(out.allocation.load(u.id, &tasks) <= u.capacity + 1e-9);
        }
        prop_assert!(out.rounds <= 10);
    }

    /// Truth estimates of every method stay inside the observation hull.
    #[test]
    fn all_methods_stay_in_hull(seed in 0u64..200) {
        let (tasks, _, _, obs) = arb_instance(seed, 6, 5);
        let methods: Vec<Box<dyn TruthMethod>> = vec![
            Box::new(MeanBaseline),
            Box::new(HubsAuthorities::default()),
            Box::new(AverageLog::default()),
            Box::new(TruthFinder::default()),
        ];
        for m in methods {
            let r = m.estimate(&obs, 5);
            for (&id, &mu) in &r.truths {
                let o = obs.for_task(id).unwrap();
                let lo = o.iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
                let hi = o.iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(mu >= lo - 1e-9 && mu <= hi + 1e-9, "{}", m.name());
            }
        }
        let mle = ExpertiseAwareMle::default().estimate(&tasks, &obs, 5);
        for (&id, est) in &mle.truths {
            let o = obs.for_task(id).unwrap();
            let lo = o.iter().map(|&(_, x)| x).fold(f64::INFINITY, f64::min);
            let hi = o.iter().map(|&(_, x)| x).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(est.mu >= lo - 1e-9 && est.mu <= hi + 1e-9);
        }
    }

    /// The max-quality objective is monotone in assignments: adding a user
    /// never decreases it.
    #[test]
    fn objective_monotone_in_assignments(seed in 0u64..200) {
        let (tasks, users, ex, _) = arb_instance(seed, 5, 5);
        let a = MaxQualityAllocator::default();
        let mut alloc = Allocation::new();
        let mut prev = a.objective(&tasks, &ex, &alloc);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..10 {
            let t = &tasks[rng.gen_range(0..tasks.len())];
            let u = users[rng.gen_range(0..users.len())].id;
            alloc.assign(u, t.id);
            let now = a.objective(&tasks, &ex, &alloc);
            prop_assert!(now >= prev - 1e-12);
            prev = now;
        }
    }

    /// Greedy max-quality weakly dominates any single-task random
    /// allocation of the same capacity when durations are uniform (a
    /// sanity lower bound — not the 1/2-approximation proof, but a cheap
    /// falsifier for gross regressions).
    #[test]
    fn greedy_beats_random_on_uniform_durations(seed in 0u64..100) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..8)
            .map(|j| Task::new(TaskId(j), DomainId(j % 2), 1.0, 1.0))
            .collect();
        let users: Vec<UserProfile> = (0..5)
            .map(|i| UserProfile::new(UserId(i), rng.gen_range(1.0..5.0f64).floor()))
            .collect();
        let mut ex = ExpertiseMatrix::new(5);
        for i in 0..5u32 {
            for d in 0..2 {
                ex.set(UserId(i), DomainId(d), rng.gen_range(0.1..3.0));
            }
        }
        let a = MaxQualityAllocator::default();
        let greedy = a.objective(&tasks, &ex, &a.allocate(&tasks, &users, &ex));
        // Greedy is a ½-approximation, so a single lucky random draw could
        // in principle edge past it; the *average* random value cannot.
        let random_avg: f64 = (0..5)
            .map(|_| {
                let alloc = RandomAllocator::new().allocate(&tasks, &users, &mut rng);
                a.objective(&tasks, &ex, &alloc)
            })
            .sum::<f64>()
            / 5.0;
        prop_assert!(
            greedy >= random_avg * 0.95 - 1e-9,
            "greedy {greedy} well below random average {random_avg}"
        );
    }
}

#[test]
fn observation_set_from_iterator_roundtrip() {
    let obs: ObservationSet = (0..10u32)
        .map(|k| eta2_core::model::Observation {
            user: UserId(k % 3),
            task: TaskId(k % 4),
            value: k as f64,
        })
        .collect();
    // Later duplicates replace earlier ones: (user,task) keys collide for
    // k and k+12, but k only goes to 9, so count distinct pairs.
    let distinct: std::collections::HashSet<(u32, u32)> =
        (0..10u32).map(|k| (k % 3, k % 4)).collect();
    assert_eq!(obs.len(), distinct.len());
    let back: ObservationSet = obs.iter().collect();
    assert_eq!(obs, back);
}
