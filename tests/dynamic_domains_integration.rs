//! Streaming domain discovery + expertise bookkeeping across crates:
//! the §3.3.2 dynamic clustering feeding the §4.2 expertise updates.

use eta2::cluster::{DomainEvent, DynamicClusterer};
use eta2::core::model::{DomainId, ObservationSet, Task, TaskId, UserId};
use eta2::core::truth::dynamic::DynamicExpertise;
use eta2::core::truth::mle::MleConfig;
use eta2::embed::corpus::TopicCorpus;
use eta2::embed::pairword::pairword_distance;
use eta2::embed::{Embedding, PairWordExtractor, SkipGramConfig, SkipGramTrainer};
use rand::{Rng, SeedableRng};

fn embedding() -> Embedding {
    let sentences = TopicCorpus::builtin().generate(250, 5);
    SkipGramTrainer::new(SkipGramConfig {
        dim: 16,
        epochs: 3,
        ..SkipGramConfig::default()
    })
    .train_sentences(&sentences)
    .expect("corpus yields vocabulary")
}

fn vectorize(emb: &Embedding, text: &str) -> Vec<f32> {
    PairWordExtractor::new()
        .extract(text)
        .semantic_vector(emb)
        .unwrap_or_else(|| vec![0.0; 2 * emb.dim()])
}

#[test]
fn new_topic_founds_domain_and_expertise_starts_fresh() {
    let emb = embedding();
    let metric = |a: &Vec<f32>, b: &Vec<f32>| pairword_distance(a, b);
    let mut dc = DynamicClusterer::new(metric, 0.6);

    let day1 = [
        "What is the noise volume around the municipal building?",
        "What is the decibel measurement near the construction street?",
        "How many parking spots are at the garage gate?",
        "How many parking spaces are at the deck entrance?",
    ];
    let warm = dc.warm_up(day1.iter().map(|d| vectorize(&emb, d)).collect());
    let initial_domains = dc.domains().len();
    assert!(initial_domains >= 2, "day-1 topics not separated");
    assert_eq!(warm.assignments[0], warm.assignments[1]);
    assert_eq!(warm.assignments[2], warm.assignments[3]);

    let day2 = ["What is the rainfall forecast near the coast storm?"];
    let upd = dc.add(day2.iter().map(|d| vectorize(&emb, d)).collect());
    assert!(
        upd.events
            .iter()
            .any(|e| matches!(e, DomainEvent::Created { .. })),
        "weather topic did not found a new domain: {:?}",
        upd.events
    );
}

#[test]
fn expertise_survives_domain_merge_end_to_end() {
    // Two artificial domains accumulate expertise, then merge; the merged
    // domain must retain the users' relative skill ordering.
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut de = DynamicExpertise::new(6, 0.8, MleConfig::default());
    let skills = [3.0, 2.0, 1.0, 1.0, 0.5, 0.4];

    for (domain, base_task) in [(0u32, 0u32), (1, 100)] {
        let tasks: Vec<Task> = (0..25)
            .map(|j| Task::new(TaskId(base_task + j), DomainId(domain), 1.0, 1.0))
            .collect();
        let mut obs = ObservationSet::new();
        for t in &tasks {
            let mu: f64 = rng.gen_range(0.0..20.0);
            for (i, &u) in skills.iter().enumerate() {
                let z = eta2::stats::normal::standard_sample(&mut rng);
                obs.insert(UserId(i as u32), t.id, mu + z / u);
            }
        }
        let out = de.ingest_batch(&tasks, &obs);
        assert!(out.converged);
    }

    de.merge_domains(DomainId(0), DomainId(1));
    assert_eq!(de.domains().count(), 1);
    let u: Vec<f64> = (0..6)
        .map(|i| de.expertise(UserId(i), DomainId(0)))
        .collect();
    assert!(u[0] > u[2], "merge lost skill ordering: {u:?}");
    assert!(u[2] > u[5], "merge lost skill ordering: {u:?}");
}

#[test]
fn clusterer_and_expertise_agree_on_domain_ids() {
    // The simulator's contract: every domain id the clusterer hands out is
    // usable by the expertise state, including after merges.
    let emb = embedding();
    let metric = |a: &Vec<f32>, b: &Vec<f32>| pairword_distance(a, b);
    let mut dc = DynamicClusterer::new(metric, 0.7);
    let mut de = DynamicExpertise::new(3, 0.5, MleConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let batches: [&[&str]; 3] = [
        &[
            "What is the noise volume near the street?",
            "How many parking spots are at the garage?",
        ],
        &[
            "What is the ambient decibel measurement around the building?",
            "What is the temperature forecast near the coast?",
        ],
        &["How many cars are at the parking deck entrance?"],
    ];

    let mut next_task = 0u32;
    for (day, batch) in batches.iter().enumerate() {
        let points: Vec<Vec<f32>> = batch.iter().map(|d| vectorize(&emb, d)).collect();
        let upd = if day == 0 {
            dc.warm_up(points)
        } else {
            dc.add(points)
        };
        for e in &upd.events {
            if let DomainEvent::Merged { kept, absorbed } = e {
                de.merge_domains(DomainId(*kept), DomainId(*absorbed));
            }
        }
        let tasks: Vec<Task> = upd
            .assignments
            .iter()
            .map(|&d| {
                let t = Task::new(TaskId(next_task), DomainId(d), 1.0, 1.0);
                next_task += 1;
                t
            })
            .collect();
        let mut obs = ObservationSet::new();
        for t in &tasks {
            for i in 0..3u32 {
                obs.insert(UserId(i), t.id, rng.gen_range(0.0..10.0));
            }
        }
        de.ingest_batch(&tasks, &obs);
        // Every live cluster id must be queryable.
        for &(id, _) in dc.domains() {
            let _ = de.expertise(UserId(0), DomainId(id));
        }
    }
    // Expertise domains are a subset of ids ever issued; none panic.
    assert!(de.domains().count() >= 1);
}
