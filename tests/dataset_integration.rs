//! Statistical integration tests on the generated datasets — the paper's
//! §2.3 validation (Fig. 2 / Table 1) as executable checks.

use eta2::core::model::UserId;
use eta2::datasets::sfv::SfvConfig;
use eta2::datasets::survey::SurveyConfig;
use eta2::datasets::synthetic::SyntheticConfig;
use eta2::datasets::Dataset;
use eta2::stats::chi_square::NormalityGofTest;
use eta2::stats::descriptive::{mean, population_std};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Full observation matrix: every user answers every task once.
fn observe_all(ds: &Dataset, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    ds.tasks
        .iter()
        .map(|t| {
            ds.users
                .iter()
                .map(|u| ds.observe(u.id, t, &mut rng))
                .collect()
        })
        .collect()
}

#[test]
fn fig2_observation_errors_follow_standard_normal() {
    // err_ij = (x_ij − μ_j)/std_j accumulated over all tasks ≈ N(0,1).
    let ds = SurveyConfig::default().generate(0);
    let all = observe_all(&ds, 1);
    let mut errors = Vec::new();
    for (j, obs) in all.iter().enumerate() {
        let mu = ds.tasks[j].ground_truth;
        let std = population_std(obs).unwrap().max(1e-9);
        errors.extend(obs.iter().map(|x| (x - mu) / std));
    }
    let m = mean(&errors).unwrap();
    let s = population_std(&errors).unwrap();
    assert!(m.abs() < 0.05, "mean {m}");
    assert!((s - 1.0).abs() < 0.1, "std {s}");
    // Tail mass beyond 3σ stays small. It exceeds the pure-normal ~0.3%
    // because per-task samples are scale mixtures (users differ in
    // expertise), which is also why the paper's Fig 2 histogram has
    // slightly heavy shoulders.
    let tail = errors.iter().filter(|e| e.abs() > 3.0).count() as f64 / errors.len() as f64;
    assert!(tail < 0.04, "tail {tail}");
}

#[test]
fn table1_chi_square_pass_rate_is_high_but_not_perfect() {
    // Per-task normality at α = 0.05: the paper reports ~90 %. Matching
    // the experimental situation: each task is answered by an
    // allocation-sized subset of users (~12), and the paper's flat
    // non-rejection rates imply the naive (unadjusted-dof) χ² variant.
    use rand::seq::SliceRandom;
    let ds = SurveyConfig::default().generate(2);
    let mut rng = StdRng::seed_from_u64(3);
    let test = NormalityGofTest::naive();
    let mut passed = 0;
    for t in &ds.tasks {
        let mut ids: Vec<usize> = (0..ds.users.len()).collect();
        ids.shuffle(&mut rng);
        ids.truncate(12);
        let obs: Vec<f64> = ids
            .iter()
            .map(|&i| ds.observe(ds.users[i].id, t, &mut rng))
            .collect();
        if test.test(&obs).unwrap().passes(0.05) {
            passed += 1;
        }
    }
    let rate = passed as f64 / ds.tasks.len() as f64;
    assert!(
        (0.75..=1.0).contains(&rate),
        "pass rate {rate:.2} outside plausible band"
    );
}

#[test]
fn expertise_controls_observation_spread_in_all_datasets() {
    // Fig. 7's mechanism: higher expertise → smaller observation error.
    let datasets = [
        SyntheticConfig {
            n_users: 20,
            n_tasks: 60,
            n_domains: 3,
            ..SyntheticConfig::default()
        }
        .generate(0),
        SurveyConfig {
            n_users: 20,
            n_tasks: 60,
            ..SurveyConfig::default()
        }
        .generate(0),
        SfvConfig {
            n_entities: 10,
            ..SfvConfig::default()
        }
        .generate(0),
    ];
    for ds in &datasets {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo_err = Vec::new();
        let mut hi_err = Vec::new();
        for t in &ds.tasks {
            for u in &ds.users {
                let e = ds.true_expertise(u.id, t.oracle_domain);
                let x = ds.observe(u.id, t, &mut rng);
                let err = (x - t.ground_truth).abs() / t.base_sigma;
                if e < 1.0 {
                    lo_err.push(err);
                } else if e > 2.0 {
                    hi_err.push(err);
                }
            }
        }
        let lo = mean(&lo_err).unwrap();
        let hi = mean(&hi_err).unwrap();
        assert!(
            hi < lo / 1.5,
            "{}: high-expertise error {hi:.3} not well below low {lo:.3}",
            ds.name
        );
    }
}

#[test]
fn datasets_roundtrip_through_files() {
    let dir = std::env::temp_dir().join("eta2_dataset_integration");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, ds) in [
        (
            "synthetic",
            SyntheticConfig {
                n_users: 5,
                n_tasks: 10,
                n_domains: 2,
                ..SyntheticConfig::default()
            }
            .generate(1),
        ),
        (
            "survey",
            SurveyConfig {
                n_users: 5,
                n_tasks: 10,
                ..SurveyConfig::default()
            }
            .generate(1),
        ),
        (
            "sfv",
            SfvConfig {
                n_entities: 2,
                ..SfvConfig::default()
            }
            .generate(1),
        ),
    ] {
        let path = dir.join(format!("{name}.json"));
        eta2::datasets::io::save_dataset(&ds, &path).unwrap();
        let back = eta2::datasets::io::load_dataset(&path).unwrap();
        assert_eq!(ds, back, "{name}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn observation_is_deterministic_given_rng_state() {
    let ds = SyntheticConfig {
        n_users: 3,
        n_tasks: 5,
        n_domains: 2,
        ..SyntheticConfig::default()
    }
    .generate(0);
    let mut a = StdRng::seed_from_u64(7);
    let mut b = StdRng::seed_from_u64(7);
    for t in &ds.tasks {
        assert_eq!(
            ds.observe(UserId(0), t, &mut a),
            ds.observe(UserId(0), t, &mut b)
        );
    }
}
