//! Crash-point recovery properties: for any seeded durable workload and
//! any kill point — every record boundary, a torn mid-record tail, and a
//! corrupted-checksum tail — `ServeEngine::recover` rebuilds state
//! bit-identical to an uninterrupted twin.
//!
//! `cargo test` runs a small sample; the exhaustive sweep over the
//! committed corpus is `eta2-cli check --crash` (the CI wal-smoke job).

use eta2::check::crash;
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eta2-wal-recovery-{tag}-{}", std::process::id()))
}

/// The corpus seeds committed for the crash sweep (the `check --crash`
/// section of `corpus/seeds.txt`); pinned here so `cargo test` exercises
/// the exact scenarios CI replays exhaustively.
const CRASH_SEEDS: [u64; 8] = [10, 12, 21, 42, 74, 78, 82, 98];

#[test]
fn committed_crash_seeds_recover_at_every_kill_point() {
    let dir = scratch("corpus");
    for seed in CRASH_SEEDS {
        let report = crash::run_crash_seed(seed, &dir)
            .unwrap_or_else(|e| panic!("seed {seed}: sweep failed to run: {e}"));
        assert_eq!(
            report.kill_points,
            3 * report.ops + 1,
            "seed {seed}: clean at every boundary plus torn+corrupt at every record"
        );
        assert!(
            report.passed(),
            "seed {seed}: {} kill point(s) diverged:\n{}",
            report.failures.len(),
            report
                .failures
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_seeds_are_committed_to_the_corpus() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus/seeds.txt");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read seed corpus at {path}: {e}"));
    let corpus = eta2::check::gate::corpus::parse(&text).expect("well-formed corpus");
    for seed in CRASH_SEEDS {
        assert!(
            corpus.seeds.contains(&seed),
            "crash seed {seed} missing from corpus/seeds.txt"
        );
    }
}

proptest! {
    // The sweep is quadratic in the workload (every kill point replays
    // the whole prefix), so a handful of random seeds per run is plenty —
    // exhaustive coverage lives in the corpus + CI.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// For ANY seed and EVERY kill point the sweep covers, recovery
    /// equals the uninterrupted twin.
    #[test]
    fn any_seed_recovers_at_every_kill_point(seed in 0u64..10_000) {
        let dir = scratch("prop");
        let report = crash::run_crash_seed(seed, &dir)
            .unwrap_or_else(|e| panic!("seed {seed}: sweep failed to run: {e}"));
        prop_assert!(
            report.passed(),
            "seed {}: {} kill point(s) diverged; first: {}",
            seed,
            report.failures.len(),
            report.failures.first().map(|f| f.to_string()).unwrap_or_default()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
