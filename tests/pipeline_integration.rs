//! End-to-end pipeline tests across crates: datasets → embedding →
//! clustering → allocation → truth analysis → metrics.

use eta2::datasets::sfv::SfvConfig;
use eta2::datasets::survey::SurveyConfig;
use eta2::datasets::synthetic::SyntheticConfig;
use eta2::sim::{train_embedding_for, ApproachKind, SimConfig, Simulation};

fn small_sim() -> Simulation {
    Simulation::new(SimConfig {
        corpus_documents: 150,
        ..SimConfig::default()
    })
}

#[test]
fn synthetic_all_approaches_produce_finite_errors() {
    let ds = SyntheticConfig {
        n_users: 30,
        n_tasks: 100,
        n_domains: 4,
        ..SyntheticConfig::default()
    }
    .generate(0);
    let sim = small_sim();
    for approach in ApproachKind::ALL {
        let m = sim.run(&ds, approach, 0).unwrap();
        assert!(
            m.daily_error.iter().all(|e| e.is_finite()),
            "{}: {:?}",
            approach.name(),
            m.daily_error
        );
        assert!(m.overall_error.is_finite(), "{}", approach.name());
    }
}

#[test]
fn eta2_beats_every_baseline_on_synthetic() {
    let ds = SyntheticConfig {
        n_users: 40,
        n_tasks: 200,
        n_domains: 5,
        ..SyntheticConfig::default()
    }
    .generate(1);
    let sim = small_sim();
    let avg = |approach: ApproachKind| -> f64 {
        (0..5)
            .map(|seed| sim.run(&ds, approach, seed).unwrap().overall_error)
            .sum::<f64>()
            / 5.0
    };
    let eta2 = avg(ApproachKind::Eta2);
    for other in [
        ApproachKind::HubsAuthorities,
        ApproachKind::AverageLog,
        ApproachKind::TruthFinder,
        ApproachKind::Baseline,
    ] {
        let e = avg(other);
        assert!(eta2 < e, "ETA2 {eta2:.4} not below {} {e:.4}", other.name());
    }
}

#[test]
fn survey_full_text_pipeline_works_and_wins() {
    let ds = SurveyConfig::default().generate(3);
    let sim = small_sim();
    let emb = train_embedding_for(&ds, sim.config())
        .expect("embedding trains")
        .expect("survey needs embedding");
    let avg = |approach: ApproachKind| -> f64 {
        (0..3)
            .map(|seed| {
                sim.run_with_embedding(&ds, approach, seed, Some(&emb))
                    .unwrap()
                    .overall_error
            })
            .sum::<f64>()
            / 3.0
    };
    let eta2 = avg(ApproachKind::Eta2);
    let baseline = avg(ApproachKind::Baseline);
    assert!(
        eta2 < baseline,
        "survey: ETA2 {eta2:.4} not below Baseline {baseline:.4}"
    );
}

#[test]
fn sfv_full_text_pipeline_runs() {
    // Scaled-down SFV (18 systems is fixed, fewer entities for speed).
    let ds = SfvConfig {
        n_entities: 20,
        ..SfvConfig::default()
    }
    .generate(4);
    let sim = small_sim();
    let emb = train_embedding_for(&ds, sim.config())
        .expect("embedding trains")
        .expect("sfv needs embedding");
    let m = sim
        .run_with_embedding(&ds, ApproachKind::Eta2, 0, Some(&emb))
        .unwrap();
    assert!(m.overall_error.is_finite());
    assert!(
        m.final_domains >= 2 && m.final_domains <= 20,
        "implausible domain count {}",
        m.final_domains
    );
}

#[test]
fn runs_are_reproducible_across_processes() {
    // Seeded end-to-end determinism is what makes EXPERIMENTS.md auditable.
    let ds = SyntheticConfig {
        n_users: 20,
        n_tasks: 60,
        n_domains: 3,
        ..SyntheticConfig::default()
    }
    .generate(9);
    let sim = small_sim();
    let a = sim.run(&ds, ApproachKind::Eta2MinCost, 5).unwrap();
    let b = sim.run(&ds, ApproachKind::Eta2MinCost, 5).unwrap();
    assert_eq!(a, b);
}

#[test]
fn mle_iteration_counts_match_fig12_shape() {
    // The paper's Fig. 12: most MLE invocations converge within ~10
    // iterations, almost all within 60.
    let ds = SyntheticConfig {
        n_users: 30,
        n_tasks: 100,
        n_domains: 4,
        ..SyntheticConfig::default()
    }
    .generate(2);
    let sim = small_sim();
    let m = sim.run(&ds, ApproachKind::Eta2, 0).unwrap();
    assert!(!m.mle_iterations.is_empty());
    let within_60 = m.mle_iterations.iter().filter(|&&it| it <= 60).count() as f64
        / m.mle_iterations.len() as f64;
    assert!(within_60 >= 0.9, "only {within_60:.2} within 60 iterations");
}
