//! Cross-crate allocation tests: capacity discipline, min-cost vs
//! max-quality economics, and allocation quality under expertise.

use eta2::core::allocation::{MaxQualityAllocator, MinCostAllocator, MinCostConfig};
use eta2::core::model::{ExpertiseMatrix, Task, UserId};
use eta2::datasets::synthetic::SyntheticConfig;
use eta2::sim::config::MinCostTuning;
use eta2::sim::{ApproachKind, SimConfig, Simulation};
use rand::SeedableRng;

#[test]
fn simulated_min_cost_is_cheaper_with_similar_error() {
    // Sized so capacity has headroom over the quality gate: ~36 candidate
    // users per task against a gate of ~15-25, letting ETA2-mc stop early.
    let ds = SyntheticConfig {
        n_users: 60,
        n_tasks: 100,
        n_domains: 4,
        ..SyntheticConfig::default()
    }
    .generate(0);
    let sim = Simulation::new(SimConfig::default());
    let seeds = 4;
    let mut mq = (0.0, 0.0);
    let mut mc = (0.0, 0.0);
    for seed in 0..seeds {
        let a = sim.run(&ds, ApproachKind::Eta2, seed).unwrap();
        let b = sim.run(&ds, ApproachKind::Eta2MinCost, seed).unwrap();
        mq.0 += a.overall_error / seeds as f64;
        mq.1 += a.total_cost / seeds as f64;
        mc.0 += b.overall_error / seeds as f64;
        mc.1 += b.total_cost / seeds as f64;
    }
    // Fig. 9/10's headline: similar error, much lower cost.
    assert!(mc.1 < 0.8 * mq.1, "cost {:.0} vs {:.0}", mc.1, mq.1);
    assert!(
        mc.0 < SimConfig::default().min_cost.max_error,
        "ETA2-mc error {:.3} misses the quality requirement",
        mc.0
    );
}

#[test]
fn round_budget_extremes_still_meet_quality() {
    let ds = SyntheticConfig {
        n_users: 40,
        n_tasks: 60,
        n_domains: 3,
        ..SyntheticConfig::default()
    }
    .generate(1);
    for round_budget in [10.0, 200.0] {
        let sim = Simulation::new(SimConfig {
            min_cost: MinCostTuning {
                round_budget,
                ..MinCostTuning::default()
            },
            ..SimConfig::default()
        });
        let m = sim.run(&ds, ApproachKind::Eta2MinCost, 0).unwrap();
        assert!(
            m.overall_error.is_finite() && m.total_cost > 0.0,
            "c° = {round_budget}"
        );
    }
}

#[test]
fn allocators_respect_capacity_through_the_simulator() {
    // Drive the allocators directly with the dataset's profiles and verify
    // the invariant the simulator depends on.
    let ds = SyntheticConfig {
        n_users: 15,
        n_tasks: 60,
        n_domains: 3,
        ..SyntheticConfig::default()
    }
    .generate(2);
    let tasks: Vec<Task> = ds.tasks.iter().map(|t| t.to_oracle_task()).collect();
    let profiles = ds.profiles();
    let expertise = ExpertiseMatrix::new(15);

    let alloc = MaxQualityAllocator::default().allocate(&tasks, &profiles, &expertise);
    for p in &profiles {
        assert!(
            alloc.load(p.id, &tasks) <= p.capacity + 1e-9,
            "{} overloaded",
            p.id
        );
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut source =
        |user: UserId, task: &Task| ds.observe(user, &ds.tasks[task.id.0 as usize], &mut rng);
    let outcome = MinCostAllocator::new(MinCostConfig::default()).allocate(
        &tasks,
        &profiles,
        &expertise,
        &mut source,
    );
    for p in &profiles {
        assert!(
            outcome.allocation.load(p.id, &tasks) <= p.capacity + 1e-9,
            "{} overloaded by min-cost",
            p.id
        );
    }
}

#[test]
fn higher_capability_reduces_error() {
    // Fig. 6's x-axis effect: more capability → more users per task →
    // lower estimation error.
    let base = SyntheticConfig {
        n_users: 30,
        n_tasks: 100,
        n_domains: 4,
        ..SyntheticConfig::default()
    };
    let sim = Simulation::new(SimConfig::default());
    let avg_error = |tau: f64| -> f64 {
        let seeds = 4;
        (0..seeds)
            .map(|seed| {
                let mut ds = base.generate(seed);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                ds.regenerate_capacities(tau, 4.0, &mut rng);
                sim.run(&ds, ApproachKind::Eta2, seed)
                    .unwrap()
                    .overall_error
            })
            .sum::<f64>()
            / seeds as f64
    };
    let tight = avg_error(6.0);
    let roomy = avg_error(20.0);
    assert!(
        roomy < tight,
        "error at tau=20 ({roomy:.4}) not below tau=6 ({tight:.4})"
    );
}

#[test]
fn table2_assignment_stats_shape() {
    // Table 2's count distribution: every allocated task has at least one
    // user, the bulk sit in small buckets, and the maximum stays bounded.
    // (The expertise-vs-count gradient of the paper's Table 2 only appears
    // under the paper-exact expertise update — see the next test and the
    // `table2_allocation_stats` bench.)
    let ds = SyntheticConfig::default().generate(5);
    let sim = Simulation::new(SimConfig::default());
    let m = sim.run(&ds, ApproachKind::Eta2, 0).unwrap();
    assert!(!m.assignment_stats.is_empty());
    let counts: Vec<usize> = m.assignment_stats.iter().map(|&(n, _)| n).collect();
    assert!(counts.iter().all(|&n| n >= 1));
    assert!(*counts.iter().max().unwrap() <= 40);
    let small = counts.iter().filter(|&&n| n <= 10).count() as f64 / counts.len() as f64;
    assert!(small > 0.5, "only {small:.2} of tasks have <= 10 users");
}

#[test]
fn table2_expertise_gradient_in_paper_exact_mode() {
    // With the paper-exact (non-robustified) expertise update, tasks with
    // few assigned users get distinctly higher-expertise assignees — the
    // anti-correlation the paper's Table 2 reports.
    use eta2::core::truth::mle::MleConfig;
    let ds = SyntheticConfig::default().generate(5);
    let sim = Simulation::new(SimConfig {
        mle: MleConfig {
            leave_one_out: false,
            prior_strength: 0.0,
            ..MleConfig::default()
        },
        ..SimConfig::default()
    });
    let mut stats = Vec::new();
    for seed in 0..3 {
        stats.extend(
            sim.run(&ds, ApproachKind::Eta2, seed)
                .unwrap()
                .assignment_stats,
        );
    }
    let bucket = |lo: usize, hi: usize| -> f64 {
        let vals: Vec<f64> = stats
            .iter()
            .filter(|&&(n, _)| n >= lo && n <= hi)
            .map(|&(_, e)| e)
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let few = bucket(1, 5);
    let many = bucket(16, 100);
    assert!(
        few > many,
        "avg expertise with few users ({few:.2}) not above many ({many:.2})"
    );
}
