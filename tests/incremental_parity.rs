//! Property suite for the incremental truth-analysis paths: for arbitrary
//! interleavings of registers, submits, ticks and merges, the dirty-set
//! engine (`incremental: true`, the default) must be bit-identical to the
//! full-reconvergence engine (`incremental: false`, the historical cost
//! profile). A second property replays generated scenarios through the
//! differential harness, whose oracle-pair stack also compares the
//! optimized MLE against the frozen `truth::reference` solver and checks
//! the warm-started twin for structural parity (divergence is
//! characterized, not constant-bounded — DESIGN.md §13.2).

use eta2::check;
use eta2_core::model::{DomainId, ObservationSet, TaskId, UserId};
use eta2_serve::{ServeConfig, ServeEngine, TaskSpec};
use proptest::prelude::*;

// `ServeConfig` is `#[non_exhaustive]`; mutating a default is the
// supported construction path outside `eta2-serve`.
#[allow(clippy::field_reassign_with_default)]
fn cfg(n_users: usize, n_shards: usize, cap: usize, incremental: bool) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.n_users = n_users;
    cfg.n_shards = n_shards;
    cfg.batch_capacity = cap;
    cfg.threads = 1;
    cfg.incremental = incremental;
    cfg
}

const N_USERS: usize = 4;
const N_DOMAINS: u32 = 5;

/// One generated action of an ad-hoc interleaving (independent of the
/// seeded scenario generator, so the two properties don't share blind
/// spots).
#[derive(Debug, Clone)]
enum Action {
    /// Domains of the tasks to register.
    Register(Vec<u32>),
    /// `(user, task_pick, value)`; `task_pick` indexes registered ids
    /// modulo their count.
    Submit(Vec<(u32, usize, f64)>),
    Tick,
    Merge(u32, u32),
}

/// Replays the actions on one engine, mirroring id allocation, and drains
/// the queue with a final tick.
fn replay(engine: &ServeEngine, actions: &[Action]) -> Vec<TaskId> {
    let mut ids = Vec::new();
    for action in actions {
        match action {
            Action::Register(domains) => {
                let specs: Vec<TaskSpec> = domains
                    .iter()
                    .map(|&d| TaskSpec::new(DomainId(d), 1.0, 1.0))
                    .collect();
                ids.extend(engine.register_tasks(&specs).expect("valid specs"));
            }
            Action::Submit(reports) => {
                if ids.is_empty() {
                    continue;
                }
                let mut batch = ObservationSet::new();
                for &(u, pick, v) in reports {
                    batch.insert(UserId(u), ids[pick % ids.len()], v);
                }
                engine.submit(&batch);
            }
            Action::Tick => {
                engine.tick();
            }
            Action::Merge(kept, absorbed) => {
                if kept != absorbed {
                    engine.merge_domains(DomainId(*kept), DomainId(*absorbed));
                }
            }
        }
    }
    engine.tick();
    ids
}

/// The parity body: plain asserts so the comparison logic stays a normal
/// function (proptest only drives the inputs).
fn assert_incremental_parity(actions: &[Action], n_shards: usize, cap: usize) {
    let inc = ServeEngine::new(cfg(N_USERS, n_shards, cap, true));
    let full = ServeEngine::new(cfg(N_USERS, n_shards, cap, false));
    let ids_a = replay(&inc, actions);
    let ids_b = replay(&full, actions);
    assert_eq!(ids_a, ids_b, "id allocation diverged");
    for &id in &ids_a {
        let key = |e: eta2_core::truth::TruthEstimate| (e.mu.to_bits(), e.sigma.to_bits());
        assert_eq!(
            inc.truth(id).map(key),
            full.truth(id).map(key),
            "truth of {id:?} diverged"
        );
    }
    let (sa, sb) = (inc.snapshot(), full.snapshot());
    sa.validate().unwrap();
    sb.validate().unwrap();
    assert_eq!(sa.expertise_matrix(), sb.expertise_matrix());
    assert_eq!(inc.queue_depth(), full.queue_depth());
}

fn assert_seed_replays_clean(seed: u64) {
    let outcome = check::run_seed(seed);
    assert!(
        outcome.divergence.is_none(),
        "seed {seed}: {}",
        outcome.divergence.unwrap()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dirty-set flushes are bit-identical to full reconvergence for any
    /// interleaving, across shard counts and count-triggered thresholds.
    #[test]
    fn incremental_bitwise_equals_full(
        actions in prop::collection::vec(prop_oneof![
            3 => prop::collection::vec(0..N_DOMAINS, 1..4).prop_map(Action::Register),
            4 => prop::collection::vec(
                (0..N_USERS as u32, 0usize..64, -20.0..20.0f64),
                1..8,
            ).prop_map(Action::Submit),
            2 => Just(Action::Tick),
            1 => (0..N_DOMAINS, 0..N_DOMAINS).prop_map(|(k, a)| Action::Merge(k, a)),
        ], 1..14),
        n_shards in 1usize..4,
        cap in 0usize..6,
    ) {
        assert_incremental_parity(&actions, n_shards, cap);
    }

    /// The differential harness's oracle pairs (sharded vs sequential,
    /// incremental vs full, warm vs cold, MLE vs frozen reference) replay
    /// clean over arbitrary generated scenarios.
    #[test]
    fn scenario_oracle_pairs_replay_clean(seed in 0u64..4096) {
        assert_seed_replays_clean(seed);
    }
}
