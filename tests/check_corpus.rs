//! Replays the committed seed corpus (`corpus/seeds.txt`) through the
//! differential runner with invariants enabled. CI runs this target as the
//! check-corpus job; a failure here means an oracle pair diverged or a
//! runtime invariant was breached on a scenario that previously passed.

use eta2::check;

#[test]
fn corpus_replays_clean() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus/seeds.txt");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read seed corpus at {path}: {e}"));
    let corpus = check::gate::corpus::parse(&text).expect("well-formed corpus");
    assert!(
        corpus.duplicates.is_empty(),
        "corpus contains duplicate seeds: {:?}",
        corpus.duplicates
    );
    assert!(!corpus.seeds.is_empty(), "corpus is empty");

    // Count mode rather than panic mode: a breach is reported through
    // `RunOutcome::new_breaches` with the seed attached, instead of
    // aborting the whole replay at the first hit.
    check::gate::set_mode(check::gate::Mode::Count);
    let mut failures = Vec::new();
    for outcome in check::run_seeds(&corpus.seeds) {
        if !outcome.passed() {
            failures.push(format!(
                "seed {:#x}: divergence {:?}, {} invariant breach(es)",
                outcome.seed,
                outcome.divergence.as_ref().map(|d| d.to_string()),
                outcome.new_breaches
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus seed(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
