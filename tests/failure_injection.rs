//! Failure-injection integration tests (DESIGN.md §5): degenerate inputs
//! the live system will eventually meet must degrade gracefully, never
//! panic or poison downstream state.

use eta2::core::allocation::{MaxQualityAllocator, MinCostAllocator, MinCostConfig};
use eta2::core::model::{
    DomainId, ExpertiseMatrix, ObservationSet, Task, TaskId, UserId, UserProfile,
};
use eta2::core::truth::dynamic::DynamicExpertise;
use eta2::core::truth::mle::{ExpertiseAwareMle, MleConfig};
use eta2::datasets::synthetic::SyntheticConfig;
use eta2::server::{ServerBuilder, TaskInput};
use eta2::sim::{ApproachKind, SimConfig, Simulation};

#[test]
fn all_users_zero_capacity_yields_uncovered_tasks_not_panics() {
    let mut ds = SyntheticConfig {
        n_users: 6,
        n_tasks: 12,
        n_domains: 2,
        ..SyntheticConfig::default()
    }
    .generate(0);
    for u in &mut ds.users {
        u.capacity = 0.0;
    }
    let sim = Simulation::new(SimConfig::default());
    for approach in ApproachKind::ALL {
        let m = sim.run(&ds, approach, 0).unwrap();
        assert_eq!(m.total_cost, 0.0, "{}", approach.name());
        assert_eq!(m.uncovered_tasks, 12, "{}", approach.name());
        // No estimates exist, so daily errors are NaN by contract.
        assert!(
            m.daily_error.iter().all(|e| e.is_nan()),
            "{}",
            approach.name()
        );
    }
}

#[test]
fn task_longer_than_any_capacity_is_skipped_everywhere() {
    let tasks = vec![
        Task::new(TaskId(0), DomainId(0), 100.0, 1.0), // impossible
        Task::new(TaskId(1), DomainId(0), 1.0, 1.0),
    ];
    let users = vec![
        UserProfile::new(UserId(0), 5.0),
        UserProfile::new(UserId(1), 5.0),
    ];
    let ex = ExpertiseMatrix::new(2);

    let alloc = MaxQualityAllocator::default().allocate(&tasks, &users, &ex);
    assert!(alloc.users_for(TaskId(0)).is_empty());
    assert!(!alloc.users_for(TaskId(1)).is_empty());

    let mut source = |_u: UserId, _t: &Task| 1.0_f64;
    let out = MinCostAllocator::new(MinCostConfig {
        max_rounds: 5,
        ..MinCostConfig::default()
    })
    .allocate(&tasks, &users, &ex, &mut source);
    assert!(out.allocation.users_for(TaskId(0)).is_empty());
    assert!(!out.all_passed, "the impossible task cannot meet quality");
}

#[test]
fn single_observation_per_task_stays_finite_through_dynamic_updates() {
    let mut de = DynamicExpertise::new(3, 0.5, MleConfig::default());
    for day in 0..4u32 {
        let tasks = vec![Task::new(TaskId(day), DomainId(0), 1.0, 1.0)];
        let mut obs = ObservationSet::new();
        obs.insert(UserId(day % 3), TaskId(day), day as f64 * 3.0);
        let out = de.ingest_batch(&tasks, &obs);
        let est = out.truths[&TaskId(day)];
        assert!(est.mu.is_finite() && est.sigma.is_finite());
    }
    for i in 0..3u32 {
        let u = de.expertise(UserId(i), DomainId(0));
        assert!(u.is_finite() && u > 0.0);
    }
}

#[test]
fn identical_observations_zero_variance_is_handled() {
    // All users agree exactly: sigma floors, expertise caps, truth exact.
    let tasks = vec![Task::new(TaskId(0), DomainId(0), 1.0, 1.0)];
    let mut obs = ObservationSet::new();
    for i in 0..5u32 {
        obs.insert(UserId(i), TaskId(0), 3.25);
    }
    let cfg = MleConfig::default();
    let r = ExpertiseAwareMle::new(cfg).estimate(&tasks, &obs, 5);
    let est = r.truths[&TaskId(0)];
    assert_eq!(est.mu, 3.25);
    assert!(est.sigma >= cfg.sigma_floor);
    for i in 0..5u32 {
        let u = r.expertise.get(UserId(i), DomainId(0));
        assert!(u <= cfg.expertise_cap && u > 0.0);
    }
}

#[test]
fn server_survives_empty_and_oov_descriptions() {
    use eta2::embed::corpus::TopicCorpus;
    use eta2::embed::{SkipGramConfig, SkipGramTrainer};
    let emb = SkipGramTrainer::new(SkipGramConfig {
        dim: 8,
        epochs: 1,
        ..SkipGramConfig::default()
    })
    .train_sentences(&TopicCorpus::builtin().generate(60, 0))
    .unwrap();
    let mut server = ServerBuilder::new(2).embedding(emb).build();
    // Empty, punctuation-only and fully out-of-vocabulary descriptions all
    // land in *some* domain (the zero vector) without panicking.
    let ids = server
        .register_tasks(vec![
            TaskInput::described("", 1.0, 1.0),
            TaskInput::described("???!!!", 1.0, 1.0),
            TaskInput::described("zzzz qqqq xxxx", 1.0, 1.0),
            TaskInput::described("what is the noise level near the building?", 1.0, 1.0),
        ])
        .unwrap();
    assert_eq!(ids.len(), 4);
    for &id in &ids {
        server.domain_of(id).unwrap();
    }
}

#[test]
fn extreme_outlier_contamination_degrades_gracefully() {
    // 100% uniform observations (Fig. 8 knob at its extreme): the system
    // still converges and the error stays bounded.
    let mut ds = SyntheticConfig {
        n_users: 20,
        n_tasks: 50,
        n_domains: 3,
        ..SyntheticConfig::default()
    }
    .generate(1);
    ds.set_uniform_bias(1.0);
    let sim = Simulation::new(SimConfig::default());
    let m = sim.run(&ds, ApproachKind::Eta2, 0).unwrap();
    assert!(m.overall_error.is_finite());
    assert!(m.overall_error < 2.0, "error exploded: {}", m.overall_error);
}

#[test]
fn empty_domain_queries_default_cleanly() {
    let de = DynamicExpertise::new(2, 0.5, MleConfig::default());
    // A domain nobody ever reported in reads as the initialization value.
    assert_eq!(de.expertise(UserId(0), DomainId(42)), 1.0);
    let m = de.matrix();
    assert_eq!(m.get(UserId(1), DomainId(42)), 1.0);
}

#[test]
fn negative_and_huge_magnitude_truths_normalize() {
    // The model is translation/scale tolerant: tasks at -1e6 and +1e6 with
    // large sigma estimate fine.
    let tasks = vec![
        Task::new(TaskId(0), DomainId(0), 1.0, 1.0),
        Task::new(TaskId(1), DomainId(0), 1.0, 1.0),
    ];
    let mut obs = ObservationSet::new();
    for i in 0..4u32 {
        obs.insert(UserId(i), TaskId(0), -1e6 + i as f64 * 10.0);
        obs.insert(UserId(i), TaskId(1), 1e6 - i as f64 * 25.0);
    }
    let r = ExpertiseAwareMle::default().estimate(&tasks, &obs, 4);
    assert!((r.truths[&TaskId(0)].mu + 1e6).abs() < 100.0);
    assert!((r.truths[&TaskId(1)].mu - 1e6).abs() < 100.0);
    assert!(r.converged);
}
